"""Tiered executor memory manager: GC curve, tiers, policies, accounting.

Covers the memstore acceptance criteria:

* :class:`GcCostModel` boundary behaviour — empty heap, the knee,
  exactly-at-budget, over-budget clamping, monotone super-linear rise;
* ``_account_gc`` invariants — mark monotonicity, zero charge on
  no-growth passes, ``_sync_gc_mark`` exempting functional allocations;
* the ``CachedDataset.read`` double-charge fix — rebuild GC flows
  through exactly one path;
* tier cost semantics — deserialized reads are free but pin heap,
  serialized reads pay S/D + rebuild GC, spilled reads add disk I/O;
* eviction/placement policies and pressure-driven demotion ladders;
* determinism, executor-loss recovery, and metrics/span reconciliation.
"""

import pytest

from repro.common.errors import ConfigError
from repro.faults import FaultInjector, FaultPolicy
from repro.formats import KryoSerializer
from repro.jvm.klass import FieldDescriptor, FieldKind, InstanceKlass
from repro.memstore import (
    TIER_AUTO,
    TIER_DESERIALIZED,
    TIER_SERIALIZED,
    TIER_SPILLED,
    ExecutorMemoryManager,
    GcCostModel,
    MemstoreConfig,
    make_policy,
)
from repro.obs import Tracer
from repro.spark import MiniSparkContext, SoftwareBackend, TimeBreakdown
from repro.spark.metrics import SDOperation

BASE = 8.0


# -- GcCostModel -------------------------------------------------------------------------


class TestGcCostModel:
    def test_empty_heap_is_seed_identical(self):
        model = GcCostModel(budget_bytes=1000)
        assert model.multiplier(0) == 1.0
        assert model.ns_per_byte(0) == BASE
        assert model.charge_ns(100, 0) == pytest.approx(100 * BASE)

    def test_flat_below_knee(self):
        model = GcCostModel(budget_bytes=1000, knee=0.3)
        assert model.multiplier(299) == 1.0
        assert model.multiplier(300) == 1.0  # knee is inclusive

    def test_exactly_at_budget_hits_max(self):
        model = GcCostModel(budget_bytes=1000, max_multiplier=24.0)
        assert model.multiplier(1000) == 24.0

    def test_over_budget_clamped(self):
        model = GcCostModel(budget_bytes=1000, max_multiplier=24.0)
        assert model.multiplier(5000) == 24.0
        assert model.occupancy(5000) == 5.0  # occupancy itself is honest

    def test_monotone_and_superlinear(self):
        model = GcCostModel(budget_bytes=1000)
        points = [model.multiplier(x) for x in range(0, 1100, 50)]
        assert points == sorted(points)
        # Quadratic between knee and budget: the second half of the ramp
        # gains more than the first half.
        low = model.multiplier(650) - model.multiplier(300)
        high = model.multiplier(1000) - model.multiplier(650)
        assert high > low > 0.0

    def test_zero_or_negative_growth_charges_nothing(self):
        model = GcCostModel(budget_bytes=1000)
        assert model.charge_ns(0, 900) == 0.0
        assert model.charge_ns(-64, 900) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            GcCostModel(budget_bytes=0)
        with pytest.raises(ConfigError):
            GcCostModel(budget_bytes=10, base_ns_per_byte=0.0)
        with pytest.raises(ConfigError):
            GcCostModel(budget_bytes=10, knee=1.0)
        with pytest.raises(ConfigError):
            GcCostModel(budget_bytes=10, max_multiplier=0.5)


class TestMemstoreConfig:
    def test_defaults_and_derived_budgets(self):
        config = MemstoreConfig(budget_bytes=1000, storage_fraction=0.6)
        assert config.heap_tier_budget_bytes == 600
        assert config.resolved_offheap_budget_bytes == 1000
        model = config.build_gc_model()
        assert model.budget_bytes == 1000

    def test_validation(self):
        with pytest.raises(ConfigError):
            MemstoreConfig(budget_bytes=0)
        with pytest.raises(ConfigError):
            MemstoreConfig(budget_bytes=10, storage_fraction=0.0)
        with pytest.raises(ConfigError):
            MemstoreConfig(budget_bytes=10, offheap_budget_bytes=-1)
        with pytest.raises(ConfigError):
            MemstoreConfig(budget_bytes=10, policy="round-robin")


# -- manager unit tests (no engine) ------------------------------------------------------


def _ops(stream_bytes=100, graph_bytes=400, ser_ns=50.0, deser_ns=70.0):
    serialize_op = SDOperation(
        "serialize", "cache", ser_ns, stream_bytes, graph_bytes, 4
    )
    read_op = SDOperation(
        "deserialize", "cache", deser_ns, stream_bytes, graph_bytes, 4
    )
    return serialize_op, read_op


def _manager(budget=10_000, fraction=1.0, offheap=None, policy="lru"):
    config = MemstoreConfig(
        budget_bytes=budget,
        storage_fraction=fraction,
        offheap_budget_bytes=offheap,
        policy=policy,
    )
    return ExecutorMemoryManager(config, TimeBreakdown())


class TestTierCosts:
    def test_deserialized_admission_and_reads_are_free_but_pin_heap(self):
        manager = _manager()
        serialize_op, read_op = _ops()
        entry = manager.admit(0, None, ["r"], serialize_op, read_op,
                              tier=TIER_DESERIALIZED)
        assert manager.breakdown.total_ns == 0.0
        assert manager.on_heap_bytes == 400
        assert manager.read_entry(entry) == ["r"]
        assert manager.breakdown.total_ns == 0.0  # reads cost nothing

    def test_serialized_charges_once_then_per_read(self):
        manager = _manager()
        serialize_op, read_op = _ops()
        entry = manager.admit(0, None, ["r"], serialize_op, read_op,
                              tier=TIER_SERIALIZED)
        assert manager.breakdown.serialize_ns == 50.0
        assert manager.on_heap_bytes == 0
        assert manager.offheap_bytes == 100
        manager.read_entry(entry)
        assert manager.breakdown.deserialize_ns == 70.0
        assert manager.breakdown.gc_ns == pytest.approx(400 * BASE)
        manager.read_entry(entry)
        assert manager.breakdown.deserialize_ns == 140.0
        assert manager.breakdown.gc_ns == pytest.approx(2 * 400 * BASE)

    def test_spilled_adds_disk_io_both_ways(self):
        manager = _manager(offheap=50)  # stream of 100 B cannot fit
        serialize_op, read_op = _ops()
        entry = manager.admit(0, None, ["r"], serialize_op, read_op,
                              tier=TIER_SERIALIZED)
        assert entry.tier == TIER_SPILLED
        # Admission: serialize + disk write of the stream.
        assert manager.breakdown.serialize_ns == 50.0
        assert manager.breakdown.io_ns == pytest.approx(100 * 2.0)
        assert manager.spilled_bytes == 100
        manager.read_entry(entry)
        # Read: disk read + deserialize + rebuild GC.
        assert manager.breakdown.io_ns == pytest.approx(2 * 100 * 2.0)
        assert manager.breakdown.deserialize_ns == 70.0
        assert manager.breakdown.gc_ns == pytest.approx(400 * BASE)

    def test_rebuild_gc_priced_by_pinned_live_set(self):
        manager = _manager(budget=1000)
        big_ser, big_read = _ops(graph_bytes=900)
        manager.admit(0, None, ["big"], big_ser, big_read,
                      tier=TIER_DESERIALIZED)
        serialize_op, read_op = _ops(graph_bytes=100)
        entry = manager.admit(1, None, ["r"], serialize_op, read_op,
                              tier=TIER_SERIALIZED)
        before = manager.breakdown.gc_ns
        manager.read_entry(entry)
        charged = manager.breakdown.gc_ns - before
        # 900/1000 occupancy: the rebuild pays well above the base rate.
        assert charged > 100 * BASE * 5

    def test_unknown_tier_rejected(self):
        manager = _manager()
        serialize_op, read_op = _ops()
        with pytest.raises(ConfigError):
            manager.admit(0, None, [], serialize_op, read_op, tier="onheap")


class TestEvictionAndDemotion:
    def test_heap_pressure_demotes_lru_victim(self):
        manager = _manager(budget=1000, fraction=1.0)
        ops = [_ops(graph_bytes=400) for _ in range(3)]
        entries = [
            manager.admit(i, None, [i], s, r, tier=TIER_DESERIALIZED)
            for i, (s, r) in enumerate(ops)
        ]
        # Third admission exceeds 1000 B of heap: entry 0 (LRU) demotes.
        assert entries[0].tier == TIER_SERIALIZED
        assert entries[1].tier == TIER_DESERIALIZED
        assert entries[2].tier == TIER_DESERIALIZED
        assert manager.on_heap_bytes == 800
        assert manager.offheap_bytes == 100
        assert manager.transitions == [
            (0, TIER_DESERIALIZED, TIER_SERIALIZED, "pressure")
        ]
        # The demotion paid the victim's serialize.
        assert manager.breakdown.serialize_ns == 50.0

    def test_cascading_demotion_reaches_disk(self):
        manager = _manager(budget=1000, fraction=1.0, offheap=150)
        ops = [_ops(graph_bytes=400, stream_bytes=100) for _ in range(4)]
        entries = [
            manager.admit(i, None, [i], s, r, tier=TIER_DESERIALIZED)
            for i, (s, r) in enumerate(ops)
        ]
        tiers = [e.tier for e in entries]
        # Two demotions to off-heap fill its 150 B; the next one spills.
        assert tiers.count(TIER_DESERIALIZED) == 2
        assert TIER_SPILLED in tiers or manager.spilled_bytes > 0
        assert manager.on_heap_bytes <= 1000
        assert manager.offheap_bytes <= 150

    def test_reads_refresh_lru_order(self):
        manager = _manager(budget=1000, fraction=1.0)
        a_ops, b_ops = _ops(graph_bytes=400), _ops(graph_bytes=400)
        a = manager.admit(0, None, ["a"], *a_ops, tier=TIER_DESERIALIZED)
        b = manager.admit(1, None, ["b"], *b_ops, tier=TIER_DESERIALIZED)
        manager.read_entry(a)  # a is now the most recently used
        c_ops = _ops(graph_bytes=400)
        manager.admit(2, None, ["c"], *c_ops, tier=TIER_DESERIALIZED)
        assert a.tier == TIER_DESERIALIZED
        assert b.tier == TIER_SERIALIZED  # b was the stale one

    def test_size_policy_evicts_largest(self):
        manager = _manager(budget=1000, fraction=1.0, policy="size")
        small = _ops(graph_bytes=200)
        large = _ops(graph_bytes=600)
        manager.admit(0, None, ["s"], *small, tier=TIER_DESERIALIZED)
        big = manager.admit(1, None, ["l"], *large, tier=TIER_DESERIALIZED)
        trigger = _ops(graph_bytes=400)
        manager.admit(2, None, ["t"], *trigger, tier=TIER_DESERIALIZED)
        assert big.tier == TIER_SERIALIZED  # largest demoted first

    def test_cost_policy_evicts_fewest_expected_rereads(self):
        manager = _manager(budget=10_000, offheap=250, policy="cost")
        hot_ops = _ops(stream_bytes=100)
        cold_ops = _ops(stream_bytes=100)
        hot = manager.admit(0, None, ["hot"], *hot_ops, tier=TIER_SERIALIZED)
        cold = manager.admit(1, None, ["cold"], *cold_ops,
                             tier=TIER_SERIALIZED)
        manager.read_entry(hot)
        manager.read_entry(hot)
        trigger = _ops(stream_bytes=100)
        manager.admit(2, None, ["t"], *trigger, tier=TIER_SERIALIZED)
        assert cold.tier == TIER_SPILLED  # fewest re-reads -> cheapest loss
        assert hot.tier == TIER_SERIALIZED

    def test_auto_placement_prefers_heap_when_sd_is_expensive(self):
        manager = _manager(budget=100_000, policy="cost")
        costly = _ops(graph_bytes=400, deser_ns=1e6)
        entry = manager.admit(0, None, ["r"], *costly, tier=TIER_AUTO)
        assert entry.tier == TIER_DESERIALIZED
        # Near the budget, residency's GC penalty outweighs cheap S/D.
        tight = _manager(budget=1000, policy="cost")
        cheap = _ops(graph_bytes=900, deser_ns=10.0)
        entry = tight.admit(0, None, ["r"], *cheap, tier=TIER_AUTO)
        assert entry.tier == TIER_SERIALIZED

    def test_policy_factory_rejects_unknown(self):
        with pytest.raises(ConfigError):
            make_policy("clairvoyant")
        assert make_policy("lru").name == "lru"


class TestStatsAndObservability:
    def test_stats_reconcile_with_state(self):
        manager = _manager(offheap=50)
        serialize_op, read_op = _ops()
        entry = manager.admit(0, None, ["r"], serialize_op, read_op,
                              tier=TIER_SERIALIZED)
        manager.read_entry(entry)
        stats = manager.stats()
        assert stats["by_tier"][TIER_SPILLED] == 1
        assert stats["spills"] == 0  # direct overflow, not a demotion
        assert stats["reads"][TIER_SPILLED] == 1
        assert stats["charged_total_ns"] == pytest.approx(
            manager.breakdown.total_ns
        )

    def test_spans_cover_charges_exactly(self):
        tracer = Tracer(enabled=True, capacity=1 << 12)
        config = MemstoreConfig(budget_bytes=10_000)
        manager = ExecutorMemoryManager(
            config, TimeBreakdown(), tracer=tracer
        )
        serialize_op, read_op = _ops()
        entry = manager.admit(0, None, ["r"], serialize_op, read_op,
                              tier=TIER_SERIALIZED)
        manager.read_entry(entry)
        manager.read_entry(entry)
        spans = [s for s in tracer.spans() if s.name.startswith("memstore.")]
        assert [s.name for s in spans] == [
            "memstore.admit", "memstore.read", "memstore.read",
        ]
        span_sum = sum(s.end_ns - s.start_ns for s in spans)
        assert span_sum == pytest.approx(manager.charged_total_ns, abs=1.0)


# -- engine integration ------------------------------------------------------------------


def _context(memstore_config=None, injector=None, heap_bytes=512 * 1024 * 1024):
    context = MiniSparkContext(
        SoftwareBackend(KryoSerializer()),
        memstore_config=memstore_config,
        injector=injector,
        heap_bytes=heap_bytes,
    )
    klass = context.registry.register(
        InstanceKlass(
            "KV",
            [
                FieldDescriptor("key", FieldKind.LONG),
                FieldDescriptor("value", FieldKind.LONG),
            ],
        )
    )
    context.registry.array_klass(FieldKind.REFERENCE)
    context.registry.array_klass(FieldKind.LONG)
    registration = context.backend.serializer.registration
    for k in context.registry:
        registration.register(k)
    return context, klass


def _records(context, klass, count):
    records = []
    for index in range(count):
        record = context.executor_heap.allocate(klass)
        record.set("key", index)
        record.set("value", index * 3)
        records.append(record)
    return records


class TestAccountGcInvariants:
    def test_no_growth_charges_nothing(self):
        context, klass = _context()
        _records(context, klass, 10)
        context._account_gc()
        before = context.breakdown.gc_ns
        context._account_gc()
        context._account_gc()
        assert context.breakdown.gc_ns == before

    def test_mark_is_monotone(self):
        context, klass = _context()
        marks = [context._last_alloc_mark]
        for _ in range(4):
            _records(context, klass, 5)
            context._account_gc()
            marks.append(context._last_alloc_mark)
        assert marks == sorted(marks)
        assert marks[-1] > marks[0]

    def test_sync_mark_exempts_functional_allocations(self):
        context, klass = _context()
        context._account_gc()
        before = context.breakdown.gc_ns
        _records(context, klass, 10)
        context._sync_gc_mark()
        context._account_gc()  # growth already marked: nothing to charge
        assert context.breakdown.gc_ns == before

    def test_growth_charged_at_base_rate_with_empty_store(self):
        context, klass = _context()
        context._account_gc()
        mark = context._last_alloc_mark
        before = context.breakdown.gc_ns
        _records(context, klass, 10)
        context._account_gc()
        grown = context._last_alloc_mark - mark
        assert grown > 0
        assert context.breakdown.gc_ns - before == pytest.approx(grown * BASE)


class TestCachedDatasetAccounting:
    def test_read_rebuild_gc_single_path(self):
        """The double-charge fix: each read charges the rebuilt graph's GC
        exactly once, and the cache-time functional materialization is not
        pre-charged on top of it."""
        context, klass = _context()
        dataset = context.parallelize(_records(context, klass, 12), 3)
        cached = dataset.cache_serialized()
        graph_bytes = sum(e.graph_bytes for e in cached.entries)

        gc_before = context.breakdown.gc_ns
        cached.read()
        first_read = context.breakdown.gc_ns - gc_before
        assert first_read == pytest.approx(graph_bytes * BASE)

        gc_before = context.breakdown.gc_ns
        cached.read()
        second_read = context.breakdown.gc_ns - gc_before
        assert second_read == pytest.approx(first_read)

        # And a later engine-side pass finds no unmarked growth left over
        # from the cache's functional round-trip.
        gc_before = context.breakdown.gc_ns
        context._account_gc()
        assert context.breakdown.gc_ns == gc_before

    def test_deserialized_tier_reads_are_free(self):
        context, klass = _context()
        dataset = context.parallelize(_records(context, klass, 12), 3)
        cached = dataset.cache(tier=TIER_DESERIALIZED)
        assert all(e.tier == TIER_DESERIALIZED for e in cached.entries)
        total_before = context.breakdown.total_ns
        result = cached.read()
        assert context.breakdown.total_ns == total_before
        assert result.record_count == 12
        assert context.memstore.on_heap_bytes > 0

    def test_deserialized_residency_amplifies_other_gc(self):
        # Probe the cached graph's footprint, then pick a budget that the
        # deserialized tier fills to ~90% occupancy (past the GC knee).
        probe, klass = _context()
        probe.parallelize(_records(probe, klass, 300), 2).cache(
            tier=TIER_DESERIALIZED
        )
        budget = int(probe.memstore.on_heap_bytes / 0.9)
        config = MemstoreConfig(budget_bytes=budget, storage_fraction=1.0)

        def run(tier):
            context, klass = _context(memstore_config=config)
            dataset = context.parallelize(_records(context, klass, 300), 2)
            dataset.cache(tier=tier)
            gc_before = context.breakdown.gc_ns
            heap = context.executor_heap

            def churn(partition):
                for _ in partition:
                    heap.new_array(FieldKind.LONG, 16)
                return partition

            dataset.map_partitions(churn)
            return context.breakdown.gc_ns - gc_before

        pressured = run(TIER_DESERIALIZED)
        flat = run(TIER_SERIALIZED)
        assert flat > 0
        assert pressured > flat  # same churn, costlier with pinned heap

    def test_streams_property_backwards_compatible(self):
        context, klass = _context()
        cached = context.parallelize(
            _records(context, klass, 6), 2
        ).cache_serialized()
        assert len(cached.streams) == 2
        assert all(s.size_bytes > 0 for s in cached.streams)

    def test_whole_run_deterministic(self):
        def run():
            config = MemstoreConfig(
                budget_bytes=256 * 1024, storage_fraction=1.0, policy="cost"
            )
            context, klass = _context(memstore_config=config)
            dataset = context.parallelize(_records(context, klass, 64), 4)
            cached = dataset.cache(tier=TIER_AUTO)
            for _ in range(3):
                cached.read()
            return (
                context.breakdown.total_ns,
                tuple(context.memstore.transitions),
                tuple(e.tier for e in cached.entries),
            )

        assert run() == run()

    def test_executor_loss_rebuilds_cached_entry(self):
        injector = FaultInjector(
            FaultPolicy(seed=3, executor_loss_prob=1.0)
        )
        context, klass = _context(injector=injector)
        cached = context.parallelize(
            _records(context, klass, 8), 2
        ).cache_serialized()
        serialize_before = context.breakdown.serialize_ns
        result = cached.read()  # every read loses its executor once
        assert result.record_count == 8
        assert context.breakdown.serialize_ns > serialize_before
        stats = injector.report.layer("executor")
        assert stats.injected == 2
        assert stats.detected == stats.recovered == 2
        assert context.memstore.lost == 2

    def test_zero_probability_injector_leaves_cache_costs_unchanged(self):
        baseline_context, klass = _context()
        cached = baseline_context.parallelize(
            _records(baseline_context, klass, 8), 2
        ).cache_serialized()
        cached.read()
        baseline = baseline_context.breakdown.total_ns

        injected_context, klass = _context(
            injector=FaultInjector(FaultPolicy(seed=9))
        )
        cached = injected_context.parallelize(
            _records(injected_context, klass, 8), 2
        ).cache_serialized()
        cached.read()
        assert injected_context.breakdown.total_ns == baseline
