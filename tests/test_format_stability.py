"""Golden-stream format-stability tests, plus the heap string helper.

The serialized formats are part of the library's public contract: a stream
produced today must decode forever. These tests pin the exact bytes every
serializer produces for one fixed, self-contained object graph; if a format
change is intentional, the hashes below must be updated consciously (and
called out as a breaking format change).
"""

import hashlib

import pytest

from repro.common.errors import HeapError
from repro.formats import (
    CerealSerializer,
    ClassRegistration,
    JavaSerializer,
    KryoSerializer,
    SkywaySerializer,
)
from repro.formats.packing import (
    pack_bitmaps,
    pack_items,
    unpack_bitmaps,
    unpack_items,
)
from repro.jvm import (
    FieldDescriptor,
    FieldKind,
    Heap,
    InstanceKlass,
    KlassRegistry,
)
from repro.jvm.strings import new_string, read_string, string_bytes

# Hashes pinned at format version 1.0.0. Any change here is a breaking
# format change and must be documented.
GOLDEN_SHA256 = {
    "java": "0bab024de61c5d79b72a0b61b996eed882d2acd4dc439c41124649d2e7344a52",
    "kryo": "3a77f2e89af199b36bbd3ffa83902c8bed523533f00702c995b49ff4f15ca24c",
    "skyway": "112b94dc98f70cd7e766af377014068fe96e9787efd9a291a89a3e2c7947934d",
    "cereal": "e59817512f8f374df23e0f8c89b9dbc84f1738ce6b89d8291e843b4b36255de2",
}


def _golden_registry() -> KlassRegistry:
    """A registry whose layout must never change (it anchors the hashes)."""
    registry = KlassRegistry()
    registry.register(
        InstanceKlass(
            "Point",
            [
                FieldDescriptor("x", FieldKind.DOUBLE),
                FieldDescriptor("y", FieldKind.DOUBLE),
            ],
        )
    )
    registry.register(
        InstanceKlass(
            "Node",
            [
                FieldDescriptor("value", FieldKind.LONG),
                FieldDescriptor("left", FieldKind.REFERENCE),
                FieldDescriptor("right", FieldKind.REFERENCE),
            ],
        )
    )
    registry.register(
        InstanceKlass(
            "Mixed",
            [
                FieldDescriptor("flag", FieldKind.BOOLEAN),
                FieldDescriptor("small", FieldKind.INT),
                FieldDescriptor("big", FieldKind.LONG),
                FieldDescriptor("ratio", FieldKind.DOUBLE),
                FieldDescriptor("letter", FieldKind.CHAR),
                FieldDescriptor("child", FieldKind.REFERENCE),
            ],
        )
    )
    registry.array_klass(FieldKind.LONG)
    registry.array_klass(FieldKind.REFERENCE)
    registry.array_klass(FieldKind.DOUBLE)
    return registry


def build_golden_graph(heap):
    """A fixed graph touching values, references, sharing, and arrays."""
    root = heap.new_instance("Mixed")
    root.set("flag", True)
    root.set("small", -7)
    root.set("big", 2**40 + 5)
    root.set("ratio", 0.5)
    root.set("letter", ord("G"))
    shared = heap.new_instance("Point")
    shared.set("x", 1.0)
    shared.set("y", 2.0)
    node = heap.new_instance("Node")
    node.set("value", 99)
    node.set("left", shared)
    node.set("right", shared)
    arr = heap.new_array(FieldKind.REFERENCE, 2)
    arr.set_element(0, node)
    root.set("child", node)
    return root


def _make_serializer(kind, registry):
    registration = ClassRegistration()
    for klass in registry:
        registration.register(klass)
    if kind == "java":
        return JavaSerializer()
    if kind == "kryo":
        return KryoSerializer(registration)
    if kind == "skyway":
        return SkywaySerializer(registration)
    return CerealSerializer(registration)


def _stream_hash(serializer_kind):
    registry = _golden_registry()
    heap = Heap(registry=registry)
    root = build_golden_graph(heap)
    serializer = _make_serializer(serializer_kind, registry)
    stream = serializer.serialize(root).stream
    return hashlib.sha256(stream.data).hexdigest()


class TestStreamStability:
    @pytest.mark.parametrize("kind", sorted(GOLDEN_SHA256))
    def test_golden_hash_pinned(self, kind):
        assert _stream_hash(kind) == GOLDEN_SHA256[kind]

    @pytest.mark.parametrize("kind", sorted(GOLDEN_SHA256))
    def test_two_builds_identical(self, kind):
        assert _stream_hash(kind) == _stream_hash(kind)


class TestPackingGoldenVectors:
    """Exact packed bytes for the Section IV-B kernels, pinned at 1.0.0.

    These anchor the word-level fast path at the byte level, independent of
    the slow-reference oracle: if both implementations drifted together,
    the hashes above could still pass while the format silently changed.
    """

    GOLDEN_VALUES = [0, 1, 5, 127, 128, 0x1234, 2**20, 2**33 - 1]
    GOLDEN_BITMAPS = [[1], [1, 0, 1], [0] * 7 + [1], [1] * 12]

    def test_item_bytes_pinned(self):
        packed = pack_items(self.GOLDEN_VALUES)
        assert packed.data.hex() == "40c0b0ff808091a4800004ffffffffc0"
        assert packed.end_map.hex() == "f521"
        assert unpack_items(packed) == self.GOLDEN_VALUES

    def test_bitmap_bytes_pinned(self):
        packed = pack_bitmaps(self.GOLDEN_BITMAPS)
        assert packed.data.hex() == "c0b00180fff8"
        assert packed.end_map.hex() == "d4"
        assert unpack_bitmaps(packed) == self.GOLDEN_BITMAPS


class TestStringsHelper:
    def test_round_trip(self):
        heap = Heap()
        s = new_string(heap, "cereal-0123")
        assert read_string(s) == "cereal-0123"

    def test_empty_string(self):
        heap = Heap()
        assert read_string(new_string(heap, "")) == ""

    def test_packed_footprint(self):
        heap = Heap()
        s = new_string(heap, "x" * 16)  # 32 B of chars -> 4 slots
        assert string_bytes(s) == heap.header_bytes + 8 + 32

    def test_non_bmp_rejected(self):
        heap = Heap()
        with pytest.raises(HeapError):
            new_string(heap, "\U0001F600")

    def test_read_non_char_array_rejected(self):
        heap = Heap()
        longs = heap.new_array(FieldKind.LONG, 2)
        with pytest.raises(HeapError):
            read_string(longs)

    def test_strings_survive_serialization(self):
        registry = _golden_registry()
        registry.array_klass(FieldKind.CHAR)
        heap = Heap(registry=registry)
        receiver = Heap(registry=registry)
        s = new_string(heap, "through the wire")
        serializer = _make_serializer("cereal", registry)
        rebuilt = serializer.round_trip(s, receiver)
        assert read_string(rebuilt) == "through the wire"
