"""Codegen kernel cache, generated-source hygiene, and fallback paths.

Byte/profile equivalence of the codegen tier against the interpreter
oracles lives in ``tests/test_plans.py`` (three-way serializer pairs) and
``tests/test_fuzz_roundtrip.py``; this module covers the machinery around
the kernels: the process-wide codegen cache and its counters, the
requirement that every generated source recompiles cleanly without
warnings, and the index-run helpers behind the Cereal gather expressions.
"""

from __future__ import annotations

import warnings

from tests.test_fuzz_roundtrip import build_fuzz_graph, fuzz_registry

from repro.formats import (
    CerealSerializer,
    ClassRegistration,
    JavaSerializer,
    KryoSerializer,
)
from repro.formats import codegen as CG
from repro.jvm import Heap


def _registration(registry) -> ClassRegistration:
    registration = ClassRegistration()
    for klass in registry:
        registration.register(klass)
    return registration


def _populate_kernels(seed: int = 2):
    """Serialize + deserialize a fuzz graph through every codegen tier."""
    registry = fuzz_registry()
    heap = Heap(registry=registry)
    root = build_fuzz_graph(heap, seed)
    registration = _registration(registry)
    serializers = [
        JavaSerializer(use_codegen=True),
        KryoSerializer(registration, use_codegen=True),
        CerealSerializer(registration, use_codegen=True),
        CerealSerializer(
            registration, strip_mark_word=True, use_codegen=True
        ),
    ]
    for serializer in serializers:
        result = serializer.serialize(root)
        serializer.deserialize(result.stream, Heap(registry=registry))
    return root, registry, registration, serializers


# -- generated source hygiene ------------------------------------------------------


def test_generated_sources_compile_without_warnings():
    CG.reset_codegen_cache()
    _populate_kernels()
    sources = CG.generated_sources()
    assert sources, "codegen run produced no cached kernels"
    for key, source in sources.items():
        if not source:
            continue  # chunk-cap fallback kernels carry no source
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            compile(source, f"<recheck:{key}>", "exec")


def test_generated_sources_are_self_contained():
    CG.reset_codegen_cache()
    _populate_kernels()
    for source in CG.generated_sources().values():
        # Kernels must run in the closed namespace: no attribute walks to
        # builtins beyond the whitelisted handles.
        assert "__import__" not in source
        assert "eval(" not in source
        assert "exec(" not in source


# -- codegen cache -----------------------------------------------------------------


def test_codegen_cache_warm_hit_rate():
    CG.reset_codegen_cache()
    registry = fuzz_registry()
    heap = Heap(registry=registry)
    root = build_fuzz_graph(heap, 3)
    serializer = JavaSerializer(use_codegen=True)
    serializer.serialize(root)
    cold = CG.codegen_cache_stats()
    assert cold["misses"] > 0
    assert cold["entries"] == cold["misses"]
    assert cold["compile_ns"] > 0
    serializer.serialize(root)
    warm = CG.codegen_cache_stats()
    assert warm["misses"] == cold["misses"], "second run recompiled kernels"
    assert warm["hits"] > cold["hits"]
    assert warm["hit_rate"] > 0.0
    assert warm["compile_ns"] == cold["compile_ns"]


def test_codegen_cache_reset():
    CG.reset_codegen_cache()
    _populate_kernels()
    assert CG.codegen_cache_stats()["entries"] > 0
    CG.reset_codegen_cache()
    assert CG.codegen_cache_stats() == {
        "hits": 0,
        "misses": 0,
        "evictions": 0,
        "entries": 0,
        "hit_rate": 0.0,
        "compile_ns": 0,
    }
    assert CG.generated_sources() == {}


def test_codegen_cache_shared_across_serializer_instances():
    CG.reset_codegen_cache()
    registry = fuzz_registry()
    heap = Heap(registry=registry)
    root = build_fuzz_graph(heap, 5)
    JavaSerializer(use_codegen=True).serialize(root)
    after_first = CG.codegen_cache_stats()["misses"]
    # A *different* instance over the same shapes: all cache hits.
    JavaSerializer(use_codegen=True).serialize(root)
    assert CG.codegen_cache_stats()["misses"] == after_first


def test_codegen_cache_clears_when_full(monkeypatch):
    CG.reset_codegen_cache()
    monkeypatch.setattr(CG, "_MAX_ENTRIES", 1)
    registry = fuzz_registry()
    heap = Heap(registry=registry)
    root = build_fuzz_graph(heap, 1)
    JavaSerializer(use_codegen=True).serialize(root)
    stats = CG.codegen_cache_stats()
    assert stats["evictions"] > 0, "tiny cache must have cycled"
    assert stats["entries"] <= 1
    CG.reset_codegen_cache()


# -- cereal gather helpers ---------------------------------------------------------


def test_index_runs_merge_contiguous_spans():
    assert CG._index_runs(()) == []
    assert CG._index_runs((3,)) == [(3, 4)]
    assert CG._index_runs((3, 4, 5, 9, 11, 12)) == [(3, 6), (9, 10), (11, 13)]


def test_tuple_chunks_prefer_slices():
    assert CG._tuple_chunks((3, 4, 5)) == ["words[3:6]"]
    assert CG._tuple_chunks((7,)) == ["(words[7],)"]
    assert CG._tuple_chunks((1, 3)) == ["(words[1],)", "(words[3],)"]


def test_cereal_chunk_cap_falls_back_to_plan_gather(monkeypatch):
    CG.reset_codegen_cache()
    monkeypatch.setattr(CG, "_CEREAL_MAX_CHUNKS", 1)
    registry = fuzz_registry()
    heap = Heap(registry=registry)
    root = build_fuzz_graph(heap, 4)
    registration = _registration(registry)
    capped = CerealSerializer(registration, use_codegen=True).serialize(root)
    oracle = CerealSerializer(registration, use_plans=False).serialize(root)
    assert capped.stream.data == oracle.stream.data
    assert vars(capped.profile) == vars(oracle.profile)
    CG.reset_codegen_cache()
