"""Property-based heap invariants under arbitrary allocation sequences."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jvm import FieldDescriptor, FieldKind, Heap, InstanceKlass

_PRIM_KINDS = [
    FieldKind.BYTE,
    FieldKind.CHAR,
    FieldKind.INT,
    FieldKind.LONG,
    FieldKind.DOUBLE,
]


@st.composite
def allocation_plans(draw):
    """A sequence of allocations: instances and arrays of various kinds."""
    plan = []
    for _ in range(draw(st.integers(1, 25))):
        if draw(st.booleans()):
            field_count = draw(st.integers(0, 6))
            plan.append(("instance", field_count))
        else:
            kind = draw(st.sampled_from(_PRIM_KINDS + [FieldKind.REFERENCE]))
            length = draw(st.integers(0, 40))
            plan.append(("array", kind, length))
    return plan


def execute(plan):
    heap = Heap()
    objects = []
    for index, step in enumerate(plan):
        if step[0] == "instance":
            _, field_count = step
            klass = InstanceKlass(
                f"C{index}",
                [
                    FieldDescriptor(f"f{i}", FieldKind.LONG)
                    for i in range(field_count)
                ],
            )
            heap.registry.register(klass)
            objects.append(heap.allocate(klass))
        else:
            _, kind, length = step
            objects.append(heap.new_array(kind, length))
    return heap, objects


@settings(max_examples=50, deadline=None)
@given(plan=allocation_plans())
def test_allocations_never_overlap(plan):
    _, objects = execute(plan)
    spans = sorted((o.address, o.address + o.size_bytes) for o in objects)
    for (_, prev_end), (next_start, _) in zip(spans, spans[1:]):
        assert next_start >= prev_end


@settings(max_examples=50, deadline=None)
@given(plan=allocation_plans())
def test_bitmap_length_always_encodes_size(plan):
    _, objects = execute(plan)
    for obj in objects:
        assert len(obj.layout_bitmap()) * 8 == obj.size_bytes


@settings(max_examples=50, deadline=None)
@given(plan=allocation_plans())
def test_used_bytes_equals_sum_of_objects(plan):
    heap, objects = execute(plan)
    assert heap.used_bytes == sum(o.size_bytes for o in objects)


@settings(max_examples=50, deadline=None)
@given(plan=allocation_plans())
def test_every_object_resolvable_by_address(plan):
    heap, objects = execute(plan)
    for obj in objects:
        assert heap.object_at(obj.address) == obj


@settings(max_examples=50, deadline=None)
@given(plan=allocation_plans())
def test_headers_intact_after_all_allocations(plan):
    """Later allocations must never corrupt earlier objects' headers."""
    heap, objects = execute(plan)
    for obj in objects:
        assert obj.klass_pointer == obj.klass.metaspace_address
        assert 0 <= obj.identity_hash < 2**31


@settings(max_examples=30, deadline=None)
@given(plan=allocation_plans(), seed=st.integers(0, 2**32))
def test_reference_wiring_preserves_values(plan, seed):
    """Writing references between arbitrary objects never corrupts data."""
    heap, objects = execute(plan)
    ref_arrays = [
        o for o in objects
        if o.klass.is_array and o.klass.element_kind is FieldKind.REFERENCE
        and o.length > 0
    ]
    long_arrays = [
        o for o in objects
        if o.klass.is_array and o.klass.element_kind is FieldKind.LONG
        and o.length > 0
    ]
    for arr in long_arrays:
        arr.set_element(0, 0x5A5A_5A5A)
    state = seed or 1
    for arr in ref_arrays:
        state = (state * 1103515245 + 12345) & 0x7FFF_FFFF
        target = objects[state % len(objects)]
        arr.set_element(state % arr.length, target)
    for arr in long_arrays:
        assert arr.get_element(0) == 0x5A5A_5A5A
