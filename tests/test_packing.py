"""Tests for the Cereal object packing scheme (Section IV-B)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import FormatError
from repro.formats.packing import (
    PackedArray,
    compression_ratio,
    pack_bitmaps,
    pack_items,
    packed_size_bytes,
    unpack_bitmaps,
    unpack_items,
)


class TestPackItems:
    def test_single_small_value(self):
        packed = pack_items([5])  # '101' + end bit -> 1 byte
        assert len(packed.data) == 1
        assert packed.end_map == b"\x80"
        assert unpack_items(packed) == [5]

    def test_zero_value(self):
        packed = pack_items([0])
        assert unpack_items(packed) == [0]

    def test_empty(self):
        packed = pack_items([])
        assert packed.data == b""
        assert unpack_items(packed) == []

    def test_multi_byte_value(self):
        packed = pack_items([0x1234])  # 13 significant bits + end -> 2 bytes
        assert len(packed.data) == 2
        assert unpack_items(packed) == [0x1234]

    def test_mixed_sizes(self):
        values = [0, 1, 127, 128, 2**20, 2**33 - 1]
        assert unpack_items(pack_items(values)) == values

    @given(st.lists(st.integers(min_value=0, max_value=2**40), max_size=200))
    def test_round_trip_property(self, values):
        assert unpack_items(pack_items(values)) == values

    @given(st.lists(st.integers(min_value=0, max_value=2**32), min_size=1, max_size=100))
    def test_end_map_is_one_bit_per_byte(self, values):
        packed = pack_items(values)
        assert len(packed.end_map) == (len(packed.data) + 7) // 8

    @given(st.lists(st.integers(min_value=0, max_value=2**32), min_size=1, max_size=100))
    def test_packed_size_helper_matches(self, values):
        packed = pack_items(values)
        assert packed.total_bytes == packed_size_bytes(values)

    def test_small_values_compress_vs_8b_slots(self):
        # References to nearby objects have many leading zeros -> big win.
        values = [100 + i for i in range(1000)]
        assert compression_ratio(values) > 0.7

    def test_huge_values_do_not_compress(self):
        values = [2**62] * 100
        assert compression_ratio(values) < 0.1


class TestPackBitmaps:
    def test_simple_bitmap(self):
        bitmap = [0, 0, 0, 0, 1]
        assert unpack_bitmaps(pack_bitmaps([bitmap])) == [bitmap]

    def test_bitmap_ending_in_reference_bit(self):
        # Trailing 1 must not be confused with the end bit.
        bitmap = [0, 1, 1, 1]
        assert unpack_bitmaps(pack_bitmaps([bitmap])) == [bitmap]

    def test_all_zero_bitmap(self):
        bitmap = [0] * 12
        assert unpack_bitmaps(pack_bitmaps([bitmap])) == [bitmap]

    def test_bitmap_length_preserved(self):
        # Length encodes object size; must survive exactly.
        bitmaps = [[0] * n for n in (1, 7, 8, 9, 63, 64, 65)]
        assert unpack_bitmaps(pack_bitmaps(bitmaps)) == bitmaps

    @given(
        st.lists(
            st.lists(st.integers(0, 1), min_size=1, max_size=80),
            min_size=0,
            max_size=40,
        )
    )
    def test_round_trip_property(self, bitmaps):
        assert unpack_bitmaps(pack_bitmaps(bitmaps)) == bitmaps

    def test_empty_bitmap_rejected(self):
        with pytest.raises(FormatError):
            pack_bitmaps([[]])

    def test_non_binary_bitmap_rejected(self):
        with pytest.raises(FormatError):
            pack_bitmaps([[0, 2]])


class TestCorruptedStreams:
    def test_item_count_mismatch_detected(self):
        packed = pack_items([1, 2, 3])
        bad = PackedArray(packed.data, packed.end_map, item_count=5)
        with pytest.raises(FormatError):
            unpack_items(bad)

    def test_missing_end_bit_detected(self):
        # A zero byte marked as an item end has no end bit.
        bad = PackedArray(data=b"\x00", end_map=b"\x80", item_count=1)
        with pytest.raises(FormatError):
            unpack_items(bad)

    def test_trailing_bytes_detected(self):
        packed = pack_items([1])
        bad = PackedArray(packed.data + b"\x00", packed.end_map, item_count=1)
        with pytest.raises(FormatError):
            unpack_items(bad)
