"""Seeded cross-format round-trip fuzz.

Complements the hypothesis-based property test (random class *shapes*)
with a fixed-schema, seeded fuzzer that stresses the graph features the
shapes test does not reach: char-array strings, primitive arrays of every
width (including empty ones), reference arrays with null holes, shared
objects, and dense cyclic wiring. Every generated graph must round-trip
structurally identically through all four registered formats.
"""

from __future__ import annotations

import pytest

from repro.formats import (
    CerealSerializer,
    ClassRegistration,
    JavaSerializer,
    KryoSerializer,
    SkywaySerializer,
)
from repro.formats.verify import first_difference
from repro.jvm import FieldDescriptor, FieldKind, Heap, InstanceKlass, KlassRegistry
from repro.jvm.strings import new_string
from repro.workloads.datagen import DeterministicRandom

_SEEDS = tuple(range(1, 13))

_PRIMITIVE_ARRAY_KINDS = (
    FieldKind.BYTE,
    FieldKind.SHORT,
    FieldKind.INT,
    FieldKind.LONG,
    FieldKind.DOUBLE,
)

_RANGES = {
    FieldKind.BYTE: (-128, 127),
    FieldKind.SHORT: (-32768, 32767),
    FieldKind.INT: (-(2**31), 2**31 - 1),
    FieldKind.LONG: (-(2**62), 2**62 - 1),
}


def fuzz_registry() -> KlassRegistry:
    registry = KlassRegistry()
    registry.register(
        InstanceKlass(
            "FuzzNode",
            [
                FieldDescriptor("flag", FieldKind.BOOLEAN),
                FieldDescriptor("tag", FieldKind.BYTE),
                FieldDescriptor("code", FieldKind.CHAR),
                FieldDescriptor("num", FieldKind.INT),
                FieldDescriptor("big", FieldKind.LONG),
                FieldDescriptor("ratio", FieldKind.DOUBLE),
                FieldDescriptor("frac", FieldKind.FLOAT),
                FieldDescriptor("label", FieldKind.REFERENCE),
                FieldDescriptor("peer", FieldKind.REFERENCE),
                FieldDescriptor("data", FieldKind.REFERENCE),
            ],
        )
    )
    registry.register(
        InstanceKlass(
            "FuzzLeaf",
            [
                FieldDescriptor("ident", FieldKind.LONG),
                FieldDescriptor("weight", FieldKind.DOUBLE),
            ],
        )
    )
    return registry


def _fill_primitives(node, rng: DeterministicRandom) -> None:
    node.set("flag", rng.random() < 0.5)
    node.set("tag", rng.randint(*_RANGES[FieldKind.BYTE]))
    node.set("code", rng.randint(0, 0xFFFF))
    node.set("num", rng.randint(*_RANGES[FieldKind.INT]))
    node.set("big", rng.randint(*_RANGES[FieldKind.LONG]))
    node.set("ratio", rng.random() * 2e6 - 1e6)
    # FLOAT packs to 4 bytes in the compact formats; small integers are
    # exactly representable so the round trip must be value-exact.
    node.set("frac", float(rng.randint(-1000, 1000)))


def build_fuzz_graph(heap: Heap, seed: int):
    """Random graph with strings, arrays, nulls, sharing, and cycles.

    Beyond the base population, every graph carries the stress shapes the
    compiled-plan kernels special-case: a deep ``peer`` chain (frame-stack
    depth, handle back-reference runs), a wide primitive array (the bulk
    element copy path), and an all-null reference array.

    Returns a reference array rooting *every* created object so one
    serialize call must cover the whole population.
    """
    rng = DeterministicRandom(seed=seed * 0x9E37 + 1)
    nodes = []
    for _ in range(rng.randint(12, 28)):
        if rng.random() < 0.7:
            node = heap.new_instance("FuzzNode")
            _fill_primitives(node, rng)
        else:
            node = heap.new_instance("FuzzLeaf")
            node.set("ident", rng.randint(*_RANGES[FieldKind.LONG]))
            node.set("weight", rng.gauss_like())
        nodes.append(node)

    # Deep chain: each node's ``peer`` points at the previous one. Chain
    # nodes keep their peer through the wiring pass below so the chain
    # depth survives into the serialized graph.
    chain_head = None
    chain_addresses = set()
    for _ in range(rng.randint(60, 160)):
        node = heap.new_instance("FuzzNode")
        _fill_primitives(node, rng)
        node.set("peer", chain_head)
        chain_head = node
        chain_addresses.add(node.address)
        nodes.append(node)

    arrays = []
    for _ in range(rng.randint(3, 7)):
        kind = _PRIMITIVE_ARRAY_KINDS[
            rng.randint(0, len(_PRIMITIVE_ARRAY_KINDS) - 1)
        ]
        length = rng.randint(0, 24)  # empty arrays included on purpose
        array = heap.new_array(kind, length)
        low, high = _RANGES.get(kind, (0, 0))
        for index in range(length):
            if kind is FieldKind.DOUBLE:
                array.set_element(index, rng.random() * 100.0)
            else:
                array.set_element(index, rng.randint(low, high))
        arrays.append(array)
    # Wide primitive array: long bulk element runs.
    wide_kind = _PRIMITIVE_ARRAY_KINDS[
        rng.randint(0, len(_PRIMITIVE_ARRAY_KINDS) - 1)
    ]
    wide = heap.new_array(wide_kind, rng.randint(200, 500))
    low, high = _RANGES.get(wide_kind, (0, 0))
    for index in range(wide.length):
        if wide_kind is FieldKind.DOUBLE:
            wide.set_element(index, rng.random() * 1e9 - 5e8)
        else:
            wide.set_element(index, rng.randint(low, high))
    arrays.append(wide)
    for _ in range(rng.randint(1, 3)):
        arrays.append(new_string(heap, rng.ascii_string(rng.randint(0, 40))))

    ref_arrays = []
    # All-null reference array: a run of TC_NULL/MARK_NULL with no targets.
    ref_arrays.append(heap.new_array(FieldKind.REFERENCE, rng.randint(1, 8)))
    population = nodes + arrays
    for _ in range(rng.randint(1, 3)):
        length = rng.randint(0, 10)
        array = heap.new_array(FieldKind.REFERENCE, length)
        for index in range(length):
            if rng.random() < 0.25:
                continue  # null hole
            array.set_element(index, rng.choice(population))
        ref_arrays.append(array)

    # Wire instance references: nulls, shared targets, and cycles (any
    # object may point at any other, including itself).
    everything = population + ref_arrays
    for node in nodes:
        if node.klass.name != "FuzzNode":
            continue
        node.set("label", None if rng.random() < 0.4 else rng.choice(arrays))
        if node.address not in chain_addresses:
            node.set("peer", None if rng.random() < 0.3 else rng.choice(everything))
        node.set("data", None if rng.random() < 0.3 else rng.choice(ref_arrays))

    root = heap.new_array(FieldKind.REFERENCE, len(everything))
    for index, obj in enumerate(everything):
        root.set_element(index, obj)
    return root


def _make_serializers(registry: KlassRegistry):
    registration = ClassRegistration()
    for klass in registry:
        registration.register(klass)
    return {
        "java-builtin": JavaSerializer(),
        "java-codegen": JavaSerializer(use_codegen=True),
        "kryo": KryoSerializer(registration),
        "kryo-codegen": KryoSerializer(registration, use_codegen=True),
        "skyway": SkywaySerializer(registration),
        "cereal": CerealSerializer(registration),
        "cereal-codegen": CerealSerializer(registration, use_codegen=True),
    }


@pytest.mark.parametrize("seed", _SEEDS)
def test_fuzz_graph_roundtrips_all_formats(seed):
    registry = fuzz_registry()
    heap = Heap(registry=registry)
    root = build_fuzz_graph(heap, seed)
    # Serializers are built after the graph so every array klass created
    # on the fly is already registered.
    for name, serializer in _make_serializers(registry).items():
        result = serializer.serialize(root)
        receiver = Heap(registry=registry)
        rebuilt = serializer.deserialize(result.stream, receiver).root
        difference = first_difference(root, rebuilt)
        assert difference is None, f"{name} (seed {seed}): {difference}"


@pytest.mark.parametrize("seed", _SEEDS[:3])
def test_fuzz_graph_double_roundtrip_stable(seed):
    """Ser -> de -> ser -> de must still match the original graph."""
    registry = fuzz_registry()
    heap = Heap(registry=registry)
    root = build_fuzz_graph(heap, seed)
    for name, serializer in _make_serializers(registry).items():
        first = serializer.deserialize(
            serializer.serialize(root).stream, Heap(registry=registry)
        ).root
        second = serializer.deserialize(
            serializer.serialize(first).stream, Heap(registry=registry)
        ).root
        difference = first_difference(root, second)
        assert difference is None, f"{name} (seed {seed}): {difference}"


def test_fuzz_generator_is_deterministic():
    registry_a, registry_b = fuzz_registry(), fuzz_registry()
    root_a = build_fuzz_graph(Heap(registry=registry_a), 5)
    root_b = build_fuzz_graph(Heap(registry=registry_b), 5)
    assert first_difference(root_a, root_b) is None
