"""Tests for the RTL-level datapath models.

The datapaths must be bit-exact against the functional packing encoders,
and their cycle counts must match the rates the SU/DU timing models charge
(one reference item per cycle; 64 bitmap bits per cycle; one unpacked item
per cycle; single-cycle popcount of an 8-bit chunk).
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cereal.rtl import (
    BitmapPackerDatapath,
    PackerDatapath,
    PopcountTree,
    UnpackerDatapath,
)
from repro.cereal.rtl.bitpack import priority_encode
from repro.common.errors import SimulationError
from repro.formats.packing import pack_bitmaps, pack_items


class TestPriorityEncoder:
    def test_zero(self):
        assert priority_encode(0) == 0

    @pytest.mark.parametrize("value,expected", [(1, 1), (2, 2), (255, 8), (256, 9)])
    def test_known_values(self, value, expected):
        assert priority_encode(value) == expected

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            priority_encode(-1)


class TestPackerDatapath:
    @given(st.lists(st.integers(0, 2**40), max_size=100))
    def test_bit_exact_against_functional_encoder(self, values):
        datapath = PackerDatapath()
        for value in values:
            datapath.push(value)
        assert datapath.result() == pack_items(values)

    @given(st.lists(st.integers(0, 2**32), min_size=1, max_size=50))
    def test_one_item_per_cycle(self, values):
        datapath = PackerDatapath()
        for value in values:
            datapath.push(value)
        # The rate the SU's reference array writer is charged
        # (_RAW_ITEMS_PER_CYCLE = 1.0 in repro.cereal.su).
        assert datapath.cycles == len(values)

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            PackerDatapath().push(-1)


class TestBitmapPackerDatapath:
    @given(
        st.lists(
            st.lists(st.integers(0, 1), min_size=1, max_size=80),
            max_size=30,
        )
    )
    def test_bit_exact_against_functional_encoder(self, bitmaps):
        datapath = BitmapPackerDatapath()
        for bitmap in bitmaps:
            datapath.push_bitmap(bitmap)
        assert datapath.result() == pack_bitmaps(bitmaps)

    def test_cycles_match_omm_rate(self):
        datapath = BitmapPackerDatapath()
        datapath.push_bitmap([0] * 64)  # exactly one 64-bit beat
        datapath.push_bitmap([0] * 65)  # spills into a second beat
        assert datapath.cycles == 3

    def test_empty_bitmap_rejected(self):
        with pytest.raises(SimulationError):
            BitmapPackerDatapath().push_bitmap([])


class TestUnpackerDatapath:
    @given(st.lists(st.integers(0, 2**40), max_size=80))
    def test_values_round_trip(self, values):
        unpacker = UnpackerDatapath(pack_items(values))
        assert unpacker.drain_values() == values

    @given(
        st.lists(
            st.lists(st.integers(0, 1), min_size=1, max_size=60),
            max_size=20,
        )
    )
    def test_bitmaps_round_trip(self, bitmaps):
        unpacker = UnpackerDatapath(pack_bitmaps(bitmaps))
        assert unpacker.drain_bitmaps() == bitmaps

    @given(st.lists(st.integers(0, 2**20), min_size=1, max_size=50))
    def test_one_item_per_cycle(self, values):
        unpacker = UnpackerDatapath(pack_items(values))
        unpacker.drain_values()
        assert unpacker.cycles == len(values)

    def test_drained_returns_none(self):
        unpacker = UnpackerDatapath(pack_items([7]))
        assert unpacker.next_value() == 7
        assert unpacker.next_value() is None


class TestHardwareSoftwareRoundTrip:
    @given(st.lists(st.integers(0, 2**32), max_size=60))
    def test_pack_with_hardware_unpack_with_hardware(self, values):
        packer = PackerDatapath()
        for value in values:
            packer.push(value)
        unpacker = UnpackerDatapath(packer.result())
        assert unpacker.drain_values() == values


class TestPopcountTree:
    def test_all_256_bytes(self):
        tree = PopcountTree(8)
        for value in range(256):
            ones, zeros = tree.count_byte(value)
            assert ones == bin(value).count("1")
            assert ones + zeros == 8

    def test_depth_is_log2(self):
        assert PopcountTree(8).depth == 3
        assert PopcountTree(64).depth == 6

    def test_levels_structure(self):
        tree = PopcountTree(8)
        levels = tree.levels([1, 0, 1, 1, 0, 0, 1, 0])
        assert len(levels) == tree.depth + 1
        assert levels[-1] == [4]

    def test_non_power_of_two_rejected(self):
        with pytest.raises(SimulationError):
            PopcountTree(6)

    def test_wrong_width_rejected(self):
        with pytest.raises(SimulationError):
            PopcountTree(8).count([1, 0])

    def test_non_binary_rejected(self):
        with pytest.raises(SimulationError):
            PopcountTree(8).count([2, 0, 0, 0, 0, 0, 0, 0])
