"""Additional mini-Spark coverage: Skyway backend, engine edge cases."""

import pytest

from repro.formats import KryoSerializer, SkywaySerializer
from repro.jvm.klass import FieldDescriptor, FieldKind, InstanceKlass
from repro.spark import MiniSparkContext, SoftwareBackend
from repro.spark.apps import SPARK_APPS


def make_context(serializer=None):
    backend = SoftwareBackend(serializer or KryoSerializer())
    context = MiniSparkContext(backend)
    klass = context.registry.register(
        InstanceKlass(
            "Item",
            [
                FieldDescriptor("key", FieldKind.LONG),
                FieldDescriptor("payload", FieldKind.REFERENCE),
            ],
        )
    )
    context.registry.array_klass(FieldKind.LONG)
    context.registry.array_klass(FieldKind.REFERENCE)
    registration = getattr(context.backend.serializer, "registration", None)
    if registration is not None:
        for k in context.registry:
            registration.register(k)
    return context, klass


def make_items(context, klass, count):
    items = []
    for index in range(count):
        item = context.executor_heap.allocate(klass)
        item.set("key", index)
        payload = context.executor_heap.new_array(FieldKind.LONG, 4)
        payload.set_element(0, index * 7)
        item.set("payload", payload)
        items.append(item)
    return items


class TestSkywayBackend:
    def test_apps_run_on_skyway(self):
        result = SPARK_APPS["terasort"](SoftwareBackend(SkywaySerializer()), scale=0.1)
        assert result.breakdown.sd_ns > 0

    def test_skyway_kernel_fast_but_streams_inflated(self):
        """Related work: Skyway's S/D *kernel* beats Kryo's, but its raw
        object images double the stream volume, so the byte-proportional
        framework path claws the advantage back (consistent with Skyway's
        own modest 16% end-to-end claim)."""
        from repro.formats import JavaSerializer

        java = SPARK_APPS["als"](SoftwareBackend(JavaSerializer()), scale=0.25)
        kryo = SPARK_APPS["als"](SoftwareBackend(KryoSerializer()), scale=0.25)
        skyway = SPARK_APPS["als"](SoftwareBackend(SkywaySerializer()), scale=0.25)

        def kernel_ns(result):
            return sum(op.kernel_time_ns for op in result.breakdown.operations)

        assert kernel_ns(skyway) < kernel_ns(java)
        assert kernel_ns(skyway) < 1.5 * kernel_ns(kryo)
        assert (
            skyway.breakdown.total_stream_bytes
            > 1.5 * kryo.breakdown.total_stream_bytes
        )
        # End to end, Skyway stays in Kryo's neighbourhood.
        ratio = kryo.breakdown.sd_ns / skyway.breakdown.sd_ns
        assert 0.4 < ratio < 2.0

    def test_skyway_shuffle_functionally_correct(self):
        context, klass = make_context(SkywaySerializer())
        items = make_items(context, klass, 12)
        dataset = context.parallelize(items, 3)
        shuffled = dataset.shuffle(key_fn=lambda r: r.get("key") % 2,
                                   num_partitions=2)
        assert shuffled.record_count == 12
        values = sorted(
            r.get("payload").get_element(0) for r in
            shuffled.partitions[0] + shuffled.partitions[1]
        )
        assert values == sorted(index * 7 for index in range(12))


class TestEngineEdgeCases:
    def test_empty_partition_shuffle(self):
        context, klass = make_context()
        items = make_items(context, klass, 3)
        dataset = context.parallelize(items, 4)  # one partition empty
        shuffled = dataset.shuffle(key_fn=lambda r: 0, num_partitions=2)
        assert shuffled.record_count == 3
        assert shuffled.partitions[1] == []

    def test_zero_partitions_rejected(self):
        context, _ = make_context()
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            context.parallelize([], 0)

    def test_collect_empty_dataset(self):
        context, _ = make_context()
        dataset = context.parallelize([], 2)
        assert dataset.collect() == []

    def test_map_partitions_counts_compute(self):
        context, klass = make_context()
        items = make_items(context, klass, 10)
        dataset = context.parallelize(items, 2)
        before = context.breakdown.compute_ns
        dataset.map_partitions(lambda p: p, instructions_per_record=900.0)
        assert context.breakdown.compute_ns == pytest.approx(
            before + 10 * 900.0 / (2.5 * 3.6)
        )

    def test_cached_dataset_rereads_same_records(self):
        context, klass = make_context()
        items = make_items(context, klass, 6)
        cached = context.parallelize(items, 2).cache_serialized()
        first = cached.read()
        second = cached.read()
        keys_first = sorted(r.get("key") for p in first.partitions for r in p)
        keys_second = sorted(r.get("key") for p in second.partitions for r in p)
        assert keys_first == keys_second == list(range(6))
        # Reads hand out fresh partition lists, not aliases.
        first.partitions[0].clear()
        assert cached.read().record_count == 6

    def test_shuffle_operation_sites_tagged(self):
        context, klass = make_context()
        items = make_items(context, klass, 8)
        context.parallelize(items, 2).shuffle(key_fn=lambda r: r.get("key"))
        sites = {op.site for op in context.breakdown.operations}
        assert sites == {"shuffle"}

    def test_gc_accounts_deserialization_allocations(self):
        context, klass = make_context()
        items = make_items(context, klass, 8)
        dataset = context.parallelize(items, 2)
        gc_before = context.breakdown.gc_ns
        dataset.shuffle(key_fn=lambda r: r.get("key"))
        assert context.breakdown.gc_ns > gc_before
