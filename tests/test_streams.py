"""Tests for the byte-stream reader/writer and its varint encodings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import FormatError
from repro.formats.streams import StreamReader, StreamWriter


class TestWriterSections:
    def test_sections_accumulate(self):
        writer = StreamWriter()
        writer.write_u32(1, "header")
        writer.write_u32(2, "header")
        writer.write_u8(3, "data")
        assert writer.sections == {"header": 8, "data": 1}
        assert len(writer) == 9

    def test_getvalue_matches_writes(self):
        writer = StreamWriter()
        writer.write_bytes(b"ab", "x")
        writer.write_u16(0x0102, "x")
        assert writer.getvalue() == b"ab\x02\x01"


class TestScalars:
    @pytest.mark.parametrize(
        "write,read,value",
        [
            ("write_u8", "read_u8", 0xAB),
            ("write_u16", "read_u16", 0xABCD),
            ("write_u32", "read_u32", 0xDEADBEEF),
            ("write_u64", "read_u64", 0x0123456789ABCDEF),
            ("write_i32", "read_i32", -123456),
            ("write_i64", "read_i64", -(2**60)),
        ],
    )
    def test_round_trip(self, write, read, value):
        writer = StreamWriter()
        getattr(writer, write)(value, "s")
        reader = StreamReader(writer.getvalue())
        assert getattr(reader, read)() == value

    def test_f64_round_trip(self):
        writer = StreamWriter()
        writer.write_f64(-0.125, "s")
        assert StreamReader(writer.getvalue()).read_f64() == -0.125


class TestVarints:
    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_unsigned_round_trip(self, value):
        writer = StreamWriter()
        writer.write_varint(value, "v")
        assert StreamReader(writer.getvalue()).read_varint() == value

    @given(st.integers(min_value=-(2**62), max_value=2**62 - 1))
    def test_signed_round_trip(self, value):
        writer = StreamWriter()
        writer.write_signed_varint(value, "v")
        assert StreamReader(writer.getvalue()).read_signed_varint() == value

    def test_small_values_take_one_byte(self):
        writer = StreamWriter()
        assert writer.write_varint(127, "v") == 1
        assert writer.write_varint(128, "v") == 2

    def test_zigzag_keeps_small_negatives_small(self):
        writer = StreamWriter()
        assert writer.write_signed_varint(-1, "v") == 1
        assert writer.write_signed_varint(-64, "v") == 1
        assert writer.write_signed_varint(-65, "v") == 2

    def test_negative_unsigned_rejected(self):
        with pytest.raises(FormatError):
            StreamWriter().write_varint(-1, "v")

    def test_overlong_varint_rejected(self):
        reader = StreamReader(b"\xff" * 11)
        with pytest.raises(FormatError):
            reader.read_varint()


class TestStrings:
    @given(st.text(max_size=100))
    def test_utf_round_trip(self, text):
        writer = StreamWriter()
        writer.write_utf(text, "s")
        assert StreamReader(writer.getvalue()).read_utf() == text

    def test_too_long_rejected(self):
        with pytest.raises(FormatError):
            StreamWriter().write_utf("x" * 70000, "s")


class TestReaderBounds:
    def test_underflow_rejected(self):
        reader = StreamReader(b"\x01\x02")
        with pytest.raises(FormatError):
            reader.read_u32()

    def test_position_tracks(self):
        reader = StreamReader(b"\x01\x02\x03")
        reader.read_u8()
        assert reader.position == 1
        assert reader.remaining == 2

    def test_expect_end(self):
        reader = StreamReader(b"\x01")
        with pytest.raises(FormatError):
            reader.expect_end()
        reader.read_u8()
        reader.expect_end()  # no error once drained
