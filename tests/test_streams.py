"""Tests for the byte-stream reader/writer and its varint encodings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import FormatError
from repro.formats.streams import StreamReader, StreamWriter


class TestWriterSections:
    def test_sections_accumulate(self):
        writer = StreamWriter()
        writer.write_u32(1, "header")
        writer.write_u32(2, "header")
        writer.write_u8(3, "data")
        assert writer.sections == {"header": 8, "data": 1}
        assert len(writer) == 9

    def test_getvalue_matches_writes(self):
        writer = StreamWriter()
        writer.write_bytes(b"ab", "x")
        writer.write_u16(0x0102, "x")
        assert writer.getvalue() == b"ab\x02\x01"


class TestScalars:
    @pytest.mark.parametrize(
        "write,read,value",
        [
            ("write_u8", "read_u8", 0xAB),
            ("write_u16", "read_u16", 0xABCD),
            ("write_u32", "read_u32", 0xDEADBEEF),
            ("write_u64", "read_u64", 0x0123456789ABCDEF),
            ("write_i32", "read_i32", -123456),
            ("write_i64", "read_i64", -(2**60)),
        ],
    )
    def test_round_trip(self, write, read, value):
        writer = StreamWriter()
        getattr(writer, write)(value, "s")
        reader = StreamReader(writer.getvalue())
        assert getattr(reader, read)() == value

    def test_f64_round_trip(self):
        writer = StreamWriter()
        writer.write_f64(-0.125, "s")
        assert StreamReader(writer.getvalue()).read_f64() == -0.125


class TestVarints:
    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_unsigned_round_trip(self, value):
        writer = StreamWriter()
        writer.write_varint(value, "v")
        assert StreamReader(writer.getvalue()).read_varint() == value

    @given(st.integers(min_value=-(2**62), max_value=2**62 - 1))
    def test_signed_round_trip(self, value):
        writer = StreamWriter()
        writer.write_signed_varint(value, "v")
        assert StreamReader(writer.getvalue()).read_signed_varint() == value

    def test_small_values_take_one_byte(self):
        writer = StreamWriter()
        assert writer.write_varint(127, "v") == 1
        assert writer.write_varint(128, "v") == 2

    def test_zigzag_keeps_small_negatives_small(self):
        writer = StreamWriter()
        assert writer.write_signed_varint(-1, "v") == 1
        assert writer.write_signed_varint(-64, "v") == 1
        assert writer.write_signed_varint(-65, "v") == 2

    def test_negative_unsigned_rejected(self):
        with pytest.raises(FormatError):
            StreamWriter().write_varint(-1, "v")

    def test_overlong_varint_rejected(self):
        reader = StreamReader(b"\xff" * 11)
        with pytest.raises(FormatError):
            reader.read_varint()

    def test_tenth_byte_overflow_rejected(self):
        # Nine continuation bytes put the 10th byte at shift 63: any final
        # byte above 0x01 decodes past 2^64 and must be rejected, not
        # silently wrapped or returned as an oversized Python int.
        for final in (0x02, 0x03, 0x7F):
            reader = StreamReader(b"\x80" * 9 + bytes([final]))
            with pytest.raises(FormatError):
                reader.read_varint()

    def test_tenth_byte_msb_only_is_valid(self):
        # 2^63 encodes as nine 0x80 continuation bytes + final 0x01.
        reader = StreamReader(b"\x80" * 9 + b"\x01")
        assert reader.read_varint() == 1 << 63

    def test_u64_max_round_trip(self):
        writer = StreamWriter()
        writer.write_varint(2**64 - 1, "v")
        assert StreamReader(writer.getvalue()).read_varint() == 2**64 - 1

    @pytest.mark.parametrize("value", [2**63 - 1, -(2**63), -(2**63) + 1])
    def test_signed_boundaries_round_trip(self, value):
        writer = StreamWriter()
        writer.write_signed_varint(value, "v")
        assert StreamReader(writer.getvalue()).read_signed_varint() == value

    @given(st.integers(min_value=2**62, max_value=2**64 - 1))
    def test_unsigned_high_range_round_trip(self, value):
        writer = StreamWriter()
        writer.write_varint(value, "v")
        reader = StreamReader(writer.getvalue())
        decoded = reader.read_varint()
        assert decoded == value
        assert decoded < 1 << 64

    @given(
        st.one_of(
            st.integers(min_value=-(2**63), max_value=-(2**63) + 1000),
            st.integers(min_value=2**63 - 1000, max_value=2**63 - 1),
        )
    )
    def test_signed_boundary_neighborhood_round_trip(self, value):
        writer = StreamWriter()
        writer.write_signed_varint(value, "v")
        decoded = StreamReader(writer.getvalue()).read_signed_varint()
        assert decoded == value
        assert -(1 << 63) <= decoded < 1 << 63


class TestStrings:
    @given(st.text(max_size=100))
    def test_utf_round_trip(self, text):
        writer = StreamWriter()
        writer.write_utf(text, "s")
        assert StreamReader(writer.getvalue()).read_utf() == text

    def test_too_long_rejected(self):
        with pytest.raises(FormatError):
            StreamWriter().write_utf("x" * 70000, "s")


class TestReaderBounds:
    def test_underflow_rejected(self):
        reader = StreamReader(b"\x01\x02")
        with pytest.raises(FormatError):
            reader.read_u32()

    def test_position_tracks(self):
        reader = StreamReader(b"\x01\x02\x03")
        reader.read_u8()
        assert reader.position == 1
        assert reader.remaining == 2

    def test_expect_end(self):
        reader = StreamReader(b"\x01")
        with pytest.raises(FormatError):
            reader.expect_end()
        reader.read_u8()
        reader.expect_end()  # no error once drained
