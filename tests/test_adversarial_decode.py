"""Adversarial-stream defense: typed rejection and transactional decode.

Golden-seed replays of the :mod:`repro.formats.adversarial` corpus plus
unit tests for the pieces underneath it: decode budgets, truncation
accounting, registry guards, heap checkpoint/rollback, and the
``decode.*`` counters.
"""

import pytest

from repro.common.errors import (
    FormatError,
    HeapError,
    MalformedVarintError,
    RegistrationError,
    ResourceLimitError,
    TruncatedStreamError,
    UnknownClassError,
)
from repro.formats import ClassRegistration, KryoSerializer
from repro.formats.adversarial import (
    AdversarialSample,
    as_stream,
    build_corpus,
)
from repro.formats.limits import DEFAULT_LIMITS, DecodeLimits, resolve_limits
from repro.formats.secure import (
    REASON_MALFORMED,
    REASON_RESOURCE_LIMIT,
    REASON_TRUNCATED,
    REASON_UNKNOWN_CLASS,
    REASON_VARINT,
    classify_rejection,
    decode_stats,
    secure_deserialize,
)
from repro.formats.streams import StreamReader
from repro.jvm import (
    FieldDescriptor,
    FieldKind,
    Heap,
    InstanceKlass,
    KlassRegistry,
)
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.workloads.micro import build_microbench, register_micro_klasses

GOLDEN_SEEDS = (0xC0FFEE, 1, 2024)


@pytest.fixture(autouse=True)
def fresh_metrics():
    set_registry(MetricsRegistry())
    yield
    set_registry(MetricsRegistry())


def heap_state(heap):
    token = heap.checkpoint()
    return (token.alloc_ptr, token.alloc_count)


class TestDecodeLimits:
    def test_defaults_are_generous_but_finite(self):
        limits = DecodeLimits()
        limits.check_objects(1)
        limits.check_array_length(1000)
        with pytest.raises(ResourceLimitError):
            limits.check_objects(limits.max_objects + 1)
        with pytest.raises(ResourceLimitError):
            limits.check_array_length(limits.max_array_length + 1)
        with pytest.raises(ResourceLimitError):
            limits.check_depth(limits.max_depth + 1)
        with pytest.raises(ResourceLimitError):
            limits.check_graph_bytes(limits.max_graph_bytes + 1)
        with pytest.raises(ResourceLimitError):
            limits.check_stream_bytes(limits.max_stream_bytes + 1)

    def test_resolve_none_is_default(self):
        assert resolve_limits(None) is DEFAULT_LIMITS
        custom = DecodeLimits(max_objects=7)
        assert resolve_limits(custom) is custom

    def test_error_carries_budget_details(self):
        with pytest.raises(ResourceLimitError) as exc:
            DecodeLimits(max_array_length=10).check_array_length(99)
        assert exc.value.limit_name == "array_length"
        assert exc.value.requested == 99
        assert exc.value.allowed == 10
        assert "decode budget exceeded" in str(exc.value)


class TestTruncationAccounting:
    def test_short_read_reports_offsets(self):
        reader = StreamReader(b"\x01\x02\x03")
        reader.read_bytes(2)
        with pytest.raises(TruncatedStreamError) as exc:
            reader.read_bytes(4)
        assert exc.value.offset == 2
        assert exc.value.needed == 4
        assert exc.value.available == 1

    def test_truncated_is_a_format_error(self):
        assert issubclass(TruncatedStreamError, FormatError)
        assert issubclass(MalformedVarintError, FormatError)
        assert issubclass(ResourceLimitError, FormatError)
        # UnknownClassError must satisfy both hierarchies: decoders treat it
        # as a stream fault, registry callers as a registration fault.
        assert issubclass(UnknownClassError, FormatError)
        assert issubclass(UnknownClassError, RegistrationError)


class TestRegistryGuards:
    def test_out_of_range_and_negative_ids(self):
        registration = ClassRegistration()
        registration.register(
            InstanceKlass("Only", [FieldDescriptor("v", FieldKind.INT)])
        )
        assert registration.klass_of(0).name == "Only"
        with pytest.raises(UnknownClassError) as exc:
            registration.klass_of(5, offset=17)
        assert exc.value.class_id == 5
        assert "offset 17" in str(exc.value)
        with pytest.raises(UnknownClassError):
            registration.klass_of(-1)


class TestHeapTransaction:
    def test_rollback_discards_new_objects(self):
        registry = KlassRegistry()
        klass = InstanceKlass("Txn", [FieldDescriptor("v", FieldKind.LONG)])
        registry.register(klass)
        heap = Heap(registry=registry)
        keeper = heap.allocate(klass)
        keeper.set("v", 41)
        token = heap.checkpoint()
        before = heap_state(heap)
        doomed = heap.allocate(klass)
        doomed.set("v", 99)
        heap.rollback(token)
        assert heap_state(heap) == before
        assert keeper.get("v") == 41
        # The rolled-back allocation's memory is scrubbed.
        assert heap.memory.read_u64(doomed.address) == 0

    def test_stale_token_rejected(self):
        registry = KlassRegistry()
        klass = InstanceKlass("Txn2", [FieldDescriptor("v", FieldKind.LONG)])
        registry.register(klass)
        heap = Heap(registry=registry)
        early = heap.checkpoint()
        heap.allocate(klass)
        late = heap.checkpoint()
        heap.rollback(early)
        # ``late`` now references an allocation frontier ahead of the
        # heap's: rolling back to it would resurrect dead state.
        with pytest.raises(HeapError):
            heap.rollback(late)


class TestAdversarialCorpus:
    @pytest.mark.parametrize("seed", GOLDEN_SEEDS)
    def test_corpus_is_deterministic(self, seed):
        first = build_corpus(seed=seed, truncations=3, bitflips=3, garbage=2)
        second = build_corpus(seed=seed, truncations=3, bitflips=3, garbage=2)
        assert [s.name for s in first.samples] == [s.name for s in second.samples]
        assert [s.data for s in first.samples] == [s.data for s in second.samples]

    def test_corpus_covers_every_format(self):
        corpus = build_corpus(truncations=2, bitflips=2, garbage=1)
        assert set(corpus.by_format()) == {
            "java-builtin",
            "kryo",
            "skyway",
            "cereal",
            "kryo-versioned",
        }

    @pytest.mark.parametrize("seed", GOLDEN_SEEDS)
    def test_typed_rejection_and_clean_heap(self, seed):
        """The hardening contract over the full corpus.

        Every sample either decodes or raises a FormatError subtype; a
        failed decode leaves the destination heap byte-identical to its
        pre-decode state; every must_reject sample is actually rejected.
        """
        corpus = build_corpus(seed=seed, truncations=4, bitflips=4, garbage=2)
        serializers = {
            name: corpus.serializer_for(name) for name in corpus.by_format()
        }
        for sample in corpus.samples:
            heap = corpus.fresh_heap()
            before = heap_state(heap)
            try:
                secure_deserialize(
                    serializers[sample.format_name],
                    as_stream(sample.format_name, sample.data),
                    heap,
                )
            except FormatError:
                assert heap_state(heap) == before, sample.name
            else:
                assert not sample.must_reject, (
                    f"{sample.name}: provably invalid stream accepted"
                )

    def test_crafted_attacks_raise_specific_types(self):
        corpus = build_corpus(truncations=0, bitflips=0, garbage=0)
        expectations = {
            "kryo/class_id_oob/0": UnknownClassError,
            "kryo/oversized_varint/0": MalformedVarintError,
            "kryo/array_bomb/0": ResourceLimitError,
            "kryo/cycle_bomb/0": ResourceLimitError,
            "java-builtin/unknown_class/0": UnknownClassError,
            "java-builtin/array_bomb/0": ResourceLimitError,
        }
        by_name = {s.name: s for s in corpus.samples}
        for name, expected in expectations.items():
            sample = by_name[name]
            heap = corpus.fresh_heap()
            with pytest.raises(expected):
                secure_deserialize(
                    corpus.serializer_for(sample.format_name),
                    as_stream(sample.format_name, sample.data),
                    heap,
                )

    def test_rejections_counted_by_reason(self):
        set_registry(MetricsRegistry())
        corpus = build_corpus(truncations=2, bitflips=0, garbage=0)
        kryo = corpus.serializer_for("kryo")
        truncated = [
            s for s in corpus.samples if s.name.startswith("kryo/truncate")
        ]
        for sample in truncated:
            with pytest.raises(FormatError):
                secure_deserialize(
                    kryo, as_stream("kryo", sample.data), corpus.fresh_heap()
                )
        stats = decode_stats()
        assert stats["rejected"] >= len(truncated)
        assert stats["rejected_by_reason"].get(REASON_TRUNCATED, 0) >= 1


class TestSecureDeserialize:
    def build_valid(self):
        registry = KlassRegistry()
        register_micro_klasses(registry)
        heap = Heap(registry=registry)
        root = build_microbench(heap, "tree-narrow")
        registration = ClassRegistration()
        for klass in registry:
            registration.register(klass)
        serializer = KryoSerializer(registration)
        return registry, serializer, serializer.serialize(root).stream

    def test_valid_stream_accepted_and_counted(self):
        set_registry(MetricsRegistry())
        registry, serializer, stream = self.build_valid()
        result = secure_deserialize(serializer, stream, Heap(registry=registry))
        assert result.root is not None
        stats = decode_stats()
        assert stats["accepted"] == 1
        assert stats["rejected"] == 0

    def test_custom_limit_rejects_big_graph(self):
        registry, serializer, stream = self.build_valid()
        heap = Heap(registry=registry)
        before = heap_state(heap)
        with pytest.raises(ResourceLimitError):
            secure_deserialize(
                serializer, stream, heap, limits=DecodeLimits(max_objects=3)
            )
        assert heap_state(heap) == before

    def test_classify_covers_the_reason_space(self):
        assert classify_rejection(TruncatedStreamError(0, 1, 0)) == REASON_TRUNCATED
        assert classify_rejection(MalformedVarintError("x")) == REASON_VARINT
        assert classify_rejection(UnknownClassError(3)) == REASON_UNKNOWN_CLASS
        assert (
            classify_rejection(ResourceLimitError("objects", 2, 1))
            == REASON_RESOURCE_LIMIT
        )
        assert classify_rejection(ValueError("junk")) == REASON_MALFORMED
