"""Tests for the memory substrate: MemorySpace, MemoryTrace, DRAMModel."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.config import DRAMConfig
from repro.common.errors import HeapError
from repro.memory import AccessKind, DRAMModel, MemorySpace, MemoryTrace


class TestMemorySpace:
    def test_read_back_write(self):
        mem = MemorySpace(1024)
        mem.write(100, b"hello")
        assert mem.read(100, 5) == b"hello"

    def test_unwritten_memory_reads_zero(self):
        mem = MemorySpace(1024)
        assert mem.read(0, 16) == bytes(16)

    def test_cross_page_write_and_read(self):
        mem = MemorySpace(256 * 1024)
        data = bytes(range(256)) * 8
        address = 64 * 1024 - 100  # straddles the 64 KiB page boundary
        mem.write(address, data)
        assert mem.read(address, len(data)) == data

    def test_out_of_bounds_rejected(self):
        mem = MemorySpace(128)
        with pytest.raises(HeapError):
            mem.read(120, 16)
        with pytest.raises(HeapError):
            mem.write(-1, b"x")

    def test_u64_round_trip(self):
        mem = MemorySpace(1024)
        mem.write_u64(8, 0xDEADBEEF12345678)
        assert mem.read_u64(8) == 0xDEADBEEF12345678

    def test_u64_little_endian(self):
        mem = MemorySpace(1024)
        mem.write_u64(0, 1)
        assert mem.read(0, 8) == b"\x01" + bytes(7)

    def test_i64_negative(self):
        mem = MemorySpace(1024)
        mem.write_i64(0, -42)
        assert mem.read_i64(0) == -42

    def test_f64_round_trip(self):
        mem = MemorySpace(1024)
        mem.write_f64(0, 3.14159)
        assert mem.read_f64(0) == pytest.approx(3.14159)

    def test_fill(self):
        mem = MemorySpace(1024)
        mem.fill(10, 5, 0xAB)
        assert mem.read(10, 5) == b"\xab" * 5

    def test_copy(self):
        mem = MemorySpace(1024)
        mem.write(0, b"cereal")
        mem.copy(0, 100, 6)
        assert mem.read(100, 6) == b"cereal"

    def test_resident_bytes_is_lazy(self):
        mem = MemorySpace(1 << 40)  # 1 TiB address space
        assert mem.resident_bytes == 0
        mem.write_u8(123, 1)
        assert mem.resident_bytes == 64 * 1024

    @given(st.binary(min_size=1, max_size=300), st.integers(0, 500))
    def test_arbitrary_round_trip(self, data, address):
        mem = MemorySpace(4096)
        mem.write(address, data)
        assert mem.read(address, len(data)) == data


class TestMemoryTrace:
    def test_records_reads_and_writes(self):
        trace = MemoryTrace()
        mem = MemorySpace(1024, trace=trace)
        mem.write(0, b"abcd")
        mem.read(0, 4)
        assert trace.write_bytes == 4
        assert trace.read_bytes == 4
        assert trace.accesses[0].kind is AccessKind.WRITE
        assert trace.accesses[1].kind is AccessKind.READ

    def test_summary_mode_drops_accesses(self):
        trace = MemoryTrace(keep_accesses=False)
        mem = MemorySpace(1024, trace=trace)
        mem.write(0, b"abcd")
        assert len(trace) == 0
        assert trace.write_bytes == 4

    def test_unique_line_count(self):
        trace = MemoryTrace()
        mem = MemorySpace(4096, trace=trace)
        mem.read(0, 8)
        mem.read(8, 8)  # same 64 B line
        mem.read(128, 8)  # different line
        assert trace.unique_line_count == 2

    def test_line_accesses_split_multiline(self):
        trace = MemoryTrace()
        trace.record_read(60, 16)  # spans lines 0 and 1
        parts = list(trace.line_accesses())
        assert len(parts) == 2
        assert parts[0].address == 60 and parts[0].length == 4
        assert parts[1].address == 64 and parts[1].length == 12

    def test_clear(self):
        trace = MemoryTrace()
        trace.record_write(0, 8)
        trace.clear()
        assert trace.total_bytes == 0
        assert trace.unique_line_count == 0


class TestDRAMModel:
    def test_zero_load_latency(self):
        dram = DRAMModel()
        completion = dram.access(0.0, 0, 64, is_write=False)
        expected = dram.occupancy_ns(64) + dram.config.zero_load_latency_ns
        assert completion == pytest.approx(expected)

    def test_channel_interleaving(self):
        dram = DRAMModel()
        channels = {dram.channel_of(line * 64) for line in range(8)}
        assert channels == set(range(dram.config.channels))

    def test_same_channel_serializes(self):
        dram = DRAMModel()
        first = dram.access(0.0, 0, 64, is_write=False)
        # Same line -> same channel -> queued behind the first access.
        second = dram.access(0.0, 0, 64, is_write=False)
        assert second > first

    def test_different_channels_overlap(self):
        dram = DRAMModel()
        first = dram.access(0.0, 0, 64, is_write=False)
        second = dram.access(0.0, 64, 64, is_write=False)
        assert second == pytest.approx(first)

    def test_stats_accumulate(self):
        dram = DRAMModel()
        dram.access(0.0, 0, 64, is_write=False)
        dram.access(0.0, 64, 64, is_write=True)
        assert dram.stats.read_bytes == 64
        assert dram.stats.write_bytes == 64
        assert dram.stats.accesses == 2

    def test_bandwidth_utilization_bounded(self):
        dram = DRAMModel()
        now = 0.0
        for i in range(1000):
            now = dram.access(now, i * 64, 64, is_write=False)
        util = dram.stats.bandwidth_utilization(
            dram.stats.last_completion_ns, dram.config
        )
        assert 0.0 < util <= 1.0

    def test_stream_time_bandwidth_bound(self):
        config = DRAMConfig()
        dram = DRAMModel(config)
        total = 64 * 1000 * 1000  # 64 MB
        time_ns = dram.stream_time_ns(total, outstanding=64)
        ideal_ns = total / config.peak_bandwidth_bytes_per_sec * 1e9
        assert time_ns >= ideal_ns
        assert time_ns < ideal_ns * 1.2

    def test_stream_time_latency_bound_with_one_outstanding(self):
        dram = DRAMModel()
        # One outstanding request: every line pays full zero-load latency.
        time_ns = dram.stream_time_ns(64 * 100, outstanding=1)
        assert time_ns >= 100 * dram.config.zero_load_latency_ns

    def test_reset(self):
        dram = DRAMModel()
        dram.access(0.0, 0, 64, is_write=False)
        dram.reset()
        assert dram.stats.accesses == 0
