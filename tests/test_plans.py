"""Compiled serialization plans: equivalence, caches, pools, traversal.

The plan kernels in :mod:`repro.formats.plans` exist purely for speed —
every observable output (stream bytes, section accounting, work profiles,
rebuilt graphs) must match the preserved interpreter paths exactly. These
tests pin that equivalence over the fuzz corpus and hand-built edge
shapes, and cover the supporting machinery the plans ride on: the plan
cache, the layout-cache counters, the buffer pool, and the slot-run
traversal fast path.
"""

from __future__ import annotations

import pytest

from tests.test_fuzz_roundtrip import build_fuzz_graph, fuzz_registry

from repro.common.bufpool import (
    BufferPool,
    acquire_buffer,
    pool_stats,
    release_buffer,
    reset_pool,
)
from repro.common.errors import FormatError
from repro.formats import (
    CerealSerializer,
    ClassRegistration,
    JavaSerializer,
    KryoSerializer,
)
from repro.formats import plans
from repro.formats.slow_reference import oracle_serializer
from repro.formats.verify import first_difference
from repro.jvm import FieldKind, Heap
from repro.jvm import layout_cache
from repro.jvm.graph import (
    ObjectGraph,
    SlotRunGraph,
    traverse_object_graph,
    traverse_object_graph_bfs,
    traverse_slot_runs,
)

_SEEDS = (1, 2, 3, 4, 5, 6)


def _registration(registry) -> ClassRegistration:
    registration = ClassRegistration()
    for klass in registry:
        registration.register(klass)
    return registration


def _serializer_pairs(registration):
    """(name, fast-path serializer, interpreter-path serializer) triples.

    Both accelerated tiers appear against the same interpreter oracle —
    plan-path and codegen-path entries — so these checks pin the full
    three-way interpreter/plan/codegen equivalence.
    """
    return [
        ("java-builtin", JavaSerializer(), JavaSerializer(use_plans=False)),
        (
            "java-codegen",
            JavaSerializer(use_codegen=True),
            JavaSerializer(use_plans=False),
        ),
        (
            "kryo",
            KryoSerializer(registration),
            KryoSerializer(registration, use_plans=False),
        ),
        (
            "kryo-codegen",
            KryoSerializer(registration, use_codegen=True),
            KryoSerializer(registration, use_plans=False),
        ),
        (
            "cereal",
            CerealSerializer(registration),
            CerealSerializer(registration, use_plans=False),
        ),
        (
            "cereal-codegen",
            CerealSerializer(registration, use_codegen=True),
            CerealSerializer(registration, use_plans=False),
        ),
        (
            "cereal-stripped",
            CerealSerializer(registration, strip_mark_word=True),
            CerealSerializer(
                registration, strip_mark_word=True, use_plans=False
            ),
        ),
        (
            "cereal-stripped-codegen",
            CerealSerializer(
                registration, strip_mark_word=True, use_codegen=True
            ),
            CerealSerializer(
                registration, strip_mark_word=True, use_plans=False
            ),
        ),
        (
            "cereal-baseline",
            CerealSerializer(registration, use_packing=False),
            CerealSerializer(registration, use_packing=False, use_plans=False),
        ),
    ]


def _assert_profiles_equal(fast, slow, context: str) -> None:
    for field, expected in vars(slow).items():
        assert getattr(fast, field) == expected, (
            f"{context}: profile.{field} diverged"
        )


def _assert_equivalent(root, registry, registration) -> None:
    for name, fast, slow in _serializer_pairs(registration):
        fast_result = fast.serialize(root)
        slow_result = slow.serialize(root)
        assert fast_result.stream.data == slow_result.stream.data, (
            f"{name}: plan path changed the stream bytes"
        )
        assert fast_result.stream.sections == slow_result.stream.sections
        _assert_profiles_equal(
            fast_result.profile, slow_result.profile, f"{name} serialize"
        )
        fast_de = fast.deserialize(
            fast_result.stream, Heap(registry=registry)
        )
        slow_de = slow.deserialize(
            slow_result.stream, Heap(registry=registry)
        )
        assert first_difference(fast_de.root, slow_de.root) is None, (
            f"{name}: plan decode rebuilt a different graph"
        )
        _assert_profiles_equal(
            fast_de.profile, slow_de.profile, f"{name} deserialize"
        )
        # Stripping rewrites identity hashes, so skip round-trip identity.
        if not name.startswith("cereal-stripped"):
            assert first_difference(root, fast_de.root) is None, (
                f"{name}: plan round trip diverged from the original graph"
            )


# -- byte/profile equivalence over the fuzz corpus ---------------------------------


@pytest.mark.parametrize("seed", _SEEDS)
def test_plans_match_interpreters_on_fuzz_corpus(seed):
    registry = fuzz_registry()
    heap = Heap(registry=registry)
    root = build_fuzz_graph(heap, seed)
    _assert_equivalent(root, registry, _registration(registry))


def test_plans_match_interpreters_on_edge_shapes():
    registry = fuzz_registry()
    heap = Heap(registry=registry)

    leaf = heap.new_instance("FuzzLeaf")
    leaf.set("ident", -5)
    leaf.set("weight", 3.25)

    cycle = heap.new_instance("FuzzNode")
    cycle.set("peer", cycle)
    cycle.set("code", 0xFFFF)
    cycle.set("frac", -1.5)

    chain = None
    for index in range(2500):
        node = heap.new_instance("FuzzNode")
        node.set("num", index)
        node.set("peer", chain)
        chain = node

    wide = heap.new_array(FieldKind.LONG, 4000)
    for index in range(0, 4000, 3):
        wide.set_element(index, index * 0x9E3779B9 - 2**40)

    # All-null shapes: an untouched instance (every reference field null,
    # every primitive zero) and a reference array of nothing but nulls —
    # the codegen null fast paths must fold identically to the oracles.
    all_null = heap.new_instance("FuzzNode")
    null_array = heap.new_array(FieldKind.REFERENCE, 64)

    roots = [
        leaf,
        cycle,
        chain,
        wide,
        all_null,
        null_array,
        heap.new_array(FieldKind.REFERENCE, 0),
        heap.new_array(FieldKind.BYTE, 0),
    ]
    registration = _registration(registry)  # pick up new array klasses
    for root in roots:
        _assert_equivalent(root, registry, registration)


def test_oracle_serializer_factory():
    registration = _registration(fuzz_registry())
    assert oracle_serializer("java-builtin").use_plans is False
    assert (
        oracle_serializer("kryo", registration=registration).use_plans is False
    )
    assert (
        oracle_serializer("cereal", registration=registration).use_plans
        is False
    )
    with pytest.raises(FormatError):
        oracle_serializer("skyway")


# -- traversal order ---------------------------------------------------------------


def _reference_dfs(root):
    """Recursive DFS: object before children, children in slot order."""
    visited = set()
    order = []

    def visit(obj):
        if obj.address in visited:
            return
        visited.add(obj.address)
        order.append(obj.address)
        for child in obj.referenced_objects():
            if child is not None:
                visit(child)

    visit(root)
    return order


def _shared_cyclic_graph():
    """Diamond sharing plus a cycle back to the root."""
    registry = fuzz_registry()
    heap = Heap(registry=registry)
    shared = heap.new_instance("FuzzLeaf")
    left = heap.new_instance("FuzzNode")
    right = heap.new_instance("FuzzNode")
    root = heap.new_instance("FuzzNode")
    left.set("peer", shared)
    right.set("peer", shared)
    right.set("data", root)  # cycle back up
    root.set("label", left)
    root.set("peer", right)
    root.set("data", left)  # duplicate edge to an already-pushed child
    return root


def test_traversal_order_matches_recursive_dfs_on_shared_cyclic_graph():
    root = _shared_cyclic_graph()
    expected = _reference_dfs(root)
    assert [o.address for o in traverse_object_graph(root)] == expected


@pytest.mark.parametrize("seed", _SEEDS[:3])
def test_traversal_order_matches_recursive_dfs_on_fuzz_graphs(seed):
    heap = Heap(registry=fuzz_registry())
    root = build_fuzz_graph(heap, seed)
    assert [o.address for o in traverse_object_graph(root)] == _reference_dfs(
        root
    )


@pytest.mark.parametrize("order", ["dfs", "bfs"])
def test_slot_run_traversal_matches_object_traversal(order):
    heap = Heap(registry=fuzz_registry())
    root = build_fuzz_graph(heap, 3)
    baseline = (
        traverse_object_graph(root)
        if order == "dfs"
        else traverse_object_graph_bfs(root)
    )
    expected = [o.address for o in baseline]
    runs = list(traverse_slot_runs(root, order=order))
    assert [o.address for o, _ in runs] == expected
    for obj, layout in runs:
        assert layout.total_slots * 8 == obj.size_bytes


def test_slot_run_graph_matches_object_graph():
    heap = Heap(registry=fuzz_registry())
    root = build_fuzz_graph(heap, 4)
    slow = ObjectGraph.from_root(root, order="bfs")
    fast = SlotRunGraph.from_root(root, order="bfs")
    assert [o.address for o in fast.objects] == [
        o.address for o in slow.objects
    ]
    assert fast.relative_address == slow.relative_address
    assert fast.total_bytes == slow.total_bytes
    assert fast.object_count == slow.object_count
    with pytest.raises(ValueError):
        SlotRunGraph.from_root(root, order="spiral")


# -- plan cache --------------------------------------------------------------------


def test_plan_cache_warm_hit_rate():
    plans.reset_plan_cache()
    registry = fuzz_registry()
    heap = Heap(registry=registry)
    root = build_fuzz_graph(heap, 2)
    serializer = JavaSerializer()
    serializer.serialize(root)
    cold = plans.plan_cache_stats()
    assert cold["misses"] > 0
    assert cold["entries"] == cold["misses"]
    serializer.serialize(root)
    warm = plans.plan_cache_stats()
    assert warm["misses"] == cold["misses"], "second run recompiled plans"
    assert warm["hits"] > cold["hits"]
    assert warm["hit_rate"] > 0.0
    plans.reset_plan_cache()
    assert plans.plan_cache_stats() == {
        "hits": 0,
        "misses": 0,
        "evictions": 0,
        "entries": 0,
        "hit_rate": 0.0,
    }


def test_plan_cache_shared_across_serializer_instances():
    plans.reset_plan_cache()
    registry = fuzz_registry()
    heap = Heap(registry=registry)
    root = build_fuzz_graph(heap, 5)
    JavaSerializer().serialize(root)
    after_first = plans.plan_cache_stats()["misses"]
    JavaSerializer().serialize(root)  # a *different* instance, same shapes
    assert plans.plan_cache_stats()["misses"] == after_first


def test_bitmap_reference_slots_memoized():
    plans.reset_plan_cache()
    assert plans.bitmap_reference_slots(0b10100, 5) == (0, 2)
    misses = plans.plan_cache_stats()["misses"]
    assert plans.bitmap_reference_slots(0b10100, 5) == (0, 2)
    stats = plans.plan_cache_stats()
    assert stats["misses"] == misses
    assert stats["hits"] >= 1
    assert plans.bitmap_reference_slots(0, 7) == ()


# -- layout cache counters ---------------------------------------------------------


def test_layout_cache_stats_warm_hit_rate():
    layout_cache.clear_layout_cache(reset_stats=True)
    registry = fuzz_registry()
    heap = Heap(registry=registry)
    root = build_fuzz_graph(heap, 6)
    CerealSerializer(_registration(registry)).serialize(root)
    cold = layout_cache.stats()
    assert cold["misses"] == cold["entries"] > 0
    before_hits = cold["hits"]
    CerealSerializer(_registration(registry)).serialize(root)
    warm = layout_cache.stats()
    assert warm["misses"] == cold["misses"]
    assert warm["hits"] > before_hits
    assert warm["hit_rate"] > 0.9, "warm serialize should be nearly all hits"
    layout_cache.clear_layout_cache(reset_stats=True)
    assert layout_cache.stats()["hits"] == 0


# -- buffer pool -------------------------------------------------------------------


def test_buffer_pool_reuses_arenas():
    pool = BufferPool(max_arenas=2)
    first = pool.acquire()
    first += b"x" * 100
    pool.release(first)
    second = pool.acquire()
    assert second is first, "arena should be recycled"
    assert len(second) == 0, "recycled arena must come back empty"
    stats = pool.stats()
    assert stats["acquires"] == 2
    assert stats["reuses"] == 1
    assert stats["high_water_mark_bytes"] == 100
    assert stats["reuse_rate"] == 0.5


def test_buffer_pool_bounds_free_list():
    pool = BufferPool(max_arenas=1)
    a, b = pool.acquire(), pool.acquire()
    pool.release(a)
    pool.release(b)  # over the cap: dropped, not pooled
    assert len(pool) == 1
    assert pool.stats()["pooled_arenas"] == 1


def test_global_pool_helpers():
    reset_pool()
    arena = acquire_buffer()
    arena += b"payload"
    release_buffer(arena)
    stats = pool_stats()
    assert stats["releases"] == 1
    assert stats["high_water_mark_bytes"] == 7
    again = acquire_buffer()
    assert pool_stats()["reuses"] == 1
    release_buffer(again)
    reset_pool()
    assert pool_stats()["acquires"] == 0


# -- service report plumbing -------------------------------------------------------


def test_slo_report_carries_runtime_cache_stats():
    from repro.service import (
        PoissonWorkload,
        SerializationServer,
        ServiceCatalog,
        ServiceConfig,
    )

    catalog = ServiceCatalog()
    workload = PoissonWorkload(qps=50_000.0, num_requests=50, seed=7)
    server = SerializationServer(
        catalog, ServiceConfig(num_shards=1, functional="off")
    )
    report = server.run(workload.generate(catalog))
    caches = report.runtime_caches
    assert caches is not None
    assert set(caches) == {
        "plan_cache",
        "codegen_cache",
        "layout_cache",
        "buffer_pool",
        "secure_decode",
    }
    summary = report.as_dict()
    assert summary["runtime_caches"]["plan_cache"]["hit_rate"] >= 0.0
    assert summary["runtime_caches"]["codegen_cache"]["hit_rate"] >= 0.0
    rendered = report.to_table().render()
    assert "plan hit rate" in rendered
    assert "codegen hit rate" in rendered
