"""Tests for the configuration dataclasses (Table I parameters)."""

import pytest

from repro.common.config import (
    CacheLevelConfig,
    CerealConfig,
    DRAMConfig,
    HostCPUConfig,
    SystemConfig,
)
from repro.common.errors import ConfigError
from repro.common.units import GB, KIB


class TestCacheLevelConfig:
    def test_sets_computed(self):
        level = CacheLevelConfig("L1", 32 * KIB, line_bytes=64, associativity=8)
        assert level.num_sets == 64

    def test_size_must_divide(self):
        with pytest.raises(ConfigError):
            CacheLevelConfig("bad", 100, line_bytes=64)

    def test_positive_size(self):
        with pytest.raises(ConfigError):
            CacheLevelConfig("bad", 0)


class TestHostCPUConfig:
    def test_table_i_defaults(self):
        host = HostCPUConfig()
        assert host.cores == 8
        assert host.clock_ghz == 3.6
        assert host.l1.size_bytes == 32 * KIB
        assert host.l3.size_bytes == 11 * 1024 * KIB

    def test_scaled_caches_shrinks(self):
        host = HostCPUConfig().scaled_caches(100)
        assert host.l3.size_bytes < HostCPUConfig().l3.size_bytes
        assert host.l3.size_bytes >= host.l3.line_bytes * host.l3.associativity

    def test_scaled_caches_keeps_geometry_valid(self):
        for factor in (2, 64, 1024, 10**6):
            host = HostCPUConfig().scaled_caches(factor)
            # Construction revalidates: sets divide evenly.
            assert host.l1.num_sets >= 1
            assert host.l2.num_sets >= 1

    def test_scaled_caches_bad_factor(self):
        with pytest.raises(ConfigError):
            HostCPUConfig().scaled_caches(0)

    def test_invalid_cores(self):
        with pytest.raises(ConfigError):
            HostCPUConfig(cores=0)


class TestDRAMConfig:
    def test_table_i_peak_bandwidth(self):
        assert DRAMConfig().peak_bandwidth_bytes_per_sec == 76.8 * GB

    def test_invalid_channels(self):
        with pytest.raises(ConfigError):
            DRAMConfig(channels=0)

    def test_negative_latency(self):
        with pytest.raises(ConfigError):
            DRAMConfig(zero_load_latency_ns=-1)


class TestCerealConfig:
    def test_table_i_defaults(self):
        config = CerealConfig()
        assert config.num_serializer_units == 8
        assert config.num_deserializer_units == 8
        assert config.block_reconstructors_per_du == 4
        assert config.max_class_types == 4096

    def test_vanilla_removes_fine_grained_parallelism(self):
        vanilla = CerealConfig().vanilla()
        assert vanilla.pipelined is False
        assert vanilla.block_reconstructors_per_du == 1
        assert vanilla.du_prefetch_depth == 1
        # Operation-level parallelism (unit counts) is retained.
        assert vanilla.num_serializer_units == 8

    def test_vanilla_preserves_coherence_setting(self):
        vanilla = CerealConfig(coherence_extra_read_ns=25.0).vanilla()
        assert vanilla.coherence_extra_read_ns == 25.0

    def test_invalid_unit_counts(self):
        with pytest.raises(ConfigError):
            CerealConfig(num_serializer_units=0)

    def test_block_bytes_alignment(self):
        with pytest.raises(ConfigError):
            CerealConfig(block_bytes=60)

    def test_frozen(self):
        config = CerealConfig()
        with pytest.raises(Exception):
            config.num_serializer_units = 4  # type: ignore[misc]


class TestSystemConfig:
    def test_composes_defaults(self):
        system = SystemConfig()
        assert system.host.name.startswith("Intel")
        assert system.cereal.num_serializer_units == 8
