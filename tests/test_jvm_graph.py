"""Tests for object graph traversal, GC utilities, and reflection shims."""

import pytest

from repro.jvm import (
    FieldDescriptor,
    FieldKind,
    Heap,
    InstanceKlass,
    ObjectGraph,
    clear_serialization_metadata,
    object_graph_stats,
    traverse_object_graph,
)
from repro.jvm.gc import max_serialization_counter
from repro.jvm.reflection import JavaReflection, ReflectAsmAccess


def make_heap_with_node():
    heap = Heap()
    node = InstanceKlass(
        "Node",
        [
            FieldDescriptor("value", FieldKind.LONG),
            FieldDescriptor("left", FieldKind.REFERENCE),
            FieldDescriptor("right", FieldKind.REFERENCE),
        ],
    )
    heap.registry.register(node)
    return heap, node


def build_small_tree(heap, klass):
    """root -> (a, b); a -> (c, None)."""
    root = heap.allocate(klass)
    a = heap.allocate(klass)
    b = heap.allocate(klass)
    c = heap.allocate(klass)
    root.set("left", a)
    root.set("right", b)
    a.set("left", c)
    return root, a, b, c


class TestTraversal:
    def test_dfs_order(self):
        heap, klass = make_heap_with_node()
        root, a, b, c = build_small_tree(heap, klass)
        order = list(traverse_object_graph(root))
        assert order == [root, a, c, b]

    def test_shared_object_visited_once(self):
        heap, klass = make_heap_with_node()
        root = heap.allocate(klass)
        shared = heap.allocate(klass)
        root.set("left", shared)
        root.set("right", shared)
        assert list(traverse_object_graph(root)) == [root, shared]

    def test_cycle_terminates(self):
        heap, klass = make_heap_with_node()
        a = heap.allocate(klass)
        b = heap.allocate(klass)
        a.set("left", b)
        b.set("left", a)
        assert list(traverse_object_graph(a)) == [a, b]

    def test_deep_list_no_recursion_error(self):
        heap, klass = make_heap_with_node()
        head = heap.allocate(klass)
        current = head
        for _ in range(5000):
            nxt = heap.allocate(klass)
            current.set("left", nxt)
            current = nxt
        assert sum(1 for _ in traverse_object_graph(head)) == 5001


class TestObjectGraph:
    def test_relative_addresses_are_cumulative_sizes(self):
        heap, klass = make_heap_with_node()
        root, a, b, c = build_small_tree(heap, klass)
        graph = ObjectGraph.from_root(root)
        size = root.size_bytes
        assert graph.relative_address[root.address] == 0
        assert graph.relative_address[a.address] == size
        assert graph.relative_address[c.address] == 2 * size
        assert graph.relative_address[b.address] == 3 * size

    def test_total_bytes(self):
        heap, klass = make_heap_with_node()
        root, *_ = build_small_tree(heap, klass)
        graph = ObjectGraph.from_root(root)
        assert graph.total_bytes == 4 * root.size_bytes

    def test_reference_count_counts_duplicates(self):
        heap, klass = make_heap_with_node()
        root = heap.allocate(klass)
        shared = heap.allocate(klass)
        root.set("left", shared)
        root.set("right", shared)
        graph = ObjectGraph.from_root(root)
        assert graph.object_count == 2
        assert graph.reference_count == 2


class TestGraphStats:
    def test_stats_for_tree(self):
        heap, klass = make_heap_with_node()
        root, *_ = build_small_tree(heap, klass)
        stats = object_graph_stats(root)
        assert stats.object_count == 4
        assert stats.reference_count == 3
        assert stats.null_reference_count == 5
        assert stats.max_out_degree == 2
        assert stats.references_per_object == pytest.approx(0.75)

    def test_slot_partition(self):
        heap, klass = make_heap_with_node()
        root, *_ = build_small_tree(heap, klass)
        stats = object_graph_stats(root)
        # Per object: 6 slots total, 2 reference slots, 4 value slots.
        assert stats.reference_slots == 8
        assert stats.value_slots == 16


class TestGC:
    def test_clear_serialization_metadata(self):
        heap, klass = make_heap_with_node()
        a = heap.allocate(klass)
        b = heap.allocate(klass)
        a.serialization_counter = 5
        b.serialization_counter = 6
        cleared = clear_serialization_metadata(heap)
        assert cleared == 2
        assert a.serialization_counter == 0
        assert max_serialization_counter(heap) == 0


class TestReflectionShims:
    def test_java_reflection_reads_values(self):
        heap, klass = make_heap_with_node()
        obj = heap.allocate(klass)
        obj.set("value", 99)
        reflect = JavaReflection()
        assert reflect.get_field(obj, "value") == 99

    def test_java_reflection_accounts_string_work(self):
        heap, klass = make_heap_with_node()
        obj = heap.allocate(klass)
        reflect = JavaReflection()
        reflect.get_field(obj, "right")  # scans value, left, right
        assert reflect.cost.method_invocations == 1
        assert reflect.cost.string_comparisons == 3
        assert reflect.cost.characters_compared > 0

    def test_reflectasm_is_cheaper(self):
        heap, klass = make_heap_with_node()
        obj = heap.allocate(klass)
        obj.set("value", 7)
        java = JavaReflection()
        asm = ReflectAsmAccess()
        java.get_field(obj, "value")
        assert asm.get_field_by_index(obj, 0) == 7
        assert (
            asm.cost.estimated_instructions() < java.cost.estimated_instructions()
        )

    def test_reflection_set_field(self):
        heap, klass = make_heap_with_node()
        obj = heap.allocate(klass)
        reflect = JavaReflection()
        reflect.set_field(obj, "value", 123)
        assert obj.get("value") == 123
        assert reflect.cost.field_writes == 1

    def test_reflectasm_set_by_index(self):
        heap, klass = make_heap_with_node()
        obj = heap.allocate(klass)
        asm = ReflectAsmAccess()
        asm.set_field_by_index(obj, 0, 55)
        assert obj.get("value") == 55
