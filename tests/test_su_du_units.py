"""Direct unit tests for the SU and DU timing models (below the façade)."""

import pytest

from repro.cereal.du import (
    BlockDescriptor,
    DeserializationUnit,
    DUWorkload,
    _StreamPrefetcher,
)
from repro.cereal.mai import MemoryAccessInterface
from repro.cereal.su import SerializationUnit, _BufferedStore
from repro.cereal.tables import ClassIDTable, KlassPointerTable
from repro.common.config import CerealConfig
from repro.common.errors import SimulationError
from repro.formats import ClassRegistration
from repro.jvm import Heap
from repro.memory.dram import DRAMModel
from tests.test_serializers import build_shared, build_tree, make_registry


def make_su(config=None, unit_id=0):
    registry = make_registry()
    registration = ClassRegistration()
    for klass in registry:
        registration.register(klass)
    mai = MemoryAccessInterface(DRAMModel(), config or CerealConfig())
    table = KlassPointerTable()
    for class_id, klass in enumerate(registration):
        table.install(klass.metaspace_address, class_id)
    unit = SerializationUnit(mai, table, config or CerealConfig(), unit_id=unit_id)
    heap = Heap(registry=registry)
    return unit, heap, registration, mai


class TestBufferedStore:
    def test_writes_in_64b_chunks(self):
        mai = MemoryAccessInterface(DRAMModel(), CerealConfig())
        store = _BufferedStore(mai, 0x1000)
        store.push(0.0, 40)
        assert mai.stats.write_requests == 0  # below the 64 B threshold
        store.push(0.0, 40)
        assert mai.stats.write_requests == 1  # crossed: one chunk flushed
        assert store.pending == 16

    def test_flush_drains_partial(self):
        mai = MemoryAccessInterface(DRAMModel(), CerealConfig())
        store = _BufferedStore(mai, 0x1000)
        store.push(0.0, 10)
        store.flush(0.0)
        assert store.pending == 0
        assert mai.stats.write_requests == 1

    def test_total_accumulates(self):
        mai = MemoryAccessInterface(DRAMModel(), CerealConfig())
        store = _BufferedStore(mai, 0x1000)
        store.push(0.0, 100)
        store.push(0.0, 100)
        assert store.total == 200


class TestSerializationUnit:
    def test_start_time_offsets_result(self):
        unit, heap, registration, _ = make_su()
        root = build_tree(heap, depth=3)
        late = unit.run(root, registration, start_ns=1000.0,
                        serialization_counter=1)
        assert late.start_ns == 1000.0
        assert late.finish_ns > 1000.0

    def test_output_traffic_matches_stream_structure(self):
        unit, heap, registration, _ = make_su()
        root = build_tree(heap, depth=4)
        result = unit.run(root, registration, serialization_counter=1)
        # Full binary tree of depth 4 -> 31 Node objects, each 6 slots
        # (3 header + 1 value + 2 references).
        assert result.objects == 31
        assert result.value_bytes_written == 31 * (6 - 2) * 8
        assert result.bitmap_bytes_written == 31  # ceil((6+1)/8) per object

    def test_unit_ids_recorded_in_headers(self):
        unit, heap, registration, _ = make_su(unit_id=3)
        root = build_tree(heap, depth=2)
        unit.run(root, registration, serialization_counter=7)
        assert root.serialization_unit_id == 4  # unit_id + 1
        assert root.serialization_counter == 7

    def test_without_extension_uses_internal_tracking(self):
        registry = make_registry()
        registration = ClassRegistration()
        for klass in registry:
            registration.register(klass)
        mai = MemoryAccessInterface(DRAMModel(), CerealConfig())
        table = KlassPointerTable()
        for class_id, klass in enumerate(registration):
            table.install(klass.metaspace_address, class_id)
        unit = SerializationUnit(mai, table, CerealConfig())
        heap = Heap(registry=registry, cereal_extension=False)
        root = build_shared(heap)
        result = unit.run(root, registration, serialization_counter=1)
        assert result.objects == 2
        assert result.encounters == 3

    def test_mai_sees_header_rmws(self):
        unit, heap, registration, mai = make_su()
        root = build_tree(heap, depth=3)
        unit.run(root, registration, serialization_counter=1)
        assert mai.stats.atomic_rmws == 15  # one per new object (depth-3 tree)


class TestStreamPrefetcher:
    def make(self, length, depth=8, start=0.0):
        mai = MemoryAccessInterface(DRAMModel(), CerealConfig())
        return _StreamPrefetcher(mai, 0x1000_0000, length, start, depth)

    def test_zero_position_is_free(self):
        prefetcher = self.make(1024)
        assert prefetcher.available_at(0) == 0.0

    def test_first_byte_pays_latency(self):
        prefetcher = self.make(1024)
        assert prefetcher.available_at(1) >= 40.0

    def test_positions_monotone_per_channel(self):
        prefetcher = self.make(64 * 64)
        times = [prefetcher.available_at(p) for p in range(64, 64 * 64, 64)]
        # Lines interleave over 4 DRAM channels; each channel delivers its
        # lines in order (the first line additionally carries the
        # compulsory TLB walk, delaying channel 0's whole stream).
        for channel in range(4):
            lane = times[channel::4]
            assert lane == sorted(lane)

    def test_position_clamped_to_length(self):
        prefetcher = self.make(100)
        assert prefetcher.available_at(10_000) == prefetcher.available_at(100)

    def test_deeper_window_is_faster(self):
        shallow = self.make(64 * 256, depth=1)
        deep = self.make(64 * 256, depth=16)
        assert deep.available_at(64 * 256) < shallow.available_at(64 * 256)

    def test_overrun_rejected(self):
        prefetcher = self.make(0)
        assert prefetcher.available_at(0) == 0.0
        with pytest.raises(SimulationError):
            prefetcher._issue_next()


class TestDeserializationUnitDirect:
    def make_workload(self, blocks=16, values=6, refs=2):
        return DUWorkload(
            image_bytes=blocks * 64,
            blocks=[
                BlockDescriptor(
                    value_slots=values,
                    reference_slots=refs,
                    has_header=(index % 2 == 0),
                    reference_bytes=refs * 2,
                )
                for index in range(blocks)
            ],
            value_array_bytes=blocks * values * 8,
            reference_array_bytes=blocks * refs * 2,
            bitmap_bytes=blocks * 2,
        )

    def make_du(self, config=None):
        mai = MemoryAccessInterface(DRAMModel(), config or CerealConfig())
        table = ClassIDTable()
        table.install(0, 0x7F00_0000_0000)
        return DeserializationUnit(mai, table, config or CerealConfig()), mai

    def test_blocks_and_bytes_accounted(self):
        du, _ = self.make_du()
        workload = self.make_workload(blocks=16)
        result = du.run(workload, destination_base=0x2000_0000)
        assert result.blocks == 16
        assert result.image_bytes_written == 16 * 64
        assert result.stream_bytes_read == (
            workload.value_array_bytes
            + workload.reference_array_bytes
            + workload.bitmap_bytes
        )

    def test_header_blocks_hit_class_id_table(self):
        du, _ = self.make_du()
        workload = self.make_workload(blocks=16)
        du.run(workload, destination_base=0x2000_0000)
        assert du.class_id_table.lookups == 8  # every even block

    def test_output_writes_reach_dram(self):
        du, mai = self.make_du()
        workload = self.make_workload(blocks=4)
        du.run(workload, destination_base=0x2000_0000)
        # 4 output blocks x 64 B, each split into two 32 B MAI blocks.
        assert mai.stats.blocks_written == 8

    def test_vanilla_serializes_chain(self):
        pipelined, _ = self.make_du()
        vanilla, _ = self.make_du(CerealConfig().vanilla())
        workload = self.make_workload(blocks=64)
        fast = pipelined.run(workload, destination_base=0x2000_0000)
        slow = vanilla.run(workload, destination_base=0x2000_0000)
        assert slow.elapsed_ns > fast.elapsed_ns
