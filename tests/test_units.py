"""Tests for repro.common.units."""

import pytest

from repro.common.units import (
    GB,
    KIB,
    MB,
    bytes_human,
    cycles_to_seconds,
    seconds_to_cycles,
)


class TestConversions:
    def test_cycles_to_seconds_at_1ghz(self):
        assert cycles_to_seconds(1_000_000_000, clock_ghz=1.0) == pytest.approx(1.0)

    def test_cycles_to_seconds_at_3_6ghz(self):
        assert cycles_to_seconds(3_600_000_000, clock_ghz=3.6) == pytest.approx(1.0)

    def test_seconds_to_cycles_rounds_up(self):
        assert seconds_to_cycles(1.5e-9, clock_ghz=1.0) == 2

    def test_seconds_to_cycles_exact(self):
        assert seconds_to_cycles(5e-9, clock_ghz=1.0) == 5

    def test_round_trip(self):
        cycles = 123_456
        seconds = cycles_to_seconds(cycles, clock_ghz=2.0)
        assert seconds_to_cycles(seconds, clock_ghz=2.0) == cycles

    def test_invalid_clock_rejected(self):
        with pytest.raises(ValueError):
            cycles_to_seconds(1, clock_ghz=0)
        with pytest.raises(ValueError):
            seconds_to_cycles(1.0, clock_ghz=-1)

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError):
            seconds_to_cycles(-1.0)


class TestUnitsConstants:
    def test_decimal_units(self):
        assert MB == 1000 * 1000
        assert GB == 1000 * MB

    def test_binary_units(self):
        assert KIB == 1024


class TestBytesHuman:
    def test_bytes(self):
        assert bytes_human(512) == "512 B"

    def test_kib(self):
        assert bytes_human(2048) == "2.00 KiB"

    def test_mib(self):
        assert bytes_human(3 * 1024 * 1024) == "3.00 MiB"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bytes_human(-1)
