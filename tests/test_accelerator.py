"""Tests for the Cereal accelerator: SU/DU timing and the device façade."""

import pytest

from repro.common.config import CerealConfig
from repro.common.errors import RegistrationError, SimulationError
from repro.cereal import CerealAccelerator
from repro.cereal.du import DUWorkload
from repro.cereal.power import (
    area_power_table,
    cereal_area_mm2,
    cereal_average_power_watts,
    cereal_energy_joules,
    cpu_energy_joules,
    deserializer_power_watts,
    serializer_power_watts,
)
from repro.formats import graphs_equivalent
from repro.formats.cereal_format import CerealSerializer
from repro.jvm import Heap
from tests.test_serializers import build_shared, build_tree, make_registry


@pytest.fixture
def setup():
    registry = make_registry()
    accelerator = CerealAccelerator()
    for klass in registry:
        accelerator.register_class(klass)
    sender = Heap(registry=registry)
    receiver = Heap(registry=registry)
    return registry, accelerator, sender, receiver


class TestAcceleratorFunctional:
    def test_round_trip_equivalence(self, setup):
        _, accelerator, sender, receiver = setup
        root = build_tree(sender, depth=6)
        result, _, _ = accelerator.serialize(root)
        rebuilt, _, _ = accelerator.deserialize(result.stream, receiver)
        assert graphs_equivalent(root, rebuilt)

    def test_shared_objects_preserved(self, setup):
        _, accelerator, sender, receiver = setup
        root = build_shared(sender)
        result, _, _ = accelerator.serialize(root)
        rebuilt, _, _ = accelerator.deserialize(result.stream, receiver)
        assert rebuilt.get("left") == rebuilt.get("right")

    def test_unregistered_class_rejected(self):
        registry = make_registry()
        accelerator = CerealAccelerator()  # nothing registered
        heap = Heap(registry=registry)
        root = build_tree(heap, depth=2)
        with pytest.raises(RegistrationError):
            accelerator.serialize(root)

    def test_register_class_requires_metaspace_address(self):
        from repro.jvm import InstanceKlass

        accelerator = CerealAccelerator()
        with pytest.raises(SimulationError):
            accelerator.register_class(InstanceKlass("Unattached", []))


class TestSerializationUnitTiming:
    def test_elapsed_scales_with_objects(self, setup):
        _, accelerator, sender, _ = setup
        small = build_tree(sender, depth=4)  # 31 objects
        large = build_tree(sender, depth=8)  # 511 objects
        _, t_small, _ = accelerator.serialize(small)
        _, t_large, _ = accelerator.serialize(large)
        assert t_large.elapsed_ns > 8 * t_small.elapsed_ns

    def test_su_result_accounting(self, setup):
        _, accelerator, sender, _ = setup
        root = build_tree(sender, depth=5)
        _, timing, su = accelerator.serialize(root)
        assert su.objects == 63
        assert su.encounters == 63  # tree: no shared references
        assert su.heap_bytes_read == 63 * root.size_bytes
        assert timing.objects == 63

    def test_shared_reference_extra_encounters(self, setup):
        _, accelerator, sender, _ = setup
        root = build_shared(sender)
        _, _, su = accelerator.serialize(root)
        assert su.objects == 2
        assert su.encounters == 3  # shared child visited twice

    def test_counter_dependency_costs_time(self, setup):
        """The HM->OMM size-counter dependency must appear as stall time."""
        _, accelerator, sender, _ = setup
        root = build_tree(sender, depth=8)
        _, _, su = accelerator.serialize(root)
        assert su.stalls_on_counter_ns >= 0.0
        # Per-object rate should sit near the header+metadata critical path.
        per_object = (su.finish_ns - su.start_ns) / su.objects
        assert 20.0 < per_object < 400.0

    def test_vanilla_slower_than_pipelined(self, setup):
        registry, accelerator, sender, _ = setup
        root = build_tree(sender, depth=8)
        _, pipelined, _ = accelerator.serialize(root)
        vanilla_acc = CerealAccelerator(
            CerealConfig().vanilla(), registration=accelerator.registration
        )
        _, vanilla, _ = vanilla_acc.serialize(root)
        assert vanilla.elapsed_ns > pipelined.elapsed_ns


class TestDeserializationUnitTiming:
    def test_deserialize_faster_than_serialize(self, setup):
        """Figure 10: the DU's sequential block pipeline beats the SU."""
        _, accelerator, sender, receiver = setup
        root = build_tree(sender, depth=8)
        result, t_ser, _ = accelerator.serialize(root)
        _, t_deser, _ = accelerator.deserialize(result.stream, receiver)
        assert t_deser.elapsed_ns < t_ser.elapsed_ns

    def test_deser_bandwidth_exceeds_ser(self, setup):
        _, accelerator, sender, receiver = setup
        root = build_tree(sender, depth=9)
        result, t_ser, _ = accelerator.serialize(root)
        _, t_deser, _ = accelerator.deserialize(result.stream, receiver)
        assert t_deser.bandwidth_utilization > t_ser.bandwidth_utilization

    def test_more_reconstructors_help(self, setup):
        registry, accelerator, sender, _ = setup
        root = build_tree(sender, depth=9)
        result, _, _ = accelerator.serialize(root)
        one = CerealAccelerator(
            CerealConfig(block_reconstructors_per_du=1),
            registration=accelerator.registration,
        )
        four = CerealAccelerator(
            CerealConfig(block_reconstructors_per_du=4),
            registration=accelerator.registration,
        )
        _, t_one, _ = one.deserialize(result.stream, Heap(registry=registry))
        _, t_four, _ = four.deserialize(result.stream, Heap(registry=registry))
        assert t_four.elapsed_ns <= t_one.elapsed_ns

    def test_du_workload_block_decomposition(self, setup):
        _, accelerator, sender, _ = setup
        root = build_tree(sender, depth=4)
        result, _, _ = accelerator.serialize(root)
        sections = CerealSerializer.decode_sections(result.stream)
        workload = DUWorkload.from_stream_sections(sections)
        assert workload.image_bytes == sections.graph_total_bytes
        slot_total = sum(b.value_slots + b.reference_slots for b in workload.blocks)
        assert slot_total * 8 == workload.image_bytes
        ref_total = sum(b.reference_slots for b in workload.blocks)
        assert ref_total == sections.references.item_count


class TestBatchScheduling:
    def test_batch_uses_unit_pool(self, setup):
        _, accelerator, sender, _ = setup
        root = build_tree(sender, depth=6)
        _, timing, _ = accelerator.serialize(root)
        # 8 identical ops across 8 SUs should take about one op's time.
        batch = accelerator.run_batch([timing] * 8)
        assert batch < timing.elapsed_ns * 2.5

    def test_batch_beyond_pool_queues(self, setup):
        _, accelerator, sender, _ = setup
        root = build_tree(sender, depth=6)
        _, timing, _ = accelerator.serialize(root)
        batch = accelerator.run_batch([timing] * 17)  # > 2 rounds of 8
        assert batch >= timing.elapsed_ns * 3

    def test_bandwidth_floor_applies(self, setup):
        _, accelerator, sender, _ = setup
        root = build_tree(sender, depth=6)
        _, timing, _ = accelerator.serialize(root)
        many = accelerator.run_batch([timing] * 64)
        floor = (
            64
            * timing.dram_bytes
            / accelerator.dram_config.peak_bandwidth_bytes_per_sec
            * 1e9
        )
        assert many >= floor

    def test_empty_batch(self, setup):
        _, accelerator, _, _ = setup
        assert accelerator.run_batch([]) == 0.0


class TestPowerModel:
    def test_table_v_total_area(self):
        assert cereal_area_mm2() == pytest.approx(3.857, abs=0.01)

    def test_table_v_total_power(self):
        assert cereal_average_power_watts() * 1000 == pytest.approx(1231.6, abs=1.0)

    def test_serializer_pool_breakdown(self):
        # Table V: serializer pool average power is 264.8 mW (plus shared).
        shared_mw = 2.7 + 0.8 + 1.2 + 5.3
        assert serializer_power_watts() * 1000 == pytest.approx(
            264.8 + shared_mw, abs=0.5
        )

    def test_deserializer_pool_breakdown(self):
        shared_mw = 2.7 + 0.8 + 1.2 + 5.3
        assert deserializer_power_watts() * 1000 == pytest.approx(
            956.8 + shared_mw, abs=0.5
        )

    def test_energy_scales_with_time(self):
        one = cereal_energy_joules(1.0, "serialize")
        two = cereal_energy_joules(2.0, "serialize")
        assert two == pytest.approx(2 * one)

    def test_cpu_energy_far_exceeds_cereal(self):
        cpu = cpu_energy_joules(1.0)
        cereal = cereal_energy_joules(1.0, "deserialize")
        assert cpu / cereal > 100  # the paper's orders-of-magnitude gap

    def test_area_power_table_consistency(self):
        rows, total_area, total_power_mw = area_power_table()
        assert sum(row[4] for row in rows) == pytest.approx(total_area)
        assert sum(row[5] for row in rows) == pytest.approx(total_power_mw)

    def test_scaled_configuration(self):
        small = CerealConfig(
            num_serializer_units=1,
            num_deserializer_units=1,
            block_reconstructors_per_du=1,
        )
        assert cereal_area_mm2(small) < cereal_area_mm2()

    def test_bad_operation_rejected(self):
        with pytest.raises(ValueError):
            cereal_energy_joules(1.0, "compress")
        with pytest.raises(ValueError):
            cereal_energy_joules(-1.0)
