"""Unit tests for the repro.obs metrics/tracing/export subsystem."""

import json
import math

import pytest

from repro.obs import (
    Counter,
    Histogram,
    MetricsRegistry,
    Tracer,
    exact_quantile,
    to_chrome_trace,
    validate_chrome_trace,
)


# -- exact_quantile -----------------------------------------------------------------


class TestExactQuantile:
    def test_empty_series_raises(self):
        with pytest.raises(ValueError, match="no samples"):
            exact_quantile([], 50.0)

    def test_out_of_range_q_raises(self):
        for q in (-0.1, 100.1, 1000.0):
            with pytest.raises(ValueError, match="must be in \\[0, 100\\]"):
                exact_quantile([1.0], q)

    def test_single_sample_is_every_quantile(self):
        for q in (0.0, 37.5, 50.0, 99.9, 100.0):
            assert exact_quantile([42.0], q) == 42.0

    def test_p0_and_p100_are_min_and_max(self):
        series = [1.0, 5.0, 9.0, 200.0]
        assert exact_quantile(series, 0.0) == 1.0
        assert exact_quantile(series, 100.0) == 200.0

    def test_linear_interpolation(self):
        # rank = (4 - 1) * 0.5 = 1.5 -> halfway between 2nd and 3rd sample
        assert exact_quantile([10.0, 20.0, 30.0, 40.0], 50.0) == 25.0
        assert exact_quantile([0.0, 100.0], 25.0) == 25.0


# -- registry + metric types --------------------------------------------------------


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("hits", layer="transfer")
        second = registry.counter("hits", layer="transfer")
        assert first is second
        # Label order must not matter.
        a = registry.gauge("depth", shard="0", kind="q")
        b = registry.gauge("depth", kind="q", shard="0")
        assert a is b

    def test_distinct_labels_distinct_metrics(self):
        registry = MetricsRegistry()
        assert registry.counter("hits", a="1") is not registry.counter(
            "hits", a="2"
        )
        assert len(registry) == 2

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")

    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        gauge = registry.gauge("level")
        gauge.set(3.0)
        gauge.set_max(2.0)  # lower: ignored
        assert gauge.value == 3.0
        gauge.set_max(7.0)
        assert gauge.value == 7.0

    def test_snapshot_flat_sorted_and_labeled(self):
        registry = MetricsRegistry()
        registry.counter("b.count").inc(2)
        registry.counter("a.count", site="s1").inc()
        snap = registry.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["a.count{site=s1}"] == 1
        assert snap["b.count"] == 2

    def test_delta_subtracts_scalars(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")
        counter.inc(10)
        before = registry.snapshot()
        counter.inc(7)
        assert registry.delta(before)["n"] == 7

    def test_reset_zeroes_but_preserves_handles(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")
        counter.inc(3)
        registry.reset()
        assert counter.value == 0
        assert registry.counter("n") is counter

    def test_disable_gates_histograms_not_counters(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")
        hist = registry.histogram("lat")
        registry.disable()
        counter.inc()
        hist.observe(5.0)
        assert counter.value == 1  # counters stay live (CI gates read them)
        assert hist.count == 0  # histogram observation is the no-op path
        registry.enable()
        hist.observe(5.0)
        assert hist.count == 1

    def test_direct_value_bump_matches_inc(self):
        # Hot paths (plan/layout cache probes) bump Counter.value directly
        # to skip the method call; both routes must read back identically.
        a, b = Counter("a"), Counter("b")
        a.inc(3)
        b.value += 3
        assert a.value == b.value == 3


class TestHistogram:
    def test_exact_quantiles_inside_reservoir(self):
        hist = Histogram("lat", exact_limit=100)
        values = [float(v) for v in (9, 1, 5, 3, 7)]
        for value in values:
            hist.observe(value)
        assert hist.exact
        for q in (0.0, 25.0, 50.0, 90.0, 100.0):
            assert hist.quantile(q) == exact_quantile(sorted(values), q)

    def test_bucket_path_brackets_truth(self):
        hist = Histogram("lat", exact_limit=4)
        values = [float(2**k) for k in range(10)]
        for value in values:
            hist.observe(value)
        assert not hist.exact
        assert hist.quantile(0.0) == min(values)
        assert hist.quantile(100.0) == max(values)
        p50 = hist.quantile(50.0)
        assert min(values) <= p50 <= max(values)
        # log2 interpolation error is bounded by the covering bucket width.
        truth = exact_quantile(sorted(values), 50.0)
        assert p50 <= truth * 2 and truth <= max(p50 * 2, 1.0)

    def test_empty_quantile_raises(self):
        with pytest.raises(ValueError, match="no samples"):
            Histogram("lat").quantile(50.0)

    def test_summary_shape(self):
        hist = Histogram("lat")
        assert hist.summary() == {"count": 0}
        hist.observe(10.0)
        summary = hist.summary()
        assert summary["count"] == 1
        assert summary["p50"] == summary["p99"] == 10.0
        assert summary["exact"] is True

    def test_reset(self):
        hist = Histogram("lat")
        hist.observe(1.0)
        hist.reset()
        assert hist.count == 0
        assert hist.min == math.inf


class TestHistogramMerge:
    def test_merge_preserves_exact_quantiles(self):
        """Two small histograms merge into the exact union distribution."""
        a = Histogram("lat", exact_limit=100)
        b = Histogram("lat", exact_limit=100)
        left = [1.0, 9.0, 5.0]
        right = [2.0, 8.0]
        for value in left:
            a.observe(value)
        for value in right:
            b.observe(value)
        merged = a.merge(b)
        assert merged is a
        union = sorted(left + right)
        assert a.exact
        assert a.count == 5
        assert a.min == 1.0 and a.max == 9.0
        for q in (0.0, 25.0, 50.0, 75.0, 100.0):
            assert a.quantile(q) == exact_quantile(union, q)

    def test_merge_matches_single_histogram(self):
        """merge(split streams) == observe(everything in one histogram)."""
        whole = Histogram("lat", exact_limit=64)
        parts = [Histogram("lat", exact_limit=64) for _ in range(3)]
        values = [float((7 * k) % 23 + 1) for k in range(30)]
        for index, value in enumerate(values):
            whole.observe(value)
            parts[index % 3].observe(value)
        target = parts[0]
        target.merge(parts[1]).merge(parts[2])
        assert target.count == whole.count
        assert target.total == whole.total
        for q in (0.0, 50.0, 99.0, 100.0):
            assert target.quantile(q) == whole.quantile(q)

    def test_merge_beyond_reservoir_degrades_to_buckets(self):
        a = Histogram("lat", exact_limit=4)
        b = Histogram("lat", exact_limit=4)
        for value in (1.0, 2.0, 4.0):
            a.observe(value)
        for value in (8.0, 16.0, 32.0):
            b.observe(value)
        a.merge(b)
        assert not a.exact  # 6 samples > exact_limit=4
        assert a.count == 6
        assert a.quantile(0.0) == 1.0
        assert a.quantile(100.0) == 32.0

    def test_merge_empty_is_noop(self):
        a = Histogram("lat")
        a.observe(3.0)
        before = a.summary()
        a.merge(Histogram("lat"))
        assert a.summary() == before

    def test_merge_into_empty_adopts_bounds(self):
        a = Histogram("lat")
        b = Histogram("lat")
        b.observe(7.0)
        a.merge(b)
        assert a.count == 1
        assert a.min == a.max == 7.0
        assert a.quantile(50.0) == 7.0


class TestRegistryMerge:
    def test_merge_snapshot_combines_all_metric_kinds(self):
        main = MetricsRegistry(enabled=True)
        node = MetricsRegistry(enabled=True)
        main.counter("reqs", node="n0").inc(2)
        node.counter("reqs", node="n0").inc(3)
        node.counter("reqs", node="n1").inc(5)
        main.gauge("queue").set(4.0)
        node.gauge("queue").set(9.0)
        node.histogram("lat", node="n1").observe(10.0)
        main.merge_snapshot(node)
        assert main.counter("reqs", node="n0").value == 5
        assert main.counter("reqs", node="n1").value == 5
        assert main.gauge("queue").value == 9.0
        assert main.histogram("lat", node="n1").count == 1

    def test_merge_snapshot_gauge_keeps_high_water(self):
        main = MetricsRegistry(enabled=True)
        other = MetricsRegistry(enabled=True)
        main.gauge("depth").set(12.0)
        other.gauge("depth").set(3.0)
        main.merge_snapshot(other)
        assert main.gauge("depth").value == 12.0

    def test_merge_snapshot_leaves_source_untouched(self):
        main = MetricsRegistry(enabled=True)
        other = MetricsRegistry(enabled=True)
        other.counter("c").inc(4)
        other.histogram("h").observe(1.0)
        snapshot_before = other.snapshot()
        main.merge_snapshot(other)
        assert other.snapshot() == snapshot_before


# -- tracer -------------------------------------------------------------------------


class TestTracer:
    def test_disabled_is_inert(self):
        tracer = Tracer(enabled=False)
        with tracer.span("outer") as span:
            assert span is None
        tracer.instant("marker")
        tracer.advance(100.0)
        assert tracer.record_span("r", 0.0, 5.0) is None
        assert tracer.spans() == []
        assert tracer.events() == []
        assert tracer.sim_now_ns == 0.0

    def test_nesting_parents_and_bounds(self):
        tracer = Tracer(enabled=True)
        tracer.advance(100.0)
        with tracer.span("outer") as outer:
            tracer.advance(150.0)
            with tracer.span("inner") as inner:
                tracer.advance(200.0)
            tracer.advance(250.0)
        spans = {s.name: s for s in tracer.spans()}
        assert spans["outer"].parent_id is None
        assert spans["inner"].parent_id == outer.span_id
        assert inner.start_ns >= outer.start_ns
        assert inner.end_ns <= outer.end_ns
        assert outer.start_ns == 100.0 and outer.end_ns == 250.0

    def test_no_orphan_parent_ids(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        ids = {s.span_id for s in tracer.spans()}
        for span in tracer.spans():
            assert span.parent_id is None or span.parent_id in ids

    def test_retrospective_spans(self):
        tracer = Tracer(enabled=True)
        parent = tracer.record_span("batch", 10.0, 50.0, track="shard0")
        child = tracer.record_span("unit", 12.0, 40.0, parent=parent)
        assert child.parent_id == parent.span_id
        with pytest.raises(ValueError, match="ends before it starts"):
            tracer.record_span("bad", 50.0, 10.0)

    def test_advance_is_monotonic(self):
        tracer = Tracer(enabled=True)
        tracer.advance(100.0)
        tracer.advance(50.0)  # backwards: ignored
        assert tracer.sim_now_ns == 100.0

    def test_instant_defaults_to_sim_now(self):
        tracer = Tracer(enabled=True)
        tracer.advance(33.0)
        tracer.instant("fault.fired", site="s", kind="drop")
        (event,) = tracer.events()
        assert event.ts_ns == 33.0
        assert event.attrs == {"site": "s", "kind": "drop"}

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(enabled=True, capacity=4)
        for index in range(10):
            tracer.record_span(f"s{index}", float(index), float(index) + 1)
        assert tracer.spans_recorded == 10
        assert len(tracer.spans()) == 4
        assert tracer.dropped_spans == 6
        assert [s.name for s in tracer.spans()] == ["s6", "s7", "s8", "s9"]

    def test_decorator(self):
        tracer = Tracer(enabled=True)

        @tracer.trace("work", category="test")
        def work(x):
            return x + 1

        assert work(1) == 2
        (span,) = tracer.spans()
        assert span.name == "work" and span.category == "test"


# -- chrome trace export + validator ------------------------------------------------


def _sample_tracer():
    tracer = Tracer(enabled=True)
    with tracer.span("outer", track="requests"):
        tracer.advance(1000.0)
        with tracer.span("inner", track="requests"):
            tracer.advance(2500.0)
    tracer.instant("fault", ts_ns=1500.0, track="faults")
    return tracer


class TestChromeExport:
    def test_valid_document_counts(self):
        document = to_chrome_trace(_sample_tracer())
        counts = validate_chrome_trace(document)
        assert counts["X"] == 2
        assert counts["i"] == 1
        assert counts["M"] == 2  # one thread_name per track

    def test_thread_names_cover_tracks(self):
        document = to_chrome_trace(_sample_tracer())
        names = {
            e["args"]["name"]
            for e in document["traceEvents"]
            if e["ph"] == "M"
        }
        assert names == {"requests", "faults"}

    def test_ts_dur_are_sim_microseconds(self):
        document = to_chrome_trace(_sample_tracer())
        outer = next(
            e for e in document["traceEvents"] if e.get("name") == "outer"
        )
        assert outer["ts"] == 0.0
        assert outer["dur"] == 2.5  # 2500 sim-ns -> 2.5 us

    def test_wall_excluded_by_default(self):
        document = to_chrome_trace(_sample_tracer())
        for event in document["traceEvents"]:
            assert "wall_dur_ns" not in event.get("args", {})
        with_wall = to_chrome_trace(_sample_tracer(), include_wall=True)
        spans = [e for e in with_wall["traceEvents"] if e["ph"] == "X"]
        assert all("wall_dur_ns" in e["args"] for e in spans)

    def test_export_is_deterministic(self):
        a = json.dumps(to_chrome_trace(_sample_tracer()), sort_keys=True)
        b = json.dumps(to_chrome_trace(_sample_tracer()), sort_keys=True)
        assert a == b

    def test_validator_rejects_malformed(self):
        def doc(events):
            return {"traceEvents": events}

        good = {"name": "s", "ph": "X", "pid": 1, "tid": 0, "ts": 0.0, "dur": 1.0}
        validate_chrome_trace(doc([good]))
        with pytest.raises(ValueError, match="'traceEvents'"):
            validate_chrome_trace({"events": []})
        with pytest.raises(ValueError, match="unknown phase"):
            validate_chrome_trace(doc([dict(good, ph="Z")]))
        with pytest.raises(ValueError, match="non-empty 'name'"):
            validate_chrome_trace(doc([dict(good, name="")]))
        with pytest.raises(ValueError, match="must be an int"):
            validate_chrome_trace(doc([dict(good, tid="0")]))
        with pytest.raises(ValueError, match="non-negative"):
            validate_chrome_trace(doc([dict(good, ts=-1.0)]))
        with pytest.raises(ValueError, match="monotonic"):
            validate_chrome_trace(
                doc([dict(good, ts=5.0), dict(good, ts=1.0)])
            )
        with pytest.raises(ValueError, match="'dur'"):
            validate_chrome_trace(doc([dict(good, dur=-2.0)]))
        with pytest.raises(ValueError, match="not JSON-serializable"):
            validate_chrome_trace(doc([dict(good, args={"x": object()})]))
