"""Tests for the Section V-E implementation details.

Covers: header-counter visited tracking across serialization epochs,
forced GC on counter overflow, shared-object unit-ID reservation with
software fallback, and the coherence read-latency knob.
"""

import pytest

from repro.cereal import CerealAccelerator
from repro.common.config import CerealConfig
from repro.common.errors import SimulationError
from repro.formats import graphs_equivalent
from repro.jvm import Heap
from tests.test_serializers import build_shared, build_tree, make_registry


@pytest.fixture
def setup():
    registry = make_registry()
    accelerator = CerealAccelerator()
    for klass in registry:
        accelerator.register_class(klass)
    heap = Heap(registry=registry)
    return registry, accelerator, heap


class TestVisitedEpochs:
    def test_serialize_writes_header_metadata(self, setup):
        _, accelerator, heap = setup
        root = build_tree(heap, depth=3)
        accelerator.serialize(root)
        # Every reachable object carries the current epoch in its header.
        epoch = heap._serialization_epoch
        assert epoch > 0
        assert root.serialization_counter == epoch
        assert root.get("left").serialization_counter == epoch

    def test_epochs_advance_per_operation(self, setup):
        _, accelerator, heap = setup
        root = build_tree(heap, depth=3)
        accelerator.serialize(root)
        first = root.serialization_counter
        accelerator.serialize(root)
        assert root.serialization_counter == first + 1

    def test_stale_epoch_objects_reserialize_fully(self, setup):
        """An object visited in a previous epoch must not appear visited."""
        _, accelerator, heap = setup
        root = build_tree(heap, depth=4)
        _, _, su_first = accelerator.serialize(root)
        _, _, su_second = accelerator.serialize(root)
        assert su_second.objects == su_first.objects

    def test_relative_address_recorded_in_header(self, setup):
        _, accelerator, heap = setup
        root = build_shared(heap)
        accelerator.serialize(root)
        shared = root.get("left")
        # Root at offset 0; the shared child right behind it (BFS order).
        assert root.serialized_relative_address == 0
        assert shared.serialized_relative_address == root.size_bytes

    def test_two_accelerators_share_heap_epochs(self, setup):
        registry, accelerator, heap = setup
        other = CerealAccelerator(registration=accelerator.registration)
        root = build_tree(heap, depth=3)
        _, _, su_a = accelerator.serialize(root)
        _, _, su_b = other.serialize(root)
        # The heap hands out distinct epochs, so the second device does a
        # full traversal instead of seeing stale "visited" markers.
        assert su_b.objects == su_a.objects


class TestForcedGC:
    def test_counter_overflow_forces_collection(self):
        heap = Heap()
        for _ in range(0xFFFF):
            heap.next_serialization_epoch()
        assert heap.forced_gc_count == 0
        epoch = heap.next_serialization_epoch()
        assert heap.forced_gc_count == 1
        assert epoch == 1  # restarted after the collection

    def test_forced_gc_clears_object_metadata(self, setup):
        _, accelerator, heap = setup
        root = build_tree(heap, depth=2)
        accelerator.serialize(root)
        assert root.serialization_counter > 0
        heap._serialization_epoch = 0xFFFF  # fast-forward to the edge
        heap.next_serialization_epoch()
        assert root.serialization_counter == 0

    def test_narrow_counter_wraps_sooner(self):
        heap = Heap()
        for _ in range(8):
            heap.next_serialization_epoch(counter_bits=3)
        assert heap.forced_gc_count == 1


class TestSharedObjectFallback:
    def test_concurrent_disjoint_graphs_no_fallback(self, setup):
        _, accelerator, heap = setup
        roots = [build_tree(heap, depth=3) for _ in range(3)]
        results = accelerator.serialize_concurrent(roots)
        assert all(su.fallback_objects == 0 for _, _, su in results)

    def test_shared_object_forces_fallback_on_later_unit(self, setup):
        _, accelerator, heap = setup
        shared = build_tree(heap, depth=3)
        root_a = heap.new_instance("Node")
        root_b = heap.new_instance("Node")
        root_a.set("left", shared)
        root_b.set("left", shared)
        results = accelerator.serialize_concurrent([root_a, root_b])
        su_a, su_b = results[0][2], results[1][2]
        assert su_a.fallback_objects == 0  # first unit claims the headers
        assert su_b.fallback_objects == 15  # whole shared subtree falls back

    def test_fallback_costs_time(self, setup):
        _, accelerator, heap = setup
        shared = build_tree(heap, depth=6)
        root_a = heap.new_instance("Node")
        root_b = heap.new_instance("Node")
        root_a.set("left", shared)
        root_b.set("left", shared)
        results = accelerator.serialize_concurrent([root_a, root_b])
        _, timing_a, _ = results[0]
        _, timing_b, _ = results[1]
        assert timing_b.elapsed_ns > timing_a.elapsed_ns

    def test_fallback_output_still_correct(self, setup):
        registry, accelerator, heap = setup
        shared = build_tree(heap, depth=3)
        root_a = heap.new_instance("Node")
        root_b = heap.new_instance("Node")
        root_a.set("left", shared)
        root_b.set("left", shared)
        results = accelerator.serialize_concurrent([root_a, root_b])
        for original, (result, _, _) in zip((root_a, root_b), results):
            receiver = Heap(registry=registry)
            rebuilt, _, _ = accelerator.deserialize(result.stream, receiver)
            assert graphs_equivalent(original, rebuilt)

    def test_concurrent_requires_one_heap(self, setup):
        registry, accelerator, heap = setup
        other_heap = Heap(registry=registry)
        with pytest.raises(SimulationError):
            accelerator.serialize_concurrent(
                [build_tree(heap, depth=2), build_tree(other_heap, depth=2)]
            )

    def test_empty_batch(self, setup):
        _, accelerator, _ = setup
        assert accelerator.serialize_concurrent([]) == []


class TestCoherenceLatency:
    def test_extra_read_latency_slows_serialization(self, setup):
        registry, accelerator, heap = setup
        root = build_tree(heap, depth=7)
        _, clean, _ = accelerator.serialize(root)
        coherent = CerealAccelerator(
            CerealConfig(coherence_extra_read_ns=30.0),
            registration=accelerator.registration,
        )
        _, dirty, _ = coherent.serialize(root)
        assert dirty.elapsed_ns > clean.elapsed_ns

    def test_pipelining_tolerates_coherence_partially(self, setup):
        """Section V-E: pipelined execution tolerates the added latency —
        the slowdown is sublinear in the extra per-read latency."""
        registry, accelerator, heap = setup
        root = build_tree(heap, depth=8)
        stream = accelerator.serialize(root)[0].stream
        base_acc = CerealAccelerator(registration=accelerator.registration)
        slow_acc = CerealAccelerator(
            CerealConfig(coherence_extra_read_ns=40.0),
            registration=accelerator.registration,
        )
        _, base, _ = base_acc.deserialize(stream, Heap(registry=registry))
        _, slow, _ = slow_acc.deserialize(stream, Heap(registry=registry))
        pipelined_slowdown = slow.elapsed_ns / base.elapsed_ns

        vanilla_base = CerealAccelerator(
            CerealConfig().vanilla(), registration=accelerator.registration
        )
        vanilla_slow = CerealAccelerator(
            CerealConfig(coherence_extra_read_ns=40.0).vanilla(),
            registration=accelerator.registration,
        )
        _, vb, _ = vanilla_base.deserialize(stream, Heap(registry=registry))
        _, vs, _ = vanilla_slow.deserialize(stream, Heap(registry=registry))
        vanilla_slowdown = vs.elapsed_ns / vb.elapsed_ns
        # The pipelined DU absorbs the added latency better than the
        # unpipelined one, and doubling read latency costs well under 2x.
        assert pipelined_slowdown < vanilla_slowdown
        assert pipelined_slowdown < 1.9
