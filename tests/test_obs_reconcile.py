"""Trace-vs-SLO reconciliation and determinism on seeded service runs.

The request spans a :class:`SerializationServer` emits are not a parallel
bookkeeping path — they are views over the same completion records the
SLO report summarizes. These tests pin that equivalence: quantiles
recomputed from the exported Chrome trace must match the SLO report to
within 1 ns of simulated time, and two runs with the same seed must
export byte-identical traces.
"""

import json

import pytest

from repro.faults import FaultInjector, FaultPolicy
from repro.obs import Tracer, exact_quantile, set_tracer, to_chrome_trace
from repro.service import (
    AdmissionConfig,
    PoissonWorkload,
    RequestMix,
    SerializationServer,
    ServiceCatalog,
    ServiceConfig,
    SizeClass,
)
from repro.service.workload import KIND_SERIALIZE

_SEED = 20260806
_SIZE_CLASSES = (
    SizeClass("small", "tree", objects=24),
    SizeClass("large", "graph", objects=96, fanout=4),
)
_MIX = RequestMix(
    serialize_fraction=0.5, size_weights={"small": 0.8, "large": 0.2}
)


@pytest.fixture(scope="module")
def catalog():
    return ServiceCatalog(size_classes=_SIZE_CLASSES)


def _capacity_qps(catalog):
    mean_ns = catalog.mean_service_ns(KIND_SERIALIZE, _MIX.size_weights)
    units = catalog.cereal_config.num_serializer_units
    return units * 1e9 / mean_ns / _MIX.serialize_fraction


def _traced_run(catalog, with_faults=True, num_requests=300, engine="analytic"):
    """One seeded overload run with tracing on; returns (report, tracer)."""
    injector = (
        FaultInjector(FaultPolicy(seed=_SEED, accelerator_fault_prob=0.05))
        if with_faults
        else None
    )
    config = ServiceConfig(
        num_shards=2,
        engine=engine,
        functional="sample",
        functional_every=8,
        admission=AdmissionConfig(max_outstanding=128, degrade_threshold=0.75),
    )
    workload = PoissonWorkload(
        qps=_capacity_qps(catalog) * 1.2,
        num_requests=num_requests,
        seed=_SEED + 1,
        mix=_MIX,
    )
    tracer = Tracer(enabled=True, capacity=1 << 18)
    previous = set_tracer(tracer)
    try:
        server = SerializationServer(
            catalog, config, injector=injector, tracer=tracer
        )
        report = server.run(workload.generate(catalog))
    finally:
        set_tracer(previous)
    return report, tracer


def _request_latencies_ns(document):
    """Completed-request latencies recomputed from the exported trace."""
    return sorted(
        event["dur"] * 1e3  # exported ts/dur are microseconds
        for event in document["traceEvents"]
        if event["ph"] == "X" and event["name"] == "request"
    )


class TestTraceReconcilesSLO:
    def test_span_quantiles_match_slo_within_1ns(self, catalog):
        report, tracer = _traced_run(catalog)
        latencies = _request_latencies_ns(to_chrome_trace(tracer))
        assert len(latencies) == report.completed_requests
        for q in (50.0, 95.0, 99.0):
            from_trace = exact_quantile(latencies, q)
            from_slo = report.latency_ns_at(q)
            assert abs(from_trace - from_slo) <= 1.0, (
                f"p{q}: trace={from_trace} slo={from_slo}"
            )

    def test_request_span_count_and_attrs(self, catalog):
        report, tracer = _traced_run(catalog)
        requests = [s for s in tracer.spans() if s.name == "request"]
        assert len(requests) == report.completed_requests
        by_id = {s.attrs["request_id"]: s for s in requests}
        for record in report.records:
            if not record.completed:
                continue
            span = by_id[record.request_id]
            assert span.start_ns == record.arrival_ns
            assert span.end_ns == record.finish_ns
            assert span.attrs["outcome"] == record.outcome
            assert span.attrs["backend"] == record.backend

    def test_queue_execute_children_partition_the_request(self, catalog):
        report, tracer = _traced_run(catalog)
        spans = tracer.spans()
        children = {}
        for span in spans:
            if span.name in ("request.queue", "request.execute"):
                children.setdefault(span.parent_id, []).append(span)
        for span in spans:
            if span.name != "request":
                continue
            parts = sorted(
                children[span.span_id], key=lambda s: s.start_ns
            )
            assert [p.name for p in parts] == ["request.queue", "request.execute"]
            queue, execute = parts
            assert queue.start_ns == span.start_ns
            assert queue.end_ns == execute.start_ns
            assert execute.end_ns == span.end_ns

    def test_shed_requests_become_instants(self, catalog):
        report, tracer = _traced_run(catalog)
        sheds = [e for e in tracer.events() if e.name == "request.shed"]
        assert len(sheds) == report.shed_requests

    def test_same_seed_byte_identical_trace(self, catalog):
        def render():
            _, tracer = _traced_run(catalog)
            return json.dumps(to_chrome_trace(tracer), sort_keys=True)

        assert render() == render()

    def test_device_unit_spans_nest_in_batches(self, catalog):
        # Unit timelines are only re-simulated (and so only traced) on
        # device-batch-cache misses; start cold to guarantee fresh runs.
        from repro.service.timing_cache import clear_timing_caches

        clear_timing_caches()
        _, tracer = _traced_run(
            catalog, with_faults=False, num_requests=60, engine="device"
        )
        batches = {
            s.span_id: s for s in tracer.spans() if s.name == "batch.execute"
        }
        assert batches, "expected batch.execute spans from the dispatcher"
        units = [s for s in tracer.spans() if s.category == "device"]
        assert units, "expected device unit spans from fresh simulator runs"
        for unit in units:
            batch = batches[unit.parent_id]
            assert unit.start_ns >= batch.start_ns
            assert unit.end_ns <= batch.end_ns
