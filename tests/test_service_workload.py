"""Tests for the service workload generators, coalescer, admission, SLO."""

import pytest

from repro.common.errors import ConfigError
from repro.service.admission import (
    DECISION_ADMIT,
    DECISION_DEGRADE,
    DECISION_SHED,
    AdmissionConfig,
    AdmissionController,
)
from repro.service.batching import BatchCoalescer
from repro.service.slo import (
    OUTCOME_DEGRADED,
    OUTCOME_OK,
    OUTCOME_SHED,
    RequestRecord,
    SLOReport,
)
from repro.service.workload import (
    DEFAULT_TENANTS,
    KIND_DESERIALIZE,
    KIND_SERIALIZE,
    BurstyWorkload,
    DiurnalWorkload,
    FlashCrowdWorkload,
    KeySkew,
    PoissonWorkload,
    RequestMix,
    ServiceCatalog,
    ServiceRequest,
    SizeClass,
    TenantClass,
)

_SMALL_CLASSES = (
    SizeClass("small", "tree", objects=24),
    SizeClass("medium", "list", objects=64),
)


@pytest.fixture(scope="module")
def catalog():
    return ServiceCatalog(size_classes=_SMALL_CLASSES)


def _mix():
    return RequestMix(
        serialize_fraction=0.5, size_weights={"small": 0.7, "medium": 0.3}
    )


def _signature(requests):
    return [(r.kind, r.entry.name) for r in requests]


class TestCatalog:
    def test_entries_built_with_timings(self, catalog):
        assert set(catalog.entries) == {"small", "medium"}
        for entry in catalog.entries.values():
            assert entry.stream.size_bytes > 0
            for kind in (KIND_SERIALIZE, KIND_DESERIALIZE):
                assert entry.accel_timing[kind].elapsed_ns > 0
                assert entry.software_ns[kind] > 0

    def test_streams_decodable_with_shared_registration(self, catalog):
        from repro.formats.verify import graphs_equivalent
        from repro.jvm import Heap

        for entry in catalog.entries.values():
            rebuilt = catalog.accelerator.codec.deserialize(
                entry.stream, Heap(registry=catalog.registry)
            ).root
            assert graphs_equivalent(entry.root, rebuilt)

    def test_mean_service_ns_weighted(self, catalog):
        small = catalog.entries["small"].accel_timing[KIND_SERIALIZE].elapsed_ns
        medium = catalog.entries["medium"].accel_timing[KIND_SERIALIZE].elapsed_ns
        mean = catalog.mean_service_ns(
            KIND_SERIALIZE, {"small": 1.0, "medium": 1.0}
        )
        assert mean == pytest.approx((small + medium) / 2)
        with pytest.raises(ConfigError):
            catalog.mean_service_ns(KIND_SERIALIZE, {"absent": 1.0})

    def test_empty_catalog_rejected(self):
        with pytest.raises(ConfigError):
            ServiceCatalog(size_classes=())


class TestOpenLoopWorkload:
    def test_same_seed_same_requests(self, catalog):
        a = PoissonWorkload(1e6, 500, seed=7, mix=_mix()).generate(catalog)
        b = PoissonWorkload(1e6, 500, seed=7, mix=_mix()).generate(catalog)
        assert _signature(a) == _signature(b)
        assert [r.arrival_ns for r in a] == [r.arrival_ns for r in b]

    def test_different_seed_different_sequence(self, catalog):
        a = PoissonWorkload(1e6, 500, seed=7, mix=_mix()).generate(catalog)
        b = PoissonWorkload(1e6, 500, seed=8, mix=_mix()).generate(catalog)
        assert _signature(a) != _signature(b)

    def test_qps_rescales_without_reshuffling(self, catalog):
        """The core monotonicity guarantee: QPS only compresses time."""
        slow = PoissonWorkload(1e6, 400, seed=3, mix=_mix()).generate(catalog)
        fast = PoissonWorkload(2e6, 400, seed=3, mix=_mix()).generate(catalog)
        assert _signature(slow) == _signature(fast)
        for s, f in zip(slow, fast):
            assert s.arrival_ns == pytest.approx(2.0 * f.arrival_ns)

    def test_mean_rate_matches_qps(self, catalog):
        requests = PoissonWorkload(1e6, 4000, seed=1, mix=_mix()).generate(
            catalog
        )
        span_s = requests[-1].arrival_ns * 1e-9
        assert 4000 / span_s == pytest.approx(1e6, rel=0.1)

    def test_mix_fractions_respected(self, catalog):
        requests = PoissonWorkload(1e6, 4000, seed=2, mix=_mix()).generate(
            catalog
        )
        ser = sum(1 for r in requests if r.kind == KIND_SERIALIZE)
        small = sum(1 for r in requests if r.entry.name == "small")
        assert ser / len(requests) == pytest.approx(0.5, abs=0.05)
        assert small / len(requests) == pytest.approx(0.7, abs=0.05)

    def test_payload_bytes_follow_kind(self, catalog):
        entry = catalog.entries["small"]
        ser = ServiceRequest(0, KIND_SERIALIZE, entry, 0.0)
        de = ServiceRequest(1, KIND_DESERIALIZE, entry, 0.0)
        assert ser.payload_bytes == entry.graph_bytes
        assert de.payload_bytes == entry.stream_bytes

    def test_bursty_preserves_mean_rate_and_adds_variance(self, catalog):
        poisson = PoissonWorkload(1e6, 4000, seed=5, mix=_mix()).generate(
            catalog
        )
        bursty = BurstyWorkload(
            1e6, 4000, seed=5, mix=_mix(), burst_factor=8.0
        ).generate(catalog)
        # Same requests, same mean rate (within sampling noise)...
        assert _signature(poisson) == _signature(bursty)
        assert bursty[-1].arrival_ns == pytest.approx(
            poisson[-1].arrival_ns, rel=0.2
        )

        # ...but burstier inter-arrival gaps (higher squared CV).
        def cv2(requests):
            gaps = [
                b.arrival_ns - a.arrival_ns
                for a, b in zip(requests, requests[1:])
            ]
            mean = sum(gaps) / len(gaps)
            var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
            return var / (mean * mean)

        assert cv2(bursty) > 1.5 * cv2(poisson)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigError):
            PoissonWorkload(0.0, 10)
        with pytest.raises(ConfigError):
            PoissonWorkload(1e6, 0)
        with pytest.raises(ConfigError):
            RequestMix(serialize_fraction=1.5)
        with pytest.raises(ConfigError):
            RequestMix(size_weights={})
        with pytest.raises(ConfigError):
            BurstyWorkload(1e6, 10, burst_factor=0.5)
        with pytest.raises(ConfigError):
            BurstyWorkload(1e6, 10, burst_fraction=1.0)

    def test_mix_must_reference_catalog(self, catalog):
        workload = PoissonWorkload(
            1e6, 10, mix=RequestMix(size_weights={"absent": 1.0})
        )
        with pytest.raises(ConfigError):
            workload.generate(catalog)


def _request(catalog, request_id, kind=KIND_SERIALIZE, name="small"):
    return ServiceRequest(request_id, kind, catalog.entries[name], 0.0)


class TestBatchCoalescer:
    def test_count_cap_closes_batch(self, catalog):
        coalescer = BatchCoalescer(max_batch_requests=3, max_wait_ns=1e6)
        outcomes = [
            coalescer.add(_request(catalog, i), float(i)) for i in range(3)
        ]
        assert outcomes[0].opened_seq is not None
        assert outcomes[0].deadline_ns == pytest.approx(1e6)
        assert outcomes[1].batch is None and outcomes[1].opened_seq is None
        batch = outcomes[2].batch
        assert batch is not None and batch.size == 3
        assert batch.opened_ns == 0.0 and batch.closed_ns == 2.0

    def test_byte_cap_closes_batch(self, catalog):
        payload = catalog.entries["small"].graph_bytes
        coalescer = BatchCoalescer(
            max_batch_requests=100,
            max_batch_bytes=2 * payload,
            max_wait_ns=1e6,
        )
        assert coalescer.add(_request(catalog, 0), 0.0).batch is None
        batch = coalescer.add(_request(catalog, 1), 1.0).batch
        assert batch is not None and batch.size == 2

    def test_kinds_batch_separately(self, catalog):
        coalescer = BatchCoalescer(max_batch_requests=2, max_wait_ns=1e6)
        coalescer.add(_request(catalog, 0, KIND_SERIALIZE), 0.0)
        assert (
            coalescer.add(_request(catalog, 1, KIND_DESERIALIZE), 0.0).batch
            is None
        )
        batch = coalescer.add(_request(catalog, 2, KIND_SERIALIZE), 1.0).batch
        assert batch is not None and batch.kind == KIND_SERIALIZE

    def test_stale_deadline_is_noop(self, catalog):
        coalescer = BatchCoalescer(max_batch_requests=2, max_wait_ns=1e6)
        seq = coalescer.add(_request(catalog, 0), 0.0).opened_seq
        coalescer.add(_request(catalog, 1), 1.0)  # closes by count
        assert coalescer.flush_due(KIND_SERIALIZE, seq, 1e6) is None

    def test_live_deadline_flushes(self, catalog):
        coalescer = BatchCoalescer(max_batch_requests=8, max_wait_ns=1e6)
        seq = coalescer.add(_request(catalog, 0), 0.0).opened_seq
        batch = coalescer.flush_due(KIND_SERIALIZE, seq, 1e6)
        assert batch is not None and batch.size == 1
        assert batch.closed_ns == 1e6

    def test_unbatched_mode(self, catalog):
        coalescer = BatchCoalescer(max_wait_ns=0.0)
        for i in range(5):
            outcome = coalescer.add(_request(catalog, i), float(i))
            assert outcome.batch is not None and outcome.batch.size == 1
        assert coalescer.mean_batch_size == 1.0

    def test_flush_all_drains_both_kinds(self, catalog):
        coalescer = BatchCoalescer(max_batch_requests=8, max_wait_ns=1e6)
        coalescer.add(_request(catalog, 0, KIND_SERIALIZE), 0.0)
        coalescer.add(_request(catalog, 1, KIND_DESERIALIZE), 0.0)
        batches = coalescer.flush_all(5.0)
        assert len(batches) == 2
        assert {b.kind for b in batches} == {KIND_SERIALIZE, KIND_DESERIALIZE}
        assert coalescer.flush_all(6.0) == []

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigError):
            BatchCoalescer(max_batch_requests=0)
        with pytest.raises(ConfigError):
            BatchCoalescer(max_wait_ns=-1.0)


class TestAdmission:
    def test_admit_below_threshold(self):
        controller = AdmissionController(
            AdmissionConfig(max_outstanding=10, degrade_threshold=0.8)
        )
        for _ in range(7):
            assert controller.decide() == DECISION_ADMIT
        assert controller.outstanding == 7

    def test_degrade_band_then_shed(self):
        controller = AdmissionController(
            AdmissionConfig(max_outstanding=10, degrade_threshold=0.8)
        )
        decisions = [controller.decide() for _ in range(12)]
        assert decisions[:8] == [DECISION_ADMIT] * 8
        assert decisions[8:10] == [DECISION_DEGRADE] * 2
        assert decisions[10:] == [DECISION_SHED] * 2
        assert controller.outstanding == 10  # shed requests take no slot
        assert controller.peak_outstanding == 10
        assert controller.total_seen == 12

    def test_release_reopens_admission(self):
        controller = AdmissionController(AdmissionConfig(max_outstanding=2))
        controller.decide(), controller.decide()
        assert controller.decide() == DECISION_SHED
        controller.release()
        assert controller.decide() != DECISION_SHED

    def test_degrade_disabled(self):
        controller = AdmissionController(
            AdmissionConfig(
                max_outstanding=4, degrade_threshold=0.5, enable_degrade=False
            )
        )
        assert [controller.decide() for _ in range(4)] == [DECISION_ADMIT] * 4

    def test_over_release_rejected(self):
        controller = AdmissionController()
        with pytest.raises(ConfigError):
            controller.release()


def _record(i, latency_ns, outcome=OUTCOME_OK, kind=KIND_SERIALIZE):
    backend = "none" if outcome == OUTCOME_SHED else "cereal"
    finish = 0.0 if outcome == OUTCOME_SHED else latency_ns
    return RequestRecord(
        request_id=i,
        kind=kind,
        size_class="small",
        arrival_ns=0.0,
        dispatch_ns=0.0,
        finish_ns=finish,
        outcome=outcome,
        backend=backend,
    )


class TestSLOReport:
    def test_percentiles_over_known_population(self):
        records = [_record(i, float(i + 1)) for i in range(100)]
        report = SLOReport(records=records)
        assert report.p50() == pytest.approx(50.5)
        assert report.p99() == pytest.approx(99.01)
        assert report.max_latency_ns() == 100.0
        assert report.mean_latency_ns() == pytest.approx(50.5)

    def test_shed_requests_excluded_from_latency(self):
        records = [_record(i, 10.0) for i in range(9)]
        records.append(_record(9, 1e9, outcome=OUTCOME_SHED))
        report = SLOReport(records=records)
        assert report.shed_requests == 1
        assert report.shed_rate == pytest.approx(0.1)
        assert report.max_latency_ns() == 10.0

    def test_per_kind_split(self):
        records = [_record(i, 10.0, kind=KIND_SERIALIZE) for i in range(5)]
        records += [
            _record(5 + i, 30.0, kind=KIND_DESERIALIZE) for i in range(5)
        ]
        report = SLOReport(records=records)
        assert report.p50(KIND_SERIALIZE) == 10.0
        assert report.p50(KIND_DESERIALIZE) == 30.0

    def test_as_dict_shape(self):
        records = [_record(0, 5.0), _record(1, 7.0, outcome=OUTCOME_DEGRADED)]
        summary = SLOReport(records=records).as_dict()
        assert summary["requests"] == {
            "total": 2,
            "completed": 2,
            "shed": 0,
            "rejected": 0,
            "degraded": 1,
            "retried": 0,
            "verified": 0,
        }
        assert set(summary["latency_ns"]["all"]) == {
            "p50", "p95", "p99", "p999", "mean", "max",
        }
        assert "faults" not in summary

    def test_to_table_renders(self):
        records = [_record(i, float(i + 1) * 1e3) for i in range(10)]
        text = SLOReport(records=records).to_table().render()
        assert "p99" in text and "goodput" in text


# -- workload shapes (diurnal, flash crowd) ------------------------------------------


class TestWorkloadShapes:
    def test_diurnal_preserves_mean_rate_and_sequence(self, catalog):
        poisson = PoissonWorkload(1e6, 3000, seed=5, mix=_mix()).generate(
            catalog
        )
        diurnal = DiurnalWorkload(
            1e6, 3000, seed=5, mix=_mix(), amplitude=0.8, period_requests=500
        ).generate(catalog)
        # Rate shaping touches only gaps: kinds and sizes are untouched,
        # and renormalization keeps the long-run rate exact.
        assert _signature(diurnal) == _signature(poisson)
        # Diurnal gaps renormalize to an exact mean of 1.0; the Poisson
        # horizon carries sampling noise, so compare loosely.
        assert diurnal[-1].arrival_ns == pytest.approx(
            poisson[-1].arrival_ns, rel=0.1
        )

    def test_diurnal_modulates_local_rate(self, catalog):
        requests = DiurnalWorkload(
            1e6, 4000, seed=9, mix=_mix(), amplitude=0.9,
            period_requests=4000,
        ).generate(catalog)
        # First half of the sine period runs above the mean rate, the
        # second half below: the peak half must finish disproportionately
        # early in wall-clock terms.
        half_time = requests[1999].arrival_ns
        assert half_time < 0.40 * requests[-1].arrival_ns

    def test_flash_crowd_compresses_only_the_window(self, catalog):
        base = PoissonWorkload(1e6, 2000, seed=4, mix=_mix()).generate(
            catalog
        )
        crowd_workload = FlashCrowdWorkload(
            1e6, 2000, seed=4, mix=_mix(), spike_factor=10.0,
            spike_start_fraction=0.5, spike_duration_fraction=0.25,
        )
        crowd = crowd_workload.generate(catalog)
        start, end = crowd_workload.spike_window()
        assert (start, end) == (1000, 1500)
        assert _signature(crowd) == _signature(base)

        def gaps(requests):
            arrivals = [r.arrival_ns for r in requests]
            return [b - a for a, b in zip(arrivals, arrivals[1:])]

        base_gaps, crowd_gaps = gaps(base), gaps(crowd)
        # Outside the window gaps are identical; inside they shrink 10x.
        for index in range(0, start - 1):
            assert crowd_gaps[index] == pytest.approx(base_gaps[index])
        for index in range(start, end - 1):
            assert crowd_gaps[index] == pytest.approx(
                base_gaps[index] / 10.0
            )

    def test_flash_crowd_validation(self):
        with pytest.raises(ConfigError, match="spike_factor"):
            FlashCrowdWorkload(1e6, 100, spike_factor=0.5)
        with pytest.raises(ConfigError, match="spike_start_fraction"):
            FlashCrowdWorkload(1e6, 100, spike_start_fraction=1.0)
        with pytest.raises(ConfigError, match="amplitude"):
            DiurnalWorkload(1e6, 100, amplitude=1.0)
        with pytest.raises(ConfigError, match="period_requests"):
            DiurnalWorkload(1e6, 100, period_requests=1)


# -- rng stream isolation ------------------------------------------------------------


class TestRngStreamIsolation:
    """Each workload feature draws from its own seeded substream, so
    enabling one never perturbs the sequences existing tests pin."""

    def test_keys_do_not_perturb_base_sequence(self, catalog):
        plain = PoissonWorkload(1e6, 1000, seed=7, mix=_mix()).generate(
            catalog
        )
        keyed = PoissonWorkload(
            1e6, 1000, seed=7, mix=_mix(), keys=KeySkew()
        ).generate(catalog)
        assert _signature(keyed) == _signature(plain)
        assert [r.arrival_ns for r in keyed] == [
            r.arrival_ns for r in plain
        ]
        assert [r.malformed for r in keyed] == [r.malformed for r in plain]
        assert all(r.key for r in keyed)
        assert all(r.key == "" for r in plain)

    def test_tenants_do_not_perturb_base_sequence_or_keys(self, catalog):
        keyed = PoissonWorkload(
            1e6, 1000, seed=7, mix=_mix(), keys=KeySkew()
        ).generate(catalog)
        both = PoissonWorkload(
            1e6, 1000, seed=7, mix=_mix(), keys=KeySkew(),
            tenants=DEFAULT_TENANTS,
        ).generate(catalog)
        assert _signature(both) == _signature(keyed)
        assert [r.arrival_ns for r in both] == [
            r.arrival_ns for r in keyed
        ]
        assert [r.key for r in both] == [r.key for r in keyed]
        assert all(r.tenant for r in both)

    def test_malformed_fraction_still_isolated(self, catalog):
        plain = PoissonWorkload(
            1e6, 1000, seed=3, mix=_mix(), keys=KeySkew()
        ).generate(catalog)
        flagged = PoissonWorkload(
            1e6, 1000, seed=3, mix=_mix(), keys=KeySkew(),
            malformed_fraction=0.2,
        ).generate(catalog)
        assert _signature(flagged) == _signature(plain)
        assert [r.key for r in flagged] == [r.key for r in plain]
        assert any(r.malformed for r in flagged)


# -- key skew and tenant mixes -------------------------------------------------------


class TestKeySkewAndTenants:
    def test_zipfian_keys_concentrate_on_low_ranks(self, catalog):
        requests = PoissonWorkload(
            1e6, 4000, seed=11, mix=_mix(),
            keys=KeySkew(key_space=64, exponent=1.2),
        ).generate(catalog)
        counts = {}
        for request in requests:
            counts[request.key] = counts.get(request.key, 0) + 1
        hottest = max(counts, key=lambda k: (counts[k], k))
        assert hottest == "key-0"
        # The head dominates: rank 0 far above the uniform share.
        assert counts["key-0"] > 4 * (4000 / 64)

    def test_tenant_weights_and_attributes(self, catalog):
        tenants = (
            TenantClass("gold", weight=0.7, priority=0, zone="zone-a"),
            TenantClass("bronze", weight=0.3, priority=2, zone="zone-b"),
        )
        requests = PoissonWorkload(
            1e6, 4000, seed=13, mix=_mix(), tenants=tenants
        ).generate(catalog)
        gold = [r for r in requests if r.tenant == "gold"]
        bronze = [r for r in requests if r.tenant == "bronze"]
        assert len(gold) + len(bronze) == len(requests)
        assert len(gold) / len(requests) == pytest.approx(0.7, abs=0.05)
        assert all(r.priority == 0 and r.zone == "zone-a" for r in gold)
        assert all(r.priority == 2 and r.zone == "zone-b" for r in bronze)

    def test_key_skew_validation(self):
        with pytest.raises(ConfigError, match="key_space"):
            KeySkew(key_space=0)
        with pytest.raises(ConfigError, match="exponent"):
            KeySkew(exponent=-1.0)
        with pytest.raises(ConfigError, match="weight"):
            TenantClass("t", weight=0.0)


# -- QoS priority admission ----------------------------------------------------------


class TestPriorityAdmission:
    def test_lower_priority_sheds_first(self):
        config = AdmissionConfig(
            max_outstanding=10,
            degrade_threshold=0.8,
            priority_shares=(1.0, 0.5),
        )
        controller = AdmissionController(config)
        for _ in range(5):
            assert controller.decide(priority=0) == DECISION_ADMIT
        # Best-effort sees an effective queue of 5 slots: full now.
        assert controller.decide(priority=1) == DECISION_SHED
        # The protected class still has headroom (degrades at 8).
        assert controller.decide(priority=0) == DECISION_ADMIT
        assert controller.shed_by_priority == {1: 1}

    def test_priority_degrades_earlier_too(self):
        config = AdmissionConfig(
            max_outstanding=20,
            degrade_threshold=0.5,
            priority_shares=(1.0, 0.6),
        )
        controller = AdmissionController(config)
        for _ in range(6):
            controller.decide(priority=0)
        # priority 1: effective queue 12, degrade from occupancy 6.
        assert controller.decide(priority=1) == DECISION_DEGRADE
        # priority 0 degrades only from occupancy 10.
        assert controller.decide(priority=0) == DECISION_ADMIT

    def test_default_shares_match_pre_qos_behaviour(self):
        classic = AdmissionController(AdmissionConfig(max_outstanding=4))
        qos = AdmissionController(AdmissionConfig(max_outstanding=4))
        for _ in range(6):
            assert classic.decide() == qos.decide(priority=5)

    def test_share_table_validation(self):
        with pytest.raises(ConfigError, match="non-empty"):
            AdmissionConfig(priority_shares=())
        with pytest.raises(ConfigError, match="in \\(0, 1\\]"):
            AdmissionConfig(priority_shares=(1.0, 1.5))
        with pytest.raises(ConfigError, match="largest"):
            AdmissionConfig(priority_shares=(0.5, 1.0))
