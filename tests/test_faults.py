"""Deterministic fault injection and the resilience layers it exercises.

Covers the acceptance criteria of the fault-tolerance work:

* determinism — same seed, same app => byte-identical fault reports and
  identical time breakdowns; zero-probability injection and no framing
  => times exactly match the fault-free model (zero happy-path cost);
* recovery — at realistic fault rates every Spark app completes, shuffled
  and collected graphs are structurally equivalent to a fault-free run,
  and every accelerator ``CapacityError`` is absorbed by the software
  fallback instead of propagating.
"""

import pytest

from repro.cereal import CerealAccelerator
from repro.common.errors import (
    CapacityError,
    ConfigError,
    CorruptionError,
    TransientError,
)
from repro.faults import FaultInjector, FaultPolicy, FaultReport
from repro.formats import ClassRegistration, KryoSerializer, graphs_equivalent
from repro.jvm.klass import FieldKind
from repro.spark import (
    CerealBackend,
    MiniSparkContext,
    RetryPolicy,
    SoftwareBackend,
    TimeBreakdown,
)
from repro.spark.apps import SPARK_APPS
from repro.spark.apps.base import ensure_klass, register_backend_classes
from repro.spark.transfer import ResilientTransfer

CHAOS = FaultPolicy.chaos(seed=1234, probability=0.05)


def _kryo_backend():
    return SoftwareBackend(KryoSerializer(ClassRegistration()))


def _build_records(context, count=60):
    klass = ensure_klass(
        context.registry,
        "FaultRecord",
        [("key", FieldKind.LONG), ("payload", FieldKind.REFERENCE)],
    )
    context.registry.array_klass(FieldKind.DOUBLE)
    context.registry.array_klass(FieldKind.REFERENCE)
    register_backend_classes(context.backend, context.registry)
    heap = context.executor_heap
    records = []
    for index in range(count):
        record = heap.allocate(klass)
        record.set("key", index * 37)
        payload = heap.new_array(FieldKind.DOUBLE, 6)
        for slot in range(6):
            payload.set_element(slot, float(index * 6 + slot))
        record.set("payload", payload)
        records.append(record)
    return records


class TestFaultInjectorDeterminism:
    def test_draws_are_pure_functions_of_seed_channel_index(self):
        a = FaultInjector(FaultPolicy(seed=99))
        b = FaultInjector(FaultPolicy(seed=99))
        draws_a = [a.draw("transfer.shuffle") for _ in range(50)]
        draws_b = [b.draw("transfer.shuffle") for _ in range(50)]
        assert draws_a == draws_b
        assert all(0.0 <= d < 1.0 for d in draws_a)

    def test_channels_are_independent(self):
        a = FaultInjector(FaultPolicy(seed=7))
        b = FaultInjector(FaultPolicy(seed=7))
        # Interleaving draws on another channel must not perturb the first.
        first = [a.draw("x") for _ in range(10)]
        interleaved = []
        for _ in range(10):
            b.draw("noise")
            interleaved.append(b.draw("x"))
        assert first == interleaved

    def test_different_seeds_differ(self):
        a = FaultInjector(FaultPolicy(seed=1))
        b = FaultInjector(FaultPolicy(seed=2))
        assert [a.draw("c") for _ in range(20)] != [
            b.draw("c") for _ in range(20)
        ]

    def test_corrupt_bytes_is_deterministic_and_damaging(self):
        data = bytes(range(256)) * 4
        a = FaultInjector(FaultPolicy(seed=5))
        b = FaultInjector(FaultPolicy(seed=5))
        for _ in range(20):
            damaged_a = a.corrupt_bytes(data, "shuffle")
            damaged_b = b.corrupt_bytes(data, "shuffle")
            assert damaged_a == damaged_b
            assert damaged_a != data

    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            FaultPolicy(corruption_prob=1.5)
        with pytest.raises(ConfigError):
            FaultPolicy(corruption_prob=0.5, drop_prob=0.4, latency_spike_prob=0.2)
        assert not FaultPolicy().any_faults
        assert FaultPolicy.chaos(probability=0.06).any_faults


class TestRetryPolicy:
    def test_backoff_grows_then_caps(self):
        policy = RetryPolicy(jitter=0.0)
        waits = [policy.backoff_ns(n, 0.5) for n in range(12)]
        assert waits == sorted(waits)
        assert waits[0] == policy.base_backoff_ns
        assert waits[-1] == policy.max_backoff_ns

    def test_jitter_bounds(self):
        policy = RetryPolicy(jitter=0.2)
        low = policy.backoff_ns(0, 0.0)
        high = policy.backoff_ns(0, 1.0)
        assert low == pytest.approx(policy.base_backoff_ns * 0.8)
        assert high == pytest.approx(policy.base_backoff_ns * 1.2)

    def test_retries_exhausted_raises_transient_error(self):
        breakdown = TimeBreakdown()
        injector = FaultInjector(FaultPolicy(seed=3, drop_prob=1.0))
        transfer = ResilientTransfer(
            breakdown,
            injector=injector,
            retry=RetryPolicy(max_retries=3),
            frame_streams=True,
        )
        backend = _kryo_backend()
        context = MiniSparkContext(backend)
        records = _build_records(context, count=4)
        stream = context.serialize_bucket(records, site="shuffle")
        with pytest.raises(TransientError):
            transfer.deliver(stream, "shuffle")
        stats = injector.report.layer("transfer")
        assert stats.detected == 4  # initial attempt + 3 retries
        assert stats.recovered == 0
        assert breakdown.retry_ns > 0


class TestHappyPathInvariance:
    """Fault probability 0 + framing off must cost exactly nothing."""

    @pytest.mark.parametrize("app", ["terasort", "svm"])
    def test_zero_probability_matches_seed_model(self, app):
        baseline = SPARK_APPS[app](_kryo_backend())
        injected = SPARK_APPS[app](
            _kryo_backend(), injector=FaultInjector(FaultPolicy(seed=11))
        )
        assert injected.total_ns == baseline.total_ns
        assert injected.breakdown.retry_ns == 0.0
        assert injected.breakdown.gc_ns == baseline.breakdown.gc_ns
        assert len(injected.breakdown.operations) == len(
            baseline.breakdown.operations
        )

    def test_transfer_without_injector_is_identity(self):
        context = MiniSparkContext(_kryo_backend())
        records = _build_records(context, count=4)
        stream = context.serialize_bucket(records, site="shuffle")
        assert context.transfer.deliver(stream, "shuffle") is stream
        assert context.breakdown.retry_ns == 0.0


class TestChaosDeterminism:
    def test_same_seed_same_report_and_breakdown(self):
        runs = []
        for _ in range(2):
            injector = FaultInjector(CHAOS)
            result = SPARK_APPS["terasort"](
                _kryo_backend(), injector=injector, frame_streams=True
            )
            runs.append((result, injector.report))
        first, second = runs
        assert first[1].to_text() == second[1].to_text()
        assert first[1].as_dict() == second[1].as_dict()
        assert first[0].total_ns == second[0].total_ns
        assert first[0].breakdown.retry_ns == second[0].breakdown.retry_ns
        assert len(first[0].breakdown.operations) == len(
            second[0].breakdown.operations
        )

    def test_different_seed_different_schedule(self):
        totals = []
        for seed in (1, 2, 3, 4):
            injector = FaultInjector(FaultPolicy.chaos(seed=seed, probability=0.08))
            result = SPARK_APPS["terasort"](
                _kryo_backend(), injector=injector, frame_streams=True
            )
            totals.append(
                (result.total_ns, injector.report.totals.injected)
            )
        assert len(set(totals)) > 1


class TestRecovery:
    def test_shuffle_collect_graphs_survive_chaos(self):
        """Faulted shuffle+collect must yield an equivalent object graph."""

        def run(injector, frame):
            context = MiniSparkContext(
                _kryo_backend(), injector=injector, frame_streams=frame
            )
            records = _build_records(context, count=48)
            dataset = context.parallelize(records, 4)
            shuffled = dataset.shuffle(
                key_fn=lambda r: int(r.get("key")), num_partitions=4
            )
            return shuffled.collect()

        clean = run(None, False)
        chaotic = run(FaultInjector(CHAOS), True)
        assert len(clean) == len(chaotic)
        for a, b in zip(clean, chaotic):
            assert graphs_equivalent(a, b)

    @pytest.mark.parametrize("app", list(SPARK_APPS))
    def test_every_app_completes_under_chaos(self, app):
        injector = FaultInjector(FaultPolicy.chaos(seed=77, probability=0.05))
        baseline = SPARK_APPS[app](_kryo_backend())
        result = SPARK_APPS[app](
            _kryo_backend(), injector=injector, frame_streams=True
        )
        assert result.records == baseline.records
        # Chaos can only add time (retries, re-execution, GC pauses).
        assert result.total_ns >= baseline.total_ns
        totals = injector.report.totals
        assert totals.detected == totals.recovered  # nothing escalated
        assert totals.injected >= totals.detected - totals.fallbacks

    def test_cereal_apps_complete_with_accelerator_chaos(self):
        injector = FaultInjector(FaultPolicy.chaos(seed=5, probability=0.05))
        accelerator = CerealAccelerator()
        backend = CerealBackend(accelerator, injector=injector)
        result = SPARK_APPS["terasort"](
            backend, injector=injector, frame_streams=True
        )
        assert result.total_ns > 0
        report = injector.report
        acc = report.layer("accelerator")
        assert acc.fallbacks == result.breakdown.fallback_count
        assert acc.detected == acc.recovered


class TestAcceleratorFallback:
    def _run_with_fault_prob(self, probability):
        injector = FaultInjector(
            FaultPolicy(seed=9, accelerator_fault_prob=probability)
        )
        backend = CerealBackend(CerealAccelerator(), injector=injector)
        result = SPARK_APPS["terasort"](backend, injector=injector)
        return result, injector

    def test_every_capacity_error_absorbed(self):
        result, injector = self._run_with_fault_prob(1.0)
        # Every operation had an injected CapacityError; all were absorbed.
        assert result.breakdown.fallback_count == len(
            result.breakdown.operations
        )
        assert injector.report.layer("accelerator").fallbacks == len(
            result.breakdown.operations
        )

    def test_partial_faults_mix_hardware_and_fallback(self):
        result, injector = self._run_with_fault_prob(0.3)
        fallbacks = result.breakdown.fallback_count
        assert 0 < fallbacks < len(result.breakdown.operations)

    def test_real_capacity_error_absorbed_without_injector(self):
        """A genuine (non-injected) CapacityError must also fall back."""
        backend = CerealBackend(CerealAccelerator())

        def exploding_serialize(root):
            raise CapacityError("MAI coalescing buffer overflow")

        backend.accelerator.serialize = exploding_serialize
        context = MiniSparkContext(backend)
        records = _build_records(context, count=8)
        stream = context.serialize_bucket(records, site="shuffle")
        assert context.breakdown.operations[-1].fallback
        assert stream.format_name == "kryo"
        # And the fallback stream deserializes through the same backend.
        received = context.deserialize_bucket(stream, site="shuffle")
        assert len(received) == 8
        assert backend.fallback_count == 2  # serialize + deserialize

    def test_fallback_result_equivalent_to_hardware(self):
        fallback_ctx = None
        results = []
        for prob in (0.0, 1.0):
            injector = FaultInjector(
                FaultPolicy(seed=2, accelerator_fault_prob=prob)
            )
            backend = CerealBackend(CerealAccelerator(), injector=injector)
            context = MiniSparkContext(backend, injector=injector)
            records = _build_records(context, count=12)
            dataset = context.parallelize(records, 3)
            results.append(
                dataset.shuffle(key_fn=lambda r: int(r.get("key"))).collect()
            )
            fallback_ctx = context
        hardware, software = results
        assert fallback_ctx.breakdown.fallback_count > 0
        assert len(hardware) == len(software)
        for a, b in zip(hardware, software):
            assert graphs_equivalent(a, b)


class TestFramingLayer:
    def test_framed_stream_sections_balance(self):
        context = MiniSparkContext(_kryo_backend())
        records = _build_records(context, count=4)
        stream = context.serialize_bucket(records, site="shuffle")
        framed = stream.framed()
        framed.check_sections()
        assert framed.size_bytes == stream.size_bytes + 16
        assert framed.framed() is framed  # idempotent
        assert framed.unframed().data == stream.data

    def test_unframed_on_bare_stream_raises(self):
        context = MiniSparkContext(_kryo_backend())
        records = _build_records(context, count=4)
        stream = context.serialize_bucket(records, site="shuffle")
        with pytest.raises(CorruptionError):
            stream.unframed()


class TestFaultReport:
    def test_merge_and_totals(self):
        a = FaultReport()
        a.record_injected("transfer", 3)
        a.record_detected("transfer", 2)
        b = FaultReport()
        b.record_injected("accelerator")
        b.record_fallback("accelerator")
        a.merge(b)
        assert a.totals.injected == 4
        assert a.totals.fallbacks == 1
        assert a.as_dict()["transfer"]["injected"] == 3

    def test_report_exposed_through_analysis(self):
        from repro.analysis import FaultReport as AnalysisFaultReport

        report = AnalysisFaultReport()
        report.record_injected("heap")
        text = report.to_text()
        assert "heap" in text and "TOTAL" in text
