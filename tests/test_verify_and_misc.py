"""Coverage for the graph-equivalence verifier and small API surfaces."""

import math

import pytest

from repro.cereal.accelerator import OperationTiming
from repro.formats.verify import first_difference, graphs_equivalent
from repro.jvm import (
    FieldDescriptor,
    FieldKind,
    Heap,
    InstanceKlass,
    KlassRegistry,
)


def make_registry():
    registry = KlassRegistry()
    registry.register(
        InstanceKlass(
            "Box",
            [
                FieldDescriptor("weight", FieldKind.DOUBLE),
                FieldDescriptor("inner", FieldKind.REFERENCE),
            ],
        )
    )
    registry.register(InstanceKlass("Tag", [FieldDescriptor("id", FieldKind.INT)]))
    registry.array_klass(FieldKind.REFERENCE)
    registry.array_klass(FieldKind.DOUBLE)
    return registry


@pytest.fixture
def heap():
    return Heap(registry=make_registry())


class TestFirstDifference:
    def test_identical_singletons(self, heap):
        a = heap.new_instance("Tag")
        b = heap.new_instance("Tag")
        assert first_difference(a, b) is None

    def test_klass_mismatch_reported(self, heap):
        a = heap.new_instance("Box")
        b = heap.new_instance("Tag")
        difference = first_difference(a, b)
        assert "klass" in difference
        assert "Box" in difference and "Tag" in difference

    def test_field_path_in_report(self, heap):
        a = heap.new_instance("Box")
        b = heap.new_instance("Box")
        a.set("weight", 1.0)
        b.set("weight", 2.0)
        assert "root.weight" in first_difference(a, b)

    def test_nested_path_in_report(self, heap):
        a = heap.new_instance("Box")
        b = heap.new_instance("Box")
        inner_a = heap.new_instance("Tag")
        inner_b = heap.new_instance("Tag")
        inner_a.set("id", 1)
        inner_b.set("id", 2)
        a.set("inner", inner_a)
        b.set("inner", inner_b)
        assert "root.inner.id" in first_difference(a, b)

    def test_array_length_mismatch(self, heap):
        a = heap.new_array(FieldKind.DOUBLE, 2)
        b = heap.new_array(FieldKind.DOUBLE, 3)
        assert "length" in first_difference(a, b)

    def test_array_element_path(self, heap):
        a = heap.new_array(FieldKind.DOUBLE, 2)
        b = heap.new_array(FieldKind.DOUBLE, 2)
        b.set_element(1, 5.0)
        assert "[1]" in first_difference(a, b)

    def test_null_vs_object(self, heap):
        a = heap.new_instance("Box")
        b = heap.new_instance("Box")
        b.set("inner", heap.new_instance("Tag"))
        assert "null" in first_difference(a, b)

    def test_nan_values_equivalent(self, heap):
        a = heap.new_instance("Box")
        b = heap.new_instance("Box")
        a.set("weight", math.nan)
        b.set("weight", math.nan)
        assert graphs_equivalent(a, b)

    def test_float_tolerance(self, heap):
        a = heap.new_instance("Box")
        b = heap.new_instance("Box")
        a.set("weight", 1.0)
        b.set("weight", 1.0 + 1e-9)
        assert graphs_equivalent(a, b)

    def test_self_reference_equivalent(self, heap):
        a = heap.new_instance("Box")
        a.set("inner", a)
        b = heap.new_instance("Box")
        b.set("inner", b)
        assert graphs_equivalent(a, b)

    def test_self_vs_two_cycle_differs(self, heap):
        a = heap.new_instance("Box")
        a.set("inner", a)  # 1-cycle
        b1 = heap.new_instance("Box")
        b2 = heap.new_instance("Box")
        b1.set("inner", b2)
        b2.set("inner", b1)  # 2-cycle
        assert not graphs_equivalent(a, b1)


class TestOperationTiming:
    def make(self, elapsed=1000.0, graph=64_000):
        return OperationTiming(
            kind="serialize",
            elapsed_ns=elapsed,
            graph_bytes=graph,
            stream_bytes=graph // 2,
            dram_bytes=graph * 2,
            bandwidth_utilization=0.25,
            objects=10,
        )

    def test_elapsed_seconds(self):
        assert self.make(elapsed=2e9).elapsed_seconds == pytest.approx(2.0)

    def test_throughput(self):
        timing = self.make(elapsed=1000.0, graph=64_000)
        assert timing.throughput_bytes_per_sec == pytest.approx(64e9)

    def test_zero_elapsed_throughput(self):
        assert self.make(elapsed=0.0).throughput_bytes_per_sec == 0.0


class TestHeapWalk:
    def test_allocation_order_preserved(self, heap):
        first = heap.new_instance("Tag")
        second = heap.new_instance("Box")
        third = heap.new_array(FieldKind.DOUBLE, 1)
        walked = list(heap.objects())
        assert walked == [first, second, third]

    def test_register_object_duplicate_rejected(self, heap):
        from repro.common.errors import HeapError

        obj = heap.new_instance("Tag")
        with pytest.raises(HeapError):
            heap.register_object(obj.address, obj.klass)

    def test_used_bytes_monotone(self, heap):
        before = heap.used_bytes
        heap.new_instance("Tag")
        assert heap.used_bytes > before
