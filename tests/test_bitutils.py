"""Tests for repro.common.bitutils, including property-based round trips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.bitutils import (
    align_down,
    align_up,
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    chunks,
    concat_bits,
    int_to_bits,
    iter_bit_runs,
    popcount,
    significant_bits,
)


class TestSignificantBits:
    def test_zero_needs_one_bit(self):
        assert significant_bits(0) == 1

    def test_one(self):
        assert significant_bits(1) == 1

    def test_powers_of_two(self):
        assert significant_bits(2) == 2
        assert significant_bits(255) == 8
        assert significant_bits(256) == 9

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            significant_bits(-1)


class TestIntBitsRoundTrip:
    @given(st.integers(min_value=0, max_value=2**48 - 1))
    def test_round_trip(self, value):
        width = significant_bits(value)
        assert bits_to_int(int_to_bits(value, width)) == value

    @given(st.integers(min_value=0, max_value=2**20), st.integers(1, 8))
    def test_round_trip_with_padding(self, value, extra):
        width = significant_bits(value) + extra
        bits = int_to_bits(value, width)
        assert len(bits) == width
        assert bits_to_int(bits) == value

    def test_width_too_small_rejected(self):
        with pytest.raises(ValueError):
            int_to_bits(256, 8)

    def test_bad_bit_rejected(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2, 1])


class TestBytesBitsRoundTrip:
    @given(st.lists(st.integers(0, 1), min_size=0, max_size=200))
    def test_round_trip(self, bits):
        packed = bits_to_bytes(bits)
        assert bytes_to_bits(packed, bit_count=len(bits)) == bits

    def test_msb_first(self):
        assert bits_to_bytes([1, 0, 0, 0, 0, 0, 0, 0]) == b"\x80"

    def test_tail_zero_padded(self):
        assert bits_to_bytes([1, 1, 1]) == b"\xe0"

    def test_bit_count_too_large_rejected(self):
        with pytest.raises(ValueError):
            bytes_to_bits(b"\x00", bit_count=9)


class TestAlignment:
    @given(st.integers(0, 10**9), st.sampled_from([1, 8, 64, 4096]))
    def test_align_up_properties(self, value, alignment):
        aligned = align_up(value, alignment)
        assert aligned % alignment == 0
        assert 0 <= aligned - value < alignment

    @given(st.integers(0, 10**9), st.sampled_from([1, 8, 64, 4096]))
    def test_align_down_properties(self, value, alignment):
        aligned = align_down(value, alignment)
        assert aligned % alignment == 0
        assert 0 <= value - aligned < alignment

    def test_bad_alignment_rejected(self):
        with pytest.raises(ValueError):
            align_up(5, 0)


class TestMisc:
    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3

    def test_iter_bit_runs(self):
        assert list(iter_bit_runs([1, 1, 0, 0, 0, 1])) == [(1, 2), (0, 3), (1, 1)]

    def test_iter_bit_runs_empty(self):
        assert list(iter_bit_runs([])) == []

    def test_chunks(self):
        assert list(chunks([1, 2, 3, 4, 5], 2)) == [[1, 2], [3, 4], [5]]

    def test_chunks_bad_size(self):
        with pytest.raises(ValueError):
            list(chunks([1], 0))

    def test_concat_bits(self):
        assert concat_bits([[1, 0], [1]]) == [1, 0, 1]
