"""Versioned class registry: fingerprints, headers, and reader resolution.

Round-trips streams written under three successive schema versions of the
same classes into readers running any other version, covering field adds,
removes, and reorders; irreconcilable changes must raise typed errors.
"""

import pytest

from repro.common.errors import SchemaMismatchError, UnknownClassError
from repro.formats import ClassRegistration, KryoSerializer, graphs_equivalent
from repro.formats.secure import (
    VersionedKryo,
    decode_stats,
    read_schema_header,
    resolve_schemas,
    schema_fingerprint,
    secure_deserialize,
    write_schema_header,
)
from repro.formats.streams import StreamReader, StreamWriter
from repro.jvm import (
    FieldDescriptor,
    FieldKind,
    Heap,
    InstanceKlass,
    KlassRegistry,
)
from repro.obs.metrics import MetricsRegistry, set_registry


@pytest.fixture(autouse=True)
def fresh_metrics():
    set_registry(MetricsRegistry())
    yield
    set_registry(MetricsRegistry())


def make_point(fields):
    return InstanceKlass(
        "Point", [FieldDescriptor(name, kind) for name, kind in fields]
    )


#: Three schema versions of the same two classes. v1 -> v2 adds a field
#: and reorders; v2 -> v3 removes two fields.
V1_POINT = (("x", FieldKind.INT), ("y", FieldKind.LONG))
V2_POINT = (("z", FieldKind.DOUBLE), ("x", FieldKind.INT), ("y", FieldKind.LONG))
V3_POINT = (("x", FieldKind.INT),)

VERSIONS = {1: V1_POINT, 2: V2_POINT, 3: V3_POINT}


def make_world(version):
    """(registry, registration, heap) for one schema version."""
    registry = KlassRegistry()
    point = make_point(VERSIONS[version])
    holder = InstanceKlass(
        "Holder",
        [
            FieldDescriptor("tag", FieldKind.LONG),
            FieldDescriptor("point", FieldKind.REFERENCE),
        ],
    )
    registry.register(point)
    registry.register(holder)
    registration = ClassRegistration()
    registration.register(point)
    registration.register(holder)
    return registry, registration, Heap(registry=registry)


def build_graph(heap, version):
    registry = heap.registry
    point = heap.allocate(registry.by_name("Point"))
    point.set("x", 42)
    if version in (1, 2):
        point.set("y", -7)
    if version == 2:
        point.set("z", 2.5)
    holder = heap.allocate(registry.by_name("Holder"))
    holder.set("tag", 1000)
    holder.set("point", point)
    return holder


class TestFingerprints:
    def test_stable_across_equal_definitions(self):
        assert schema_fingerprint(make_point(V1_POINT)) == schema_fingerprint(
            make_point(V1_POINT)
        )

    def test_sensitive_to_field_set_order_and_kind(self):
        base = schema_fingerprint(make_point(V1_POINT))
        added = schema_fingerprint(make_point(V2_POINT))
        reordered = schema_fingerprint(
            make_point((("y", FieldKind.LONG), ("x", FieldKind.INT)))
        )
        retyped = schema_fingerprint(
            make_point((("x", FieldKind.DOUBLE), ("y", FieldKind.LONG)))
        )
        assert len({base, added, reordered, retyped}) == 4


class TestSchemaHeader:
    def test_header_roundtrip(self):
        _, registration, _ = make_world(2)
        writer = StreamWriter()
        write_schema_header(writer, registration)
        parsed = read_schema_header(StreamReader(writer.getvalue()))
        assert [s.name for s in parsed] == ["Point", "Holder"]
        assert parsed[0].fields == V2_POINT
        assert parsed[0].fingerprint == schema_fingerprint(make_point(V2_POINT))

    def test_resolution_flags_identity(self):
        _, registration, _ = make_world(1)
        writer = StreamWriter()
        write_schema_header(writer, registration)
        parsed = read_schema_header(StreamReader(writer.getvalue()))
        resolutions = resolve_schemas(parsed, registration)
        assert all(r.identical for r in resolutions)


class TestEvolutionRoundtrip:
    @pytest.mark.parametrize("writer_version", [1, 2, 3])
    @pytest.mark.parametrize("reader_version", [1, 2, 3])
    def test_all_version_pairs_decode(self, writer_version, reader_version):
        """Streams from every writer version decode under every reader.

        Shared fields survive with their values; reader-added fields come
        back as zero defaults; writer-only fields are dropped.
        """
        _, writer_reg, writer_heap = make_world(writer_version)
        holder = build_graph(writer_heap, writer_version)
        stream = VersionedKryo(registration=writer_reg).serialize(holder).stream

        reader_registry, reader_reg, reader_heap = make_world(reader_version)
        codec = VersionedKryo(registration=reader_reg)
        result = secure_deserialize(codec, stream, reader_heap)
        rebuilt = result.root
        assert rebuilt.get("tag") == 1000
        point = rebuilt.get("point")
        assert point.get("x") == 42
        if reader_version in (1, 2):
            expected_y = -7 if writer_version in (1, 2) else 0
            assert point.get("y") == expected_y
        if reader_version == 2:
            expected_z = 2.5 if writer_version == 2 else 0.0
            assert point.get("z") == expected_z

        stats = decode_stats()
        assert stats["accepted"] == 1
        outcome = "identity" if writer_version == reader_version else "evolved"
        assert stats["schema_resolutions"] == {outcome: 1}

    def test_identity_path_matches_plain_kryo(self):
        """Same-version versioned decode equals the unversioned decode."""
        registry, registration, heap = make_world(2)
        holder = build_graph(heap, 2)
        versioned_stream = (
            VersionedKryo(registration=registration).serialize(holder).stream
        )
        plain_stream = KryoSerializer(registration).serialize(holder).stream
        # The versioned stream is the plain payload behind the header.
        assert versioned_stream.data.endswith(plain_stream.data)

        reader_registry, reader_reg, reader_heap = make_world(2)
        rebuilt = (
            VersionedKryo(registration=reader_reg)
            .deserialize(versioned_stream, reader_heap)
            .root
        )
        plain_heap = Heap(registry=reader_registry)
        plain = KryoSerializer(reader_reg).deserialize(plain_stream, plain_heap).root
        assert graphs_equivalent(rebuilt, plain)

    def test_writer_only_reference_subtree_is_dropped(self):
        """A reference field the reader removed still parses correctly."""
        registry = KlassRegistry()
        extra = InstanceKlass("Extra", [FieldDescriptor("n", FieldKind.LONG)])
        pair = InstanceKlass(
            "Pair",
            [
                FieldDescriptor("keep", FieldKind.LONG),
                FieldDescriptor("extra", FieldKind.REFERENCE),
            ],
        )
        registry.register(extra)
        registry.register(pair)
        writer_reg = ClassRegistration()
        writer_reg.register(extra)
        writer_reg.register(pair)
        heap = Heap(registry=registry)
        child = heap.allocate(extra)
        child.set("n", 5)
        root = heap.allocate(pair)
        root.set("keep", 77)
        root.set("extra", child)
        stream = VersionedKryo(registration=writer_reg).serialize(root).stream

        # Reader dropped the reference field but still knows both classes.
        reader_registry = KlassRegistry()
        reader_extra = InstanceKlass("Extra", [FieldDescriptor("n", FieldKind.LONG)])
        reader_pair = InstanceKlass(
            "Pair", [FieldDescriptor("keep", FieldKind.LONG)]
        )
        reader_registry.register(reader_extra)
        reader_registry.register(reader_pair)
        reader_reg = ClassRegistration()
        reader_reg.register(reader_extra)
        reader_reg.register(reader_pair)
        reader_heap = Heap(registry=reader_registry)
        rebuilt = (
            VersionedKryo(registration=reader_reg)
            .deserialize(stream, reader_heap)
            .root
        )
        assert rebuilt.get("keep") == 77


class TestEvolutionErrors:
    def test_kind_change_rejected(self):
        _, writer_reg, writer_heap = make_world(1)
        stream = (
            VersionedKryo(registration=writer_reg)
            .serialize(build_graph(writer_heap, 1))
            .stream
        )
        bad_registry = KlassRegistry()
        bad_point = make_point((("x", FieldKind.DOUBLE), ("y", FieldKind.LONG)))
        bad_holder = InstanceKlass(
            "Holder",
            [
                FieldDescriptor("tag", FieldKind.LONG),
                FieldDescriptor("point", FieldKind.REFERENCE),
            ],
        )
        bad_registry.register(bad_point)
        bad_registry.register(bad_holder)
        bad_reg = ClassRegistration()
        bad_reg.register(bad_point)
        bad_reg.register(bad_holder)
        codec = VersionedKryo(registration=bad_reg)
        with pytest.raises(SchemaMismatchError, match="changed kind"):
            secure_deserialize(codec, stream, Heap(registry=bad_registry))

    def test_unknown_writer_class_rejected(self):
        _, writer_reg, writer_heap = make_world(1)
        stream = (
            VersionedKryo(registration=writer_reg)
            .serialize(build_graph(writer_heap, 1))
            .stream
        )
        empty_registry = KlassRegistry()
        codec = VersionedKryo(registration=ClassRegistration())
        with pytest.raises(UnknownClassError):
            secure_deserialize(codec, stream, Heap(registry=empty_registry))

    def test_rejection_counted_as_schema_reason(self):
        set_registry(MetricsRegistry())
        _, writer_reg, writer_heap = make_world(1)
        stream = (
            VersionedKryo(registration=writer_reg)
            .serialize(build_graph(writer_heap, 1))
            .stream
        )
        bad_registry = KlassRegistry()
        bad_point = make_point((("x", FieldKind.DOUBLE),))
        bad_holder = InstanceKlass(
            "Holder", [FieldDescriptor("tag", FieldKind.LONG)]
        )
        bad_registry.register(bad_point)
        bad_registry.register(bad_holder)
        bad_reg = ClassRegistration()
        bad_reg.register(bad_point)
        bad_reg.register(bad_holder)
        codec = VersionedKryo(registration=bad_reg)
        heap = Heap(registry=bad_registry)
        token = heap.checkpoint()
        with pytest.raises(SchemaMismatchError):
            secure_deserialize(codec, stream, heap)
        after = heap.checkpoint()
        assert (after.alloc_ptr, after.alloc_count) == (
            token.alloc_ptr,
            token.alloc_count,
        )
        assert decode_stats()["rejected_by_reason"] == {"schema": 1}
