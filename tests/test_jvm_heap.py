"""Tests for the simulated JVM: mark word, klasses, heap, objects."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import HeapError
from repro.jvm import (
    ArrayKlass,
    FieldDescriptor,
    FieldKind,
    Heap,
    InstanceKlass,
    KlassRegistry,
    MarkWord,
)
from repro.jvm.markword import identity_hash_for


def make_point_klass():
    return InstanceKlass(
        "Point",
        [
            FieldDescriptor("x", FieldKind.DOUBLE),
            FieldDescriptor("y", FieldKind.DOUBLE),
        ],
    )


def make_node_klass():
    return InstanceKlass(
        "Node",
        [
            FieldDescriptor("value", FieldKind.LONG),
            FieldDescriptor("next", FieldKind.REFERENCE),
        ],
    )


class TestMarkWord:
    @given(
        st.integers(0, 2**31 - 1),
        st.integers(0, 7),
        st.integers(0, 63),
    )
    def test_encode_decode_round_trip(self, hash_value, sync, gc):
        word = MarkWord(hash_value, sync, gc)
        assert MarkWord.decode(word.encode()) == word

    def test_out_of_range_hash_rejected(self):
        with pytest.raises(HeapError):
            MarkWord(identity_hash=2**31)

    def test_identity_hash_deterministic(self):
        assert identity_hash_for(0x1000) == identity_hash_for(0x1000)

    def test_identity_hash_31_bits(self):
        for address in (0, 0x1000, 0xFFFF_FFFF_0000):
            assert 0 <= identity_hash_for(address) < 2**31


class TestKlass:
    def test_instance_klass_layout(self):
        klass = make_node_klass()
        assert klass.instance_slots() == 2
        assert klass.reference_slot_indices() == [1]

    def test_field_index_lookup(self):
        klass = make_node_klass()
        assert klass.field_index("value") == 0
        assert klass.field_index("next") == 1
        with pytest.raises(HeapError):
            klass.field_index("missing")

    def test_duplicate_field_rejected(self):
        with pytest.raises(HeapError):
            InstanceKlass(
                "Bad",
                [
                    FieldDescriptor("a", FieldKind.INT),
                    FieldDescriptor("a", FieldKind.INT),
                ],
            )

    def test_array_klass_layout(self):
        ref_array = ArrayKlass(FieldKind.REFERENCE)
        assert ref_array.instance_slots(3) == 4  # length slot + 3 elements
        assert ref_array.reference_slot_indices(3) == [1, 2, 3]
        long_array = ArrayKlass(FieldKind.LONG)
        assert long_array.reference_slot_indices(3) == []

    def test_registry_assigns_unique_addresses(self):
        registry = KlassRegistry()
        a = registry.register(make_point_klass())
        b = registry.register(make_node_klass())
        assert a.metaspace_address != b.metaspace_address
        assert registry.resolve(a.metaspace_address) is a

    def test_registry_rejects_duplicate_name(self):
        registry = KlassRegistry()
        registry.register(make_point_klass())
        with pytest.raises(HeapError):
            registry.register(make_point_klass())

    def test_registry_array_klass_canonical(self):
        registry = KlassRegistry()
        a = registry.array_klass(FieldKind.LONG)
        b = registry.array_klass(FieldKind.LONG)
        assert a is b

    def test_resolve_unknown_address(self):
        registry = KlassRegistry()
        with pytest.raises(HeapError):
            registry.resolve(0x1234)


class TestHeapAllocation:
    def test_header_size_with_extension(self):
        heap = Heap(cereal_extension=True)
        assert heap.header_bytes == 24
        assert Heap(cereal_extension=False).header_bytes == 16

    def test_allocate_sets_header(self):
        heap = Heap()
        klass = heap.registry.register(make_point_klass())
        obj = heap.allocate(klass)
        assert obj.klass_pointer == klass.metaspace_address
        assert obj.identity_hash == identity_hash_for(obj.address)

    def test_object_size(self):
        heap = Heap()
        obj = heap.allocate(make_point_klass())
        assert obj.size_bytes == 24 + 2 * 8

    def test_allocations_do_not_overlap(self):
        heap = Heap()
        klass = heap.registry.register(make_point_klass())
        a = heap.allocate(klass)
        b = heap.allocate(klass)
        assert b.address >= a.address + a.size_bytes

    def test_array_allocation_stores_length(self):
        heap = Heap()
        arr = heap.new_array(FieldKind.LONG, 5)
        assert arr.length == 5
        assert heap.memory.read_u64(arr.fields_base) == 5
        assert arr.size_bytes == 24 + (1 + 5) * 8

    def test_length_on_instance_rejected(self):
        heap = Heap()
        with pytest.raises(HeapError):
            heap.allocate(make_point_klass(), length=3)

    def test_heap_exhaustion(self):
        heap = Heap(size_bytes=1024)
        klass = heap.registry.register(make_point_klass())
        with pytest.raises(HeapError):
            for _ in range(1000):
                heap.allocate(klass)

    def test_object_at_and_deref(self):
        heap = Heap()
        obj = heap.allocate(make_point_klass())
        assert heap.object_at(obj.address) == obj
        assert heap.deref(0) is None
        with pytest.raises(HeapError):
            heap.object_at(0xDEAD)


class TestFieldAccess:
    def test_primitive_round_trip(self):
        heap = Heap()
        obj = heap.allocate(make_point_klass())
        obj.set("x", 1.5)
        obj.set("y", -2.5)
        assert obj.get("x") == 1.5
        assert obj.get("y") == -2.5

    def test_long_negative(self):
        heap = Heap()
        obj = heap.allocate(make_node_klass())
        obj.set("value", -(2**40))
        assert obj.get("value") == -(2**40)

    def test_reference_round_trip(self):
        heap = Heap()
        klass = heap.registry.register(make_node_klass())
        a = heap.allocate(klass)
        b = heap.allocate(klass)
        a.set("next", b)
        assert a.get("next") == b
        a.set("next", None)
        assert a.get("next") is None

    def test_boolean_and_char(self):
        klass = InstanceKlass(
            "Flags",
            [
                FieldDescriptor("flag", FieldKind.BOOLEAN),
                FieldDescriptor("letter", FieldKind.CHAR),
            ],
        )
        heap = Heap()
        obj = heap.allocate(klass)
        obj.set("flag", True)
        obj.set("letter", ord("Z"))
        assert obj.get("flag") is True
        assert obj.get("letter") == ord("Z")

    def test_reference_slot_type_checked(self):
        heap = Heap()
        obj = heap.allocate(make_node_klass())
        with pytest.raises(HeapError):
            obj.set("next", 42)

    def test_array_elements(self):
        heap = Heap()
        arr = heap.new_array(FieldKind.LONG, 4)
        for i in range(4):
            arr.set_element(i, i * 100)
        assert [arr.get_element(i) for i in range(4)] == [0, 100, 200, 300]

    def test_array_bounds_checked(self):
        heap = Heap()
        arr = heap.new_array(FieldKind.LONG, 2)
        with pytest.raises(HeapError):
            arr.get_element(2)
        with pytest.raises(HeapError):
            arr.set_element(-1, 0)

    def test_reference_array(self):
        heap = Heap()
        node_klass = heap.registry.register(make_node_klass())
        arr = heap.new_array(FieldKind.REFERENCE, 3)
        node = heap.allocate(node_klass)
        arr.set_element(1, node)
        assert arr.get_element(0) is None
        assert arr.get_element(1) == node
        assert arr.referenced_objects() == [None, node, None]


class TestLayoutBitmap:
    def test_instance_bitmap(self):
        heap = Heap()  # 24 B header -> 3 header slots
        obj = heap.allocate(make_node_klass())
        # header(3 slots, zeros) + value + reference
        assert obj.layout_bitmap() == [0, 0, 0, 0, 1]

    def test_bitmap_length_encodes_size(self):
        heap = Heap()
        obj = heap.allocate(make_node_klass())
        assert len(obj.layout_bitmap()) * 8 == obj.size_bytes

    def test_reference_array_bitmap(self):
        heap = Heap()
        arr = heap.new_array(FieldKind.REFERENCE, 2)
        # header(3) + length slot(0) + two reference slots(1, 1)
        assert arr.layout_bitmap() == [0, 0, 0, 0, 1, 1]

    def test_primitive_array_bitmap_all_zero(self):
        heap = Heap()
        arr = heap.new_array(FieldKind.DOUBLE, 3)
        assert arr.layout_bitmap() == [0] * 7

    def test_no_extension_bitmap(self):
        heap = Heap(cereal_extension=False)
        obj = heap.allocate(make_node_klass())
        assert obj.layout_bitmap() == [0, 0, 0, 1]


class TestCerealHeaderExtension:
    def test_counter_round_trip(self):
        heap = Heap()
        obj = heap.allocate(make_point_klass())
        obj.serialization_counter = 0x1234
        assert obj.serialization_counter == 0x1234

    def test_unit_id_and_relative_address_independent(self):
        heap = Heap()
        obj = heap.allocate(make_point_klass())
        obj.serialization_counter = 7
        obj.serialization_unit_id = 3
        obj.serialized_relative_address = 0xABCD_EF01
        assert obj.serialization_counter == 7
        assert obj.serialization_unit_id == 3
        assert obj.serialized_relative_address == 0xABCD_EF01

    def test_counter_overflow_rejected(self):
        heap = Heap()
        obj = heap.allocate(make_point_klass())
        with pytest.raises(HeapError):
            obj.serialization_counter = 0x1_0000

    def test_clear_metadata(self):
        heap = Heap()
        obj = heap.allocate(make_point_klass())
        obj.serialization_counter = 9
        obj.clear_serialization_metadata()
        assert obj.serialization_counter == 0

    def test_extension_unavailable_without_flag(self):
        heap = Heap(cereal_extension=False)
        obj = heap.allocate(make_point_klass())
        with pytest.raises(HeapError):
            _ = obj.serialization_counter
