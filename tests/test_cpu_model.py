"""Tests for the CPU cost model: caches, core model, harness."""

import pytest

from repro.common.config import HostCPUConfig, SystemConfig
from repro.cpu import CacheHierarchy, CPUCostModel, SoftwarePlatform
from repro.cpu.cache import CacheStats
from repro.formats import KryoSerializer
from repro.formats.base import WorkProfile
from repro.jvm import Heap
from repro.memory.trace import AccessKind, MemoryAccess
from tests.test_serializers import build_tree, make_registry, make_serializer


def reads(addresses, length=8):
    return [MemoryAccess(AccessKind.READ, a, length) for a in addresses]


class TestCacheHierarchy:
    def test_repeat_access_hits_l1(self):
        cache = CacheHierarchy()
        cache.replay(reads([0x100, 0x100, 0x100]))
        assert cache.stats.l1_hits == 2
        assert cache.stats.dram_accesses == 1

    def test_l1_capacity_spill_to_l2(self):
        host = HostCPUConfig()
        cache = CacheHierarchy(host)
        lines = host.l1.size_bytes // 64 * 2  # twice L1 capacity
        addresses = [i * 64 for i in range(lines)]
        cache.replay(reads(addresses))
        cache.replay(reads(addresses))  # second pass: L1 misses, L2 hits
        assert cache.stats.l2_hits > 0

    def test_sequential_misses_classified_prefetchable(self):
        cache = CacheHierarchy()
        cache.replay(reads([i * 64 for i in range(100)]))
        assert cache.stats.sequential_misses > 90
        assert cache.stats.random_misses <= 10

    def test_random_misses_classified_random(self):
        cache = CacheHierarchy()
        addresses = [(i * 7919 * 64) % (1 << 30) for i in range(200)]
        cache.replay(reads(addresses))
        assert cache.stats.random_misses > cache.stats.sequential_misses

    def test_write_misses_counted_with_writeback(self):
        cache = CacheHierarchy()
        cache.replay([MemoryAccess(AccessKind.WRITE, i * 64, 64) for i in range(10)])
        assert cache.stats.write_misses == 10
        assert cache.stats.dram_bytes() == 10 * 2 * 64  # fill + writeback

    def test_llc_miss_rate_bounds(self):
        cache = CacheHierarchy()
        cache.replay(reads([i * 64 for i in range(50)]))
        assert 0.0 <= cache.stats.llc_miss_rate <= 1.0


class TestCoreModel:
    def make_stats(self, random_misses=0, sequential=0, l2=0, l3=0):
        stats = CacheStats()
        stats.random_misses = random_misses
        stats.sequential_misses = sequential
        stats.dram_accesses = random_misses + sequential
        stats.l2_hits = l2
        stats.l3_hits = l3
        stats.accesses = stats.dram_accesses + l2 + l3
        return stats

    def test_compute_bound_when_no_misses(self):
        model = CPUCostModel()
        profile = WorkProfile(instructions=170_000)
        result = model.estimate(profile, self.make_stats())
        assert result.ipc == pytest.approx(model.host.base_ipc, rel=0.01)

    def test_random_misses_add_serialized_stalls(self):
        model = CPUCostModel()
        profile = WorkProfile(instructions=1000, mlp=1.0)
        with_misses = model.estimate(profile, self.make_stats(random_misses=100))
        without = model.estimate(profile, self.make_stats())
        stall = with_misses.cycles - without.cycles
        expected = 100 * model.dram.zero_load_latency_ns * model.host.clock_ghz
        assert stall == pytest.approx(expected, rel=0.01)

    def test_higher_mlp_reduces_stalls(self):
        model = CPUCostModel()
        low = model.estimate(
            WorkProfile(instructions=1000, mlp=1.0), self.make_stats(random_misses=50)
        )
        high = model.estimate(
            WorkProfile(instructions=1000, mlp=4.0), self.make_stats(random_misses=50)
        )
        assert high.cycles < low.cycles

    def test_mlp_clamped_to_mshr_limit(self):
        model = CPUCostModel()
        result = model.estimate(
            WorkProfile(instructions=10, mlp=1000.0), self.make_stats(random_misses=10)
        )
        assert result.effective_mlp == model.host.max_outstanding_misses

    def test_sequential_misses_bandwidth_bound(self):
        model = CPUCostModel()
        seq = model.estimate(
            WorkProfile(instructions=10, mlp=1.0), self.make_stats(sequential=1000)
        )
        rnd = model.estimate(
            WorkProfile(instructions=10, mlp=1.0), self.make_stats(random_misses=1000)
        )
        assert seq.cycles < rnd.cycles  # prefetched streams are cheaper

    def test_bandwidth_utilization_bounded(self):
        model = CPUCostModel()
        result = model.estimate(
            WorkProfile(instructions=100, mlp=10.0),
            self.make_stats(sequential=10_000),
        )
        assert 0.0 < result.bandwidth_utilization <= 1.0


class TestSoftwarePlatform:
    @pytest.fixture
    def registry(self):
        return make_registry()

    def test_java_slower_than_kryo(self, registry):
        platform = SoftwarePlatform()
        heap = Heap(registry=registry)
        receiver = Heap(registry=registry)
        root = build_tree(heap, depth=8)
        java_ser, java_de = platform.round_trip_timings(
            make_serializer("java", registry), root, receiver
        )
        heap2 = Heap(registry=registry)
        receiver2 = Heap(registry=registry)
        root2 = build_tree(heap2, depth=8)
        kryo_ser, kryo_de = platform.round_trip_timings(
            make_serializer("kryo", registry), root2, receiver2
        )
        assert java_ser.time_ns > kryo_ser.time_ns
        assert java_de.time_ns > kryo_de.time_ns

    def test_paper_ratio_shapes_hold(self, registry):
        """Figure 10 shape on a scaled tree: Kryo ~2-3x ser, tens-of-x deser."""
        host = HostCPUConfig().scaled_caches(100)
        platform = SoftwarePlatform(SystemConfig(host=host))
        heap = Heap(registry=registry)
        receiver = Heap(registry=registry)
        root = build_tree(heap, depth=10)
        j_ser, j_de = platform.round_trip_timings(
            make_serializer("java", registry), root, receiver
        )
        heap2 = Heap(registry=registry)
        receiver2 = Heap(registry=registry)
        root2 = build_tree(heap2, depth=10)
        k_ser, k_de = platform.round_trip_timings(
            make_serializer("kryo", registry), root2, receiver2
        )
        assert 1.5 < j_ser.time_ns / k_ser.time_ns < 4.0
        assert 20 < j_de.time_ns / k_de.time_ns < 100

    def test_ipc_is_low_for_serialization(self, registry):
        """Figure 3a: S/D code runs at IPC around 1 on the 4-wide host."""
        platform = SoftwarePlatform()
        heap = Heap(registry=registry)
        root = build_tree(heap, depth=8)
        _, run = platform.run_serialize(make_serializer("java", registry), root)
        assert run.timing.ipc < 2.0

    def test_bandwidth_utilization_single_digit(self, registry):
        """Figure 3c: software serializers use a tiny bandwidth fraction."""
        platform = SoftwarePlatform()
        heap = Heap(registry=registry)
        root = build_tree(heap, depth=8)
        _, run = platform.run_serialize(make_serializer("java", registry), root)
        assert run.timing.bandwidth_utilization < 0.10

    def test_trace_restored_after_run(self, registry):
        platform = SoftwarePlatform()
        heap = Heap(registry=registry)
        root = build_tree(heap, depth=3)
        assert heap.memory.trace is None
        platform.run_serialize(make_serializer("java", registry), root)
        assert heap.memory.trace is None

    def test_functional_result_still_correct(self, registry):
        platform = SoftwarePlatform()
        heap = Heap(registry=registry)
        receiver = Heap(registry=registry)
        root = build_tree(heap, depth=4)
        serializer = make_serializer("kryo", registry)
        result, _ = platform.run_serialize(serializer, root)
        deser, _ = platform.run_deserialize(serializer, result.stream, receiver)
        from repro.formats import graphs_equivalent

        assert graphs_equivalent(root, deser.root)
