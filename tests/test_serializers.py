"""Round-trip and format tests for all four serializers.

Every serializer must reconstruct a structurally equivalent graph for every
shape: flat objects, nested trees, shared objects, cycles, nulls, primitive
and reference arrays, and deep lists.
"""

import pytest

from repro.common.errors import FormatError, RegistrationError
from repro.formats import (
    CerealSerializer,
    ClassRegistration,
    JavaSerializer,
    KryoSerializer,
    SerializedStream,
    SkywaySerializer,
    graphs_equivalent,
)
from repro.formats.verify import first_difference
from repro.jvm import (
    FieldDescriptor,
    FieldKind,
    Heap,
    InstanceKlass,
    KlassRegistry,
    ObjectGraph,
)


def make_registry():
    registry = KlassRegistry()
    registry.register(
        InstanceKlass(
            "Point",
            [
                FieldDescriptor("x", FieldKind.DOUBLE),
                FieldDescriptor("y", FieldKind.DOUBLE),
            ],
        )
    )
    registry.register(
        InstanceKlass(
            "Node",
            [
                FieldDescriptor("value", FieldKind.LONG),
                FieldDescriptor("left", FieldKind.REFERENCE),
                FieldDescriptor("right", FieldKind.REFERENCE),
            ],
        )
    )
    registry.register(
        InstanceKlass(
            "Mixed",
            [
                FieldDescriptor("flag", FieldKind.BOOLEAN),
                FieldDescriptor("small", FieldKind.INT),
                FieldDescriptor("big", FieldKind.LONG),
                FieldDescriptor("ratio", FieldKind.DOUBLE),
                FieldDescriptor("letter", FieldKind.CHAR),
                FieldDescriptor("child", FieldKind.REFERENCE),
            ],
        )
    )
    registry.array_klass(FieldKind.LONG)
    registry.array_klass(FieldKind.REFERENCE)
    registry.array_klass(FieldKind.DOUBLE)
    return registry


def make_serializer(kind, registry):
    """Build a serializer of ``kind`` with all registry classes registered."""
    if kind == "java":
        return JavaSerializer()
    registration = ClassRegistration()
    for klass in registry:
        registration.register(klass)
    if kind == "kryo":
        return KryoSerializer(registration)
    if kind == "skyway":
        return SkywaySerializer(registration)
    if kind == "cereal":
        return CerealSerializer(registration)
    raise ValueError(kind)


SERIALIZER_KINDS = ["java", "kryo", "skyway", "cereal"]


@pytest.fixture
def registry():
    return make_registry()


@pytest.fixture
def heaps(registry):
    """(sender, receiver) heap pair sharing one klass registry."""
    return Heap(registry=registry), Heap(registry=registry)


def build_flat(heap):
    obj = heap.new_instance("Point")
    obj.set("x", 1.25)
    obj.set("y", -9.5)
    return obj


def build_tree(heap, depth=4):
    def node(level):
        obj = heap.new_instance("Node")
        obj.set("value", level)
        if level < depth:
            obj.set("left", node(level + 1))
            obj.set("right", node(level + 1))
        return obj

    return node(0)


def build_shared(heap):
    root = heap.new_instance("Node")
    shared = heap.new_instance("Node")
    shared.set("value", 42)
    root.set("left", shared)
    root.set("right", shared)
    return root


def build_cycle(heap):
    a = heap.new_instance("Node")
    b = heap.new_instance("Node")
    a.set("value", 1)
    b.set("value", 2)
    a.set("left", b)
    b.set("left", a)
    return a


def build_mixed(heap):
    root = heap.new_instance("Mixed")
    root.set("flag", True)
    root.set("small", -12345)
    root.set("big", 2**50)
    root.set("ratio", 2.718281828)
    root.set("letter", ord("Q"))
    child = heap.new_instance("Point")
    child.set("x", 0.5)
    root.set("child", child)
    return root


def build_primitive_array(heap):
    arr = heap.new_array(FieldKind.LONG, 16)
    for i in range(16):
        arr.set_element(i, i * i - 8)
    return arr


def build_reference_array(heap):
    arr = heap.new_array(FieldKind.REFERENCE, 5)
    for i in (0, 2, 4):
        point = heap.new_instance("Point")
        point.set("x", float(i))
        arr.set_element(i, point)
    return arr


def build_deep_list(heap, n=3000):
    head = heap.new_instance("Node")
    current = head
    for i in range(n):
        nxt = heap.new_instance("Node")
        nxt.set("value", i)
        current.set("left", nxt)
        current = nxt
    return head


GRAPH_BUILDERS = {
    "flat": build_flat,
    "tree": build_tree,
    "shared": build_shared,
    "cycle": build_cycle,
    "mixed": build_mixed,
    "primitive_array": build_primitive_array,
    "reference_array": build_reference_array,
}


@pytest.mark.parametrize("serializer_kind", SERIALIZER_KINDS)
@pytest.mark.parametrize("shape", sorted(GRAPH_BUILDERS))
def test_round_trip(serializer_kind, shape, registry, heaps):
    sender, receiver = heaps
    serializer = make_serializer(serializer_kind, registry)
    root = GRAPH_BUILDERS[shape](sender)
    result = serializer.serialize(root)
    rebuilt = serializer.deserialize(result.stream, receiver).root
    assert first_difference(root, rebuilt) is None


@pytest.mark.parametrize("serializer_kind", SERIALIZER_KINDS)
def test_deep_list_round_trip(serializer_kind, registry, heaps):
    sender, receiver = heaps
    serializer = make_serializer(serializer_kind, registry)
    root = build_deep_list(sender)
    rebuilt = serializer.round_trip(root, receiver)
    assert ObjectGraph.from_root(rebuilt).object_count == 3001


@pytest.mark.parametrize("serializer_kind", SERIALIZER_KINDS)
def test_sections_sum_to_stream_size(serializer_kind, registry, heaps):
    sender, _ = heaps
    serializer = make_serializer(serializer_kind, registry)
    result = serializer.serialize(build_tree(sender))
    result.stream.check_sections()  # raises on mismatch


@pytest.mark.parametrize("serializer_kind", SERIALIZER_KINDS)
def test_work_profile_populated(serializer_kind, registry, heaps):
    sender, receiver = heaps
    serializer = make_serializer(serializer_kind, registry)
    result = serializer.serialize(build_tree(sender))
    assert result.profile.objects == 31  # full binary tree of depth 4
    assert result.profile.instructions > 0
    assert result.profile.bytes_written == result.stream.size_bytes
    deser = serializer.deserialize(result.stream, receiver)
    assert deser.profile.objects == 31
    assert deser.profile.allocations == 31


class TestSizeRelationships:
    """The paper's qualitative size ordering must hold (Section VI-B)."""

    def test_kryo_smaller_than_java(self, registry, heaps):
        sender, _ = heaps
        root = build_tree(sender, depth=6)
        java = make_serializer("java", registry).serialize(root).stream
        kryo = make_serializer("kryo", registry).serialize(root).stream
        assert kryo.size_bytes < java.size_bytes

    def test_skyway_larger_than_kryo(self, registry, heaps):
        sender, _ = heaps
        root = build_tree(sender, depth=6)
        kryo = make_serializer("kryo", registry).serialize(root).stream
        skyway = make_serializer("skyway", registry).serialize(root).stream
        assert skyway.size_bytes > kryo.size_bytes

    def test_cereal_packing_beats_skyway(self, registry, heaps):
        sender, _ = heaps
        root = build_tree(sender, depth=6)
        skyway = make_serializer("skyway", registry).serialize(root).stream
        cereal = make_serializer("cereal", registry).serialize(root).stream
        assert cereal.size_bytes < skyway.size_bytes

    def test_java_metadata_heavy_for_small_graphs(self, registry, heaps):
        sender, _ = heaps
        root = build_flat(sender)
        java = make_serializer("java", registry).serialize(root).stream
        type_fraction = java.section_fraction("type_strings")
        assert type_fraction > 0.2  # names dominate tiny payloads


class TestJavaSerializerDetails:
    def test_magic_header(self, registry, heaps):
        sender, _ = heaps
        stream = make_serializer("java", registry).serialize(build_flat(sender)).stream
        assert stream.data[:2] == (0xACED).to_bytes(2, "little")

    def test_bad_magic_rejected(self, registry, heaps):
        sender, receiver = heaps
        serializer = make_serializer("java", registry)
        stream = serializer.serialize(build_flat(sender)).stream
        corrupted = SerializedStream(
            format_name=stream.format_name,
            data=b"\x00\x00" + stream.data[2:],
            sections=stream.sections,
        )
        with pytest.raises(FormatError):
            serializer.deserialize(corrupted, receiver)

    def test_class_metadata_written_once(self, registry, heaps):
        sender, _ = heaps
        serializer = make_serializer("java", registry)
        small = serializer.serialize(build_tree(sender, depth=2)).stream
        big = serializer.serialize(build_tree(sender, depth=3)).stream
        # Type strings are per-class, not per-object.
        assert small.sections["type_strings"] == big.sections["type_strings"]


class TestKryoDetails:
    def test_unregistered_class_rejected(self, registry, heaps):
        sender, _ = heaps
        serializer = KryoSerializer(ClassRegistration())
        with pytest.raises(RegistrationError):
            serializer.serialize(build_flat(sender))

    def test_same_registry_required_for_deserialize(self, registry, heaps):
        sender, receiver = heaps
        serializer = make_serializer("kryo", registry)
        stream = serializer.serialize(build_flat(sender)).stream
        other = KryoSerializer(ClassRegistration())
        with pytest.raises(RegistrationError):
            other.deserialize(stream, receiver)

    def test_varint_compresses_small_longs(self, registry, heaps):
        sender, _ = heaps
        arr = sender.new_array(FieldKind.LONG, 64)
        for i in range(64):
            arr.set_element(i, i)  # all fit in 1-byte varints
        stream = make_serializer("kryo", registry).serialize(arr).stream
        assert stream.sections["field_data"] < 64 * 8 / 2


class TestSkywayDetails:
    def test_auto_registration(self, registry, heaps):
        sender, receiver = heaps
        registration = ClassRegistration()
        serializer = SkywaySerializer(registration)
        root = build_flat(sender)
        serializer.serialize(root)  # must not raise: auto-registers
        assert registration.is_registered(root.klass)

    def test_stream_carries_whole_objects(self, registry, heaps):
        sender, _ = heaps
        root = build_flat(sender)
        stream = make_serializer("skyway", registry).serialize(root).stream
        # metadata(8) + full object image (headers + 2 slots)
        assert stream.size_bytes == 8 + root.size_bytes

    def test_truncated_stream_rejected(self, registry, heaps):
        sender, receiver = heaps
        serializer = make_serializer("skyway", registry)
        stream = serializer.serialize(build_flat(sender)).stream
        truncated = SerializedStream(
            format_name=stream.format_name, data=stream.data[:-8]
        )
        with pytest.raises(FormatError):
            serializer.deserialize(truncated, receiver)


class TestCerealDetails:
    def test_unregistered_class_rejected(self, registry, heaps):
        sender, _ = heaps
        serializer = CerealSerializer(ClassRegistration(max_entries=4096))
        with pytest.raises(RegistrationError):
            serializer.serialize(build_flat(sender))

    def test_class_table_capacity_enforced(self):
        serializer = CerealSerializer(max_class_types=2)
        serializer.register_class(InstanceKlass("A", []))
        serializer.register_class(InstanceKlass("B", []))
        with pytest.raises(RegistrationError):
            serializer.register_class(InstanceKlass("C", []))

    def test_decode_sections_structure(self, registry, heaps):
        sender, _ = heaps
        serializer = make_serializer("cereal", registry)
        root = build_tree(sender, depth=3)
        stream = serializer.serialize(root).stream
        sections = CerealSerializer.decode_sections(stream)
        graph = ObjectGraph.from_root(root, order="bfs")
        assert sections.object_count == graph.object_count
        assert sections.graph_total_bytes == graph.total_bytes
        assert sections.references.item_count == 2 * graph.object_count  # 2 ref slots each

    def test_values_and_references_decoupled(self, registry, heaps):
        sender, _ = heaps
        serializer = make_serializer("cereal", registry)
        stream = serializer.serialize(build_tree(sender, depth=3)).stream
        assert stream.sections["value_array"] > 0
        assert stream.sections["reference_array"] > 0
        assert stream.sections["layout_bitmap"] > 0

    def test_header_strip_reduces_size_and_round_trips(self, registry, heaps):
        sender, receiver = heaps
        registration = ClassRegistration()
        for klass in registry:
            registration.register(klass)
        plain = CerealSerializer(registration)
        stripped = CerealSerializer(registration, strip_mark_word=True)
        root = build_tree(sender, depth=5)
        plain_stream = plain.serialize(root).stream
        stripped_stream = stripped.serialize(root).stream
        graph = ObjectGraph.from_root(root)
        assert (
            plain_stream.size_bytes - stripped_stream.size_bytes
            == 8 * graph.object_count
        )
        rebuilt = stripped.deserialize(stripped_stream, receiver).root
        assert graphs_equivalent(root, rebuilt)

    def test_truncated_stream_rejected(self, registry, heaps):
        sender, receiver = heaps
        serializer = make_serializer("cereal", registry)
        stream = serializer.serialize(build_flat(sender)).stream
        truncated = SerializedStream(
            format_name=stream.format_name, data=stream.data[:10]
        )
        with pytest.raises(FormatError):
            serializer.deserialize(truncated, receiver)

    def test_bfs_image_order(self, registry, heaps):
        """Cereal lays objects out in BFS order, unlike the DFS software order."""
        sender, receiver = heaps
        root = build_tree(sender, depth=2)  # root, L, LL, LR, R, RL, RR in BFS
        serializer = make_serializer("cereal", registry)
        rebuilt = serializer.round_trip(root, receiver)
        level1 = [rebuilt.get("left"), rebuilt.get("right")]
        # BFS: both depth-1 children precede any depth-2 child in memory.
        depth2 = [level1[0].get("left"), level1[0].get("right")]
        assert max(o.address for o in level1) < min(o.address for o in depth2)


class TestGraphEquivalence:
    def test_detects_value_difference(self, registry, heaps):
        sender, _ = heaps
        a = build_flat(sender)
        b = build_flat(sender)
        b.set("x", 999.0)
        assert not graphs_equivalent(a, b)
        assert "x" in first_difference(a, b)

    def test_detects_sharing_difference(self, registry, heaps):
        sender, _ = heaps
        shared_root = build_shared(sender)
        unshared_root = sender.new_instance("Node")
        left = sender.new_instance("Node")
        right = sender.new_instance("Node")
        left.set("value", 42)
        right.set("value", 42)
        unshared_root.set("left", left)
        unshared_root.set("right", right)
        assert not graphs_equivalent(shared_root, unshared_root)

    def test_detects_null_difference(self, registry, heaps):
        sender, _ = heaps
        a = build_shared(sender)
        b = sender.new_instance("Node")
        assert not graphs_equivalent(a, b)
