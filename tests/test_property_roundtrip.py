"""Property-based round-trip tests over randomly generated object graphs.

Hypothesis drives a small world model: random class shapes (field counts
and kinds), random object populations, random reference wiring (including
nulls, sharing, and cycles), and random primitive values. Every serializer
must reconstruct a structurally equivalent graph, and the Cereal format
must additionally satisfy its structural invariants (bitmap/value/reference
accounting).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.formats import (
    CerealSerializer,
    ClassRegistration,
    JavaSerializer,
    KryoSerializer,
    SkywaySerializer,
)
from repro.formats.cereal_format import CerealSerializer as CS
from repro.formats.verify import first_difference
from repro.jvm import (
    FieldDescriptor,
    FieldKind,
    Heap,
    InstanceKlass,
    KlassRegistry,
    ObjectGraph,
)

_PRIMITIVES = [
    FieldKind.BOOLEAN,
    FieldKind.BYTE,
    FieldKind.CHAR,
    FieldKind.SHORT,
    FieldKind.INT,
    FieldKind.LONG,
    FieldKind.DOUBLE,
]

_VALUE_RANGES = {
    FieldKind.BOOLEAN: (0, 1),
    FieldKind.BYTE: (-128, 127),
    FieldKind.CHAR: (0, 0xFFFF),
    FieldKind.SHORT: (-32768, 32767),
    FieldKind.INT: (-(2**31), 2**31 - 1),
    FieldKind.LONG: (-(2**62), 2**62 - 1),
}


@st.composite
def graph_specs(draw):
    """A random world: classes, objects, values, and reference wiring."""
    class_count = draw(st.integers(1, 4))
    classes = []
    for class_index in range(class_count):
        field_count = draw(st.integers(0, 5))
        fields = []
        for field_index in range(field_count):
            kind = draw(
                st.sampled_from(_PRIMITIVES + [FieldKind.REFERENCE] * 3)
            )
            fields.append((f"f{field_index}", kind))
        classes.append((f"Class{class_index}", fields))

    object_count = draw(st.integers(1, 12))
    objects = []
    for _ in range(object_count):
        objects.append(draw(st.integers(0, class_count - 1)))

    # Wiring: for each reference field of each object, either None or a
    # target object index (forward or backward: cycles allowed).
    wiring = []
    values = []
    for object_index, class_index in enumerate(objects):
        _, fields = classes[class_index]
        object_wiring = []
        object_values = []
        for _, kind in fields:
            if kind is FieldKind.REFERENCE:
                target = draw(
                    st.one_of(st.none(), st.integers(0, object_count - 1))
                )
                object_wiring.append(target)
            elif kind is FieldKind.DOUBLE:
                object_values.append(
                    draw(st.floats(allow_nan=False, allow_infinity=False,
                                   width=32))
                )
            else:
                low, high = _VALUE_RANGES[kind]
                object_values.append(draw(st.integers(low, high)))
        wiring.append(object_wiring)
        values.append(object_values)
    return classes, objects, wiring, values


def materialize(spec):
    """Build the random world on a fresh heap; returns (heap, root)."""
    classes, objects, wiring, values = spec
    registry = KlassRegistry()
    for name, fields in classes:
        registry.register(
            InstanceKlass(name, [FieldDescriptor(n, k) for n, k in fields])
        )
    heap = Heap(registry=registry)
    handles = [
        heap.new_instance(classes[class_index][0]) for class_index in objects
    ]
    for object_index, class_index in enumerate(objects):
        _, fields = classes[class_index]
        ref_cursor = 0
        value_cursor = 0
        for field_name, kind in fields:
            if kind is FieldKind.REFERENCE:
                target = wiring[object_index][ref_cursor]
                ref_cursor += 1
                handles[object_index].set(
                    field_name, None if target is None else handles[target]
                )
            else:
                handles[object_index].set(
                    field_name, values[object_index][value_cursor]
                )
                value_cursor += 1
    return heap, handles[0]


def make_serializer(kind, registry):
    registration = ClassRegistration()
    for klass in registry:
        registration.register(klass)
    if kind == "java":
        return JavaSerializer()
    if kind == "kryo":
        return KryoSerializer(registration)
    if kind == "skyway":
        return SkywaySerializer(registration)
    return CerealSerializer(registration)


_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.mark.parametrize("serializer_kind", ["java", "kryo", "skyway", "cereal"])
class TestRandomGraphRoundTrip:
    @_SETTINGS
    @given(spec=graph_specs())
    def test_round_trip_equivalence(self, serializer_kind, spec):
        heap, root = materialize(spec)
        serializer = make_serializer(serializer_kind, heap.registry)
        receiver = Heap(registry=heap.registry)
        stream = serializer.serialize(root).stream
        rebuilt = serializer.deserialize(stream, receiver).root
        assert first_difference(root, rebuilt) is None

    @_SETTINGS
    @given(spec=graph_specs())
    def test_object_count_preserved(self, serializer_kind, spec):
        heap, root = materialize(spec)
        serializer = make_serializer(serializer_kind, heap.registry)
        receiver = Heap(registry=heap.registry)
        stream = serializer.serialize(root).stream
        rebuilt = serializer.deserialize(stream, receiver).root
        assert (
            ObjectGraph.from_root(rebuilt).object_count
            == ObjectGraph.from_root(root).object_count
        )


class TestCerealStreamInvariants:
    @_SETTINGS
    @given(spec=graph_specs())
    def test_section_accounting(self, spec):
        heap, root = materialize(spec)
        serializer = make_serializer("cereal", heap.registry)
        stream = serializer.serialize(root).stream
        sections = CS.decode_sections(stream)
        graph = ObjectGraph.from_root(root, order="bfs")
        # Total image size and object count round-trip through the stream.
        assert sections.graph_total_bytes == graph.total_bytes
        assert sections.object_count == graph.object_count
        # Value words + 8 x reference entries == all slots of all objects
        # (value array excludes reference slots; bitmap marks them).
        total_slots = sum(obj.total_slots for obj in graph)
        assert (
            len(sections.value_words) + sections.references.item_count
            == total_slots
        )

    @_SETTINGS
    @given(spec=graph_specs())
    def test_bitmap_lengths_encode_sizes(self, spec):
        from repro.formats.packing import unpack_bitmaps

        heap, root = materialize(spec)
        serializer = make_serializer("cereal", heap.registry)
        stream = serializer.serialize(root).stream
        sections = CS.decode_sections(stream)
        bitmaps = unpack_bitmaps(sections.bitmaps)
        graph = ObjectGraph.from_root(root, order="bfs")
        for obj, bitmap in zip(graph, bitmaps):
            assert len(bitmap) * 8 == obj.size_bytes

    @_SETTINGS
    @given(spec=graph_specs())
    def test_double_round_trip_stable(self, spec):
        """Serializing a deserialized graph yields byte-identical output."""
        heap, root = materialize(spec)
        serializer = make_serializer("cereal", heap.registry)
        receiver = Heap(registry=heap.registry)
        first = serializer.serialize(root).stream
        rebuilt = serializer.deserialize(first, receiver).root
        second = serializer.serialize(rebuilt).stream
        # Values, references, and bitmaps are identical; only the mark
        # words (identity hashes) differ between heaps.
        a = CS.decode_sections(first)
        b = CS.decode_sections(second)
        assert a.references == b.references
        assert a.bitmaps == b.bitmaps
        assert a.graph_total_bytes == b.graph_total_bytes
