"""Fast-path vs oracle equivalence for the integer-bitstream kernels.

The word-level kernels in :mod:`repro.formats.packing` and the primitives
in :mod:`repro.common.bitstream` replaced per-bit loops wholesale. The
original loops survive verbatim in :mod:`repro.formats.slow_reference`;
these tests assert the two implementations are *byte-identical* on random
inputs in both directions, so the fast path can never silently change the
serialized format. The heaviest oracle sweeps carry the ``perf`` marker
(``-m "not perf"`` skips them).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.bitstream import (
    BitReader,
    BitWriter,
    bits_to_word,
    popcount_word,
    trailing_zeros,
    word_to_bits,
)
from repro.formats import packing
from repro.formats import slow_reference as slow
from repro.formats.cereal_format import CerealSerializer
from repro.jvm import Heap

from tests.test_format_stability import (
    _golden_registry,
    _make_serializer,
    build_golden_graph,
)

values_strategy = st.lists(st.integers(min_value=0, max_value=2**60), max_size=120)
bitmap_strategy = st.lists(
    st.lists(st.integers(0, 1), min_size=1, max_size=90), max_size=60
)


class TestItemKernelEquivalence:
    @given(values_strategy)
    def test_pack_items_byte_identical(self, values):
        fast = packing.pack_items(values)
        oracle = slow.slow_pack_items(values)
        assert fast.data == oracle.data
        assert fast.end_map == oracle.end_map
        assert fast.item_count == oracle.item_count

    @given(values_strategy)
    def test_unpack_agrees_on_oracle_streams(self, values):
        packed = slow.slow_pack_items(values)
        assert packing.unpack_items(packed) == slow.slow_unpack_items(packed)

    @given(values_strategy)
    def test_cross_implementation_round_trips(self, values):
        assert packing.unpack_items(slow.slow_pack_items(values)) == values
        assert slow.slow_unpack_items(packing.pack_items(values)) == values

    def test_corrupt_stream_same_error(self):
        packed = packing.PackedArray(
            data=b"\x00", end_map=b"\x80", item_count=1
        )
        with pytest.raises(Exception) as fast_err:
            packing.unpack_items(packed)
        with pytest.raises(Exception) as slow_err:
            slow.slow_unpack_items(packed)
        assert str(fast_err.value) == str(slow_err.value)

    def test_short_end_map_same_error(self):
        packed = packing.PackedArray(
            data=bytes(16), end_map=b"\x00", item_count=1
        )
        with pytest.raises(ValueError) as fast_err:
            packing.unpack_items(packed)
        with pytest.raises(ValueError) as slow_err:
            slow.slow_unpack_items(packed)
        assert str(fast_err.value) == str(slow_err.value)


class TestBitmapKernelEquivalence:
    @given(bitmap_strategy)
    def test_pack_bitmaps_byte_identical(self, bitmaps):
        fast = packing.pack_bitmaps(bitmaps)
        oracle = slow.slow_pack_bitmaps(bitmaps)
        assert fast.data == oracle.data
        assert fast.end_map == oracle.end_map

    @given(bitmap_strategy)
    def test_unpack_bitmaps_agrees(self, bitmaps):
        packed = slow.slow_pack_bitmaps(bitmaps)
        assert packing.unpack_bitmaps(packed) == slow.slow_unpack_bitmaps(packed)
        assert packing.unpack_bitmaps(packed) == [list(b) for b in bitmaps]

    @given(bitmap_strategy)
    def test_word_form_matches_bit_form(self, bitmaps):
        words = [bits_to_word(b) for b in bitmaps]
        from_words = packing.pack_bitmap_words(words)
        from_bits = packing.pack_bitmaps(bitmaps)
        assert from_words.data == from_bits.data
        assert from_words.end_map == from_bits.end_map
        assert packing.unpack_bitmap_words(from_words) == words


class TestBitstreamPrimitives:
    @given(st.integers(min_value=0, max_value=2**80))
    def test_popcount_matches_bin_count(self, value):
        assert popcount_word(value) == bin(value).count("1")

    @given(st.integers(min_value=1, max_value=2**80))
    def test_trailing_zeros_definition(self, value):
        tz = trailing_zeros(value)
        assert value % (1 << tz) == 0
        assert (value >> tz) & 1 == 1

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=100))
    def test_word_bits_round_trip(self, bits):
        value, width = bits_to_word(bits)
        assert width == len(bits)
        assert word_to_bits(value, width) == list(bits)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=64).flatmap(
                    lambda w: st.tuples(
                        st.integers(min_value=0, max_value=(1 << w) - 1),
                        st.just(w),
                    )
                )
            ).map(lambda t: t[0]),
            max_size=80,
        )
    )
    def test_bitwriter_bitreader_round_trip(self, fields):
        writer = BitWriter()
        for value, width in fields:
            writer.write_bits(value, width)
        payload = writer.getvalue()
        reader = BitReader(payload)
        for value, width in fields:
            assert reader.read_bits(width) == value


class TestFormatByteIdentity:
    """The rewritten encoders must keep emitting deterministic bytes."""

    @pytest.mark.parametrize("kind", ["java", "kryo", "skyway", "cereal"])
    def test_repeat_serialize_identical(self, kind):
        registry = _golden_registry()
        heap = Heap(registry=registry)
        root = build_golden_graph(heap)
        serializer = _make_serializer(kind, registry)
        first = serializer.serialize(root).stream.data
        second = serializer.serialize(root).stream.data
        assert first == second

    def test_layout_cache_cold_vs_warm_identical(self):
        from repro.jvm.layout_cache import clear_layout_cache

        def encode():
            registry = _golden_registry()
            heap = Heap(registry=registry)
            root = build_golden_graph(heap)
            return _make_serializer("cereal", registry).serialize(root).stream.data

        clear_layout_cache()
        cold = encode()
        warm = encode()  # second build hits the memoized layouts
        assert cold == warm

    def test_packed_and_baseline_bitmaps_decode_alike(self):
        registry = _golden_registry()
        heap = Heap(registry=registry)
        root = build_golden_graph(heap)
        registration_klasses = list(registry)
        from repro.formats import ClassRegistration, graphs_equivalent

        for pack_layouts in (False, True):
            registration = ClassRegistration()
            for klass in registration_klasses:
                registration.register(klass)
            serializer = CerealSerializer(registration, use_packing=pack_layouts)
            rebuilt = serializer.round_trip(root, Heap(registry=registry))
            assert graphs_equivalent(root, rebuilt)


@pytest.mark.perf
class TestOracleSweeps:
    """Large deterministic sweeps against the per-bit oracle (slow)."""

    def test_wide_value_sweep(self):
        values = [(1 << (i % 61)) + i for i in range(4000)]
        fast = packing.pack_items(values)
        oracle = slow.slow_pack_items(values)
        assert fast.data == oracle.data
        assert fast.end_map == oracle.end_map
        assert packing.unpack_items(fast) == values
        assert slow.slow_unpack_items(fast) == values

    def test_wide_bitmap_sweep(self):
        bitmaps = [
            [(i >> (j % 13)) & 1 for j in range(1 + (i % 77))]
            for i in range(1500)
        ]
        fast = packing.pack_bitmaps(bitmaps)
        oracle = slow.slow_pack_bitmaps(bitmaps)
        assert fast.data == oracle.data
        assert fast.end_map == oracle.end_map
        assert packing.unpack_bitmaps(fast) == bitmaps

    @settings(max_examples=25)
    @given(
        st.lists(st.integers(min_value=0, max_value=2**200), max_size=50)
    )
    def test_huge_values_round_trip(self, values):
        fast = packing.pack_items(values)
        oracle = slow.slow_pack_items(values)
        assert fast.data == oracle.data
        assert packing.unpack_items(fast) == values
