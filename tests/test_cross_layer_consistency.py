"""Cross-layer consistency: the timing models vs the functional encoder.

The SU/DU cycle models account their own output/input traffic; the
functional :class:`~repro.formats.CerealSerializer` owns the actual bytes.
These tests pin the two layers together so they cannot drift: the SU's
value-array write accounting must equal the functional value array, the DU
workload's stream byte counts must match the decoded sections, and the
accelerator façade must report the functional stream's sizes.
"""

import pytest

from repro.cereal import CerealAccelerator
from repro.cereal.du import DUWorkload
from repro.formats.cereal_format import CerealSerializer
from repro.jvm import Heap
from repro.workloads import build_microbench
from repro.workloads.micro import register_micro_klasses


@pytest.fixture(scope="module")
def measured():
    """One accelerator pass over each microbenchmark shape."""
    out = {}
    for workload in ("tree-narrow", "list-small", "graph-sparse"):
        heap = Heap()
        register_micro_klasses(heap.registry)
        accelerator = CerealAccelerator()
        for klass in heap.registry:
            accelerator.register_class(klass)
        root = build_microbench(heap, workload)
        result, timing, su = accelerator.serialize(root)
        receiver = Heap(registry=heap.registry)
        _, de_timing, du = accelerator.deserialize(result.stream, receiver)
        out[workload] = (result, timing, su, de_timing, du)
    return out


@pytest.mark.parametrize(
    "workload", ["tree-narrow", "list-small", "graph-sparse"]
)
class TestSUAgainstFunctionalStream:
    def test_value_bytes_match(self, measured, workload):
        result, _, su, _, _ = measured[workload]
        assert su.value_bytes_written == result.stream.sections["value_array"]

    def test_heap_bytes_equal_graph_size(self, measured, workload):
        result, _, su, _, _ = measured[workload]
        assert su.heap_bytes_read == result.stream.graph_bytes

    def test_object_counts_agree(self, measured, workload):
        result, timing, su, _, _ = measured[workload]
        assert su.objects == result.stream.object_count == timing.objects

    def test_su_packed_bitmap_estimate_close(self, measured, workload):
        """The SU's per-object packed-bitmap size is exact, so its total
        must match the functional packed bitmap payload."""
        result, _, su, _, _ = measured[workload]
        assert su.bitmap_bytes_written == result.stream.sections["layout_bitmap"]

    def test_su_reference_traffic_within_bounds(self, measured, workload):
        """The SU's ref-byte estimate is approximate (timing side only) but
        must stay within 3x of the functional packed reference array."""
        result, _, su, _, _ = measured[workload]
        functional = (
            result.stream.sections["reference_array"]
            + result.stream.sections["reference_end_map"]
        )
        assert functional / 3 < su.reference_bytes_written < functional * 3


@pytest.mark.parametrize(
    "workload", ["tree-narrow", "list-small", "graph-sparse"]
)
class TestDUAgainstFunctionalStream:
    def test_workload_streams_match_sections(self, measured, workload):
        result, _, _, _, _ = measured[workload]
        sections = CerealSerializer.decode_sections(result.stream)
        du_workload = DUWorkload.from_stream_sections(sections)
        assert du_workload.value_array_bytes == result.stream.sections["value_array"]
        assert du_workload.reference_array_bytes == (
            result.stream.sections["reference_array"]
            + result.stream.sections["reference_end_map"]
        )
        assert du_workload.bitmap_bytes == (
            result.stream.sections["layout_bitmap"]
            + result.stream.sections["bitmap_end_map"]
        )

    def test_blocks_cover_image_exactly(self, measured, workload):
        result, _, _, _, du = measured[workload]
        sections = CerealSerializer.decode_sections(result.stream)
        assert du.blocks * 64 >= sections.graph_total_bytes
        assert (du.blocks - 1) * 64 < sections.graph_total_bytes

    def test_du_timing_reports_stream_bytes(self, measured, workload):
        result, _, _, de_timing, du = measured[workload]
        assert de_timing.stream_bytes == result.stream.size_bytes
        assert du.stream_bytes_read < result.stream.size_bytes  # no framing


@pytest.mark.parametrize(
    "workload", ["tree-narrow", "list-small", "graph-sparse"]
)
class TestTimingSanity:
    def test_dram_traffic_at_least_graph_size(self, measured, workload):
        """Serialization must read at least the whole graph from DRAM."""
        result, timing, _, _, _ = measured[workload]
        assert timing.dram_bytes >= result.stream.graph_bytes

    def test_deser_dram_traffic_covers_image_and_stream(self, measured, workload):
        result, _, _, de_timing, _ = measured[workload]
        floor = result.stream.graph_bytes  # image writes alone
        assert de_timing.dram_bytes >= floor

    def test_throughput_below_dram_peak(self, measured, workload):
        _, timing, _, de_timing, _ = measured[workload]
        peak = 76.8e9
        assert timing.throughput_bytes_per_sec < peak
        assert de_timing.throughput_bytes_per_sec < peak
