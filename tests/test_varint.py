"""Boundary tests for the shared LEB128 / zig-zag varint module.

``repro.formats.varint`` is the single implementation behind the stream
layer, the compiled plans, and the generated codegen kernels; these tests
pin its byte-level boundaries (length transitions, the full u64 range,
the 10-byte overflow guard) directly at the shared-module surface, plus
the re-export seams the consumers import through.
"""

from __future__ import annotations

import pytest

from repro.common.errors import (
    FormatError,
    MalformedVarintError,
    TruncatedStreamError,
)
from repro.formats import varint as V


_ROUNDTRIP_VALUES = (
    0,
    1,
    127,
    128,
    16383,
    16384,
    (1 << 32) - 1,
    1 << 63,
    (1 << 64) - 1,
)


@pytest.mark.parametrize("value", _ROUNDTRIP_VALUES)
def test_unsigned_roundtrip(value):
    out = bytearray()
    length = V.append_varint(out, value)
    assert length == len(out)
    decoded, pos = V.read_varint(bytes(out), 0)
    assert decoded == value
    assert pos == length


@pytest.mark.parametrize(
    "value,expected_length",
    [(0, 1), (127, 1), (128, 2), (16383, 2), (16384, 3), ((1 << 64) - 1, 10)],
)
def test_unsigned_length_boundaries(value, expected_length):
    out = bytearray()
    assert V.append_varint(out, value) == expected_length


@pytest.mark.parametrize(
    "value", [0, -1, 1, -64, 63, -65, 64, -(1 << 63), (1 << 63) - 1]
)
def test_signed_roundtrip(value):
    out = bytearray()
    length = V.append_signed_varint(out, value)
    decoded, pos = V.read_signed_varint(bytes(out), 0)
    assert decoded == value
    assert pos == length


def test_zigzag_mapping():
    # The canonical 0, -1, 1, -2, 2, ... interleave.
    assert [V.zigzag_encode(v) for v in (0, -1, 1, -2, 2)] == [0, 1, 2, 3, 4]
    for value in (0, 1, -1, 2**62, -(2**62), (1 << 63) - 1, -(1 << 63)):
        assert V.zigzag_decode(V.zigzag_encode(value)) == value


def test_negative_unsigned_rejected():
    with pytest.raises(FormatError):
        V.append_varint(bytearray(), -1)


def test_ten_byte_maximum_accepted():
    # 2^64 - 1 is the largest legal varint: nine full bytes then 0x01.
    encoding = b"\xff" * 9 + b"\x01"
    value, pos = V.read_varint(encoding, 0)
    assert value == (1 << 64) - 1
    assert pos == 10


def test_ten_byte_final_overflow_rejected():
    # A 10th byte with any payload bit above bit 0 decodes past 2^64.
    with pytest.raises(MalformedVarintError):
        V.read_varint(b"\xff" * 9 + b"\x02", 0)


def test_eleven_byte_varint_rejected():
    with pytest.raises(MalformedVarintError):
        V.read_varint(b"\x80" * 10 + b"\x01", 0)


def test_truncated_varint_raises_with_offset():
    with pytest.raises(TruncatedStreamError) as excinfo:
        V.read_varint(b"\x80\x80", 0)
    assert excinfo.value.offset == 2
    assert excinfo.value.needed == 1


def test_consumers_share_the_single_implementation():
    # plans re-exports the kernel API; streams delegates per-call.
    from repro.formats import plans

    assert plans.read_varint is V.read_varint
    assert plans.read_signed_varint is V.read_signed_varint
    assert plans.append_varint is V.append_varint
    assert plans.append_signed_varint is V.append_signed_varint
