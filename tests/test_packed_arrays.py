"""Tests for natural-width (packed) primitive array storage."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.formats import graphs_equivalent
from repro.jvm import FieldKind, Heap
from tests.test_serializers import make_registry, make_serializer


class TestPackedSizes:
    @pytest.mark.parametrize(
        "kind,length,expected_element_slots",
        [
            (FieldKind.BYTE, 8, 1),
            (FieldKind.BYTE, 9, 2),
            (FieldKind.CHAR, 4, 1),
            (FieldKind.CHAR, 5, 2),
            (FieldKind.INT, 2, 1),
            (FieldKind.INT, 3, 2),
            (FieldKind.LONG, 3, 3),
            (FieldKind.DOUBLE, 3, 3),
            (FieldKind.REFERENCE, 3, 3),
        ],
    )
    def test_element_storage_rounds_to_slots(
        self, kind, length, expected_element_slots
    ):
        heap = Heap()
        array = heap.new_array(kind, length)
        # header (3 slots) + length slot + element storage.
        assert array.total_slots == 3 + 1 + expected_element_slots

    def test_char_array_quarter_of_long_array(self):
        heap = Heap()
        overhead = heap.header_bytes + 8  # header + length slot
        chars = heap.new_array(FieldKind.CHAR, 32)
        longs = heap.new_array(FieldKind.LONG, 32)
        assert chars.size_bytes - overhead == 64  # 32 x 2 B
        assert longs.size_bytes - overhead == 256  # 32 x 8 B

    def test_bitmap_still_covers_whole_object(self):
        heap = Heap()
        array = heap.new_array(FieldKind.CHAR, 13)
        assert len(array.layout_bitmap()) * 8 == array.size_bytes


class TestPackedElementAccess:
    @pytest.mark.parametrize(
        "kind,values",
        [
            (FieldKind.BOOLEAN, [True, False, True]),
            (FieldKind.BYTE, [-128, 0, 127]),
            (FieldKind.CHAR, [0, ord("z"), 0xFFFF]),
            (FieldKind.SHORT, [-32768, -1, 32767]),
            (FieldKind.INT, [-(2**31), -1, 2**31 - 1]),
            (FieldKind.LONG, [-(2**62), 0, 2**62]),
            (FieldKind.DOUBLE, [0.5, -1.25, 1e300]),
        ],
    )
    def test_round_trip(self, kind, values):
        heap = Heap()
        array = heap.new_array(kind, len(values))
        for index, value in enumerate(values):
            array.set_element(index, value)
        for index, value in enumerate(values):
            assert array.get_element(index) == value

    def test_float_stored_at_f32_precision(self):
        heap = Heap()
        array = heap.new_array(FieldKind.FLOAT, 1)
        array.set_element(0, 0.1)
        assert array.get_element(0) == pytest.approx(0.1, rel=1e-6)
        assert array.get_element(0) != 0.1  # f32 rounding is visible

    def test_neighbours_do_not_clobber(self):
        heap = Heap()
        array = heap.new_array(FieldKind.BYTE, 16)
        for index in range(16):
            array.set_element(index, index)
        array.set_element(7, -1)
        assert array.get_element(6) == 6
        assert array.get_element(7) == -1
        assert array.get_element(8) == 8

    @given(st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=40))
    def test_char_array_property(self, values):
        heap = Heap()
        array = heap.new_array(FieldKind.CHAR, len(values))
        for index, value in enumerate(values):
            array.set_element(index, value)
        assert [array.get_element(i) for i in range(len(values))] == values


class TestPackedArraysThroughSerializers:
    @pytest.mark.parametrize("serializer_kind", ["java", "kryo", "skyway", "cereal"])
    @pytest.mark.parametrize(
        "kind", [FieldKind.BYTE, FieldKind.CHAR, FieldKind.INT]
    )
    def test_round_trip(self, serializer_kind, kind):
        registry = make_registry()
        registry.array_klass(kind)
        heap = Heap(registry=registry)
        receiver = Heap(registry=registry)
        array = heap.new_array(kind, 21)  # odd size: partial final slot
        for index in range(21):
            array.set_element(index, index * 3 % 100)
        serializer = make_serializer(serializer_kind, registry)
        rebuilt = serializer.round_trip(array, receiver)
        assert graphs_equivalent(array, rebuilt)

    def test_cereal_value_array_shrinks_for_chars(self):
        registry = make_registry()
        registry.array_klass(FieldKind.CHAR)
        heap = Heap(registry=registry)
        chars = heap.new_array(FieldKind.CHAR, 64)
        longs = heap.new_array(FieldKind.LONG, 64)
        serializer = make_serializer("cereal", registry)
        char_stream = serializer.serialize(chars).stream
        long_stream = serializer.serialize(longs).stream
        assert (
            char_stream.sections["value_array"]
            < long_stream.sections["value_array"] / 2
        )
