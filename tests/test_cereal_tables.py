"""Tests for the accelerator's hardware tables, TLB, and MAI."""

import pytest

from repro.common.config import CerealConfig
from repro.common.errors import CapacityError, SimulationError
from repro.cereal.mai import MemoryAccessInterface
from repro.cereal.tables import ClassIDTable, KlassPointerTable
from repro.cereal.tlb import TLB
from repro.memory.dram import DRAMModel


class TestKlassPointerTable:
    def test_install_and_lookup(self):
        table = KlassPointerTable()
        table.install(0x7F00_0000, 3)
        assert table.lookup(0x7F00_0000) == 3
        assert table.lookups == 1

    def test_reinstall_same_mapping_ok(self):
        table = KlassPointerTable()
        table.install(0x1000, 1)
        table.install(0x1000, 1)
        assert len(table) == 1

    def test_reinstall_conflicting_rejected(self):
        table = KlassPointerTable()
        table.install(0x1000, 1)
        with pytest.raises(SimulationError):
            table.install(0x1000, 2)

    def test_capacity_enforced(self):
        table = KlassPointerTable(max_entries=2)
        table.install(0x1000, 0)
        table.install(0x2000, 1)
        with pytest.raises(CapacityError):
            table.install(0x3000, 2)

    def test_unregistered_lookup_rejected(self):
        table = KlassPointerTable()
        with pytest.raises(CapacityError):
            table.lookup(0xDEAD)


class TestClassIDTable:
    def test_dense_install_and_lookup(self):
        table = ClassIDTable()
        table.install(0, 0x1000)
        table.install(1, 0x2000)
        assert table.lookup(1) == 0x2000

    def test_sparse_install_rejected(self):
        table = ClassIDTable()
        with pytest.raises(SimulationError):
            table.install(5, 0x1000)

    def test_capacity_enforced(self):
        table = ClassIDTable(max_entries=1)
        table.install(0, 0x1000)
        with pytest.raises(CapacityError):
            table.install(1, 0x2000)

    def test_unknown_id_rejected(self):
        table = ClassIDTable()
        with pytest.raises(CapacityError):
            table.lookup(0)


class TestTLB:
    def test_first_access_misses_then_hits(self):
        tlb = TLB(entries=4)
        assert tlb.translate(0x1234) > 0  # miss: page walk
        assert tlb.translate(0x5678) == 0.0  # same 1 GiB page
        assert tlb.misses == 1 and tlb.hits == 1

    def test_lru_eviction(self):
        tlb = TLB(entries=2, page_bytes=4096)
        tlb.translate(0)  # page 0
        tlb.translate(4096)  # page 1
        tlb.translate(8192)  # page 2 evicts page 0
        assert tlb.translate(0) > 0  # page 0 misses again
        assert tlb.misses == 4

    def test_paper_configuration_no_misses_on_128gb(self):
        # 128 GB / 1 GiB pages = 120 pages < 128 entries (Section V-E).
        tlb = TLB()
        walks = sum(
            1 for i in range(120) if tlb.translate(i * (1 << 30)) > 0
        )
        assert walks == 120  # compulsory only
        again = sum(1 for i in range(120) if tlb.translate(i * (1 << 30)) > 0)
        assert again == 0

    def test_bad_page_size_rejected(self):
        with pytest.raises(SimulationError):
            TLB(page_bytes=1000)


class TestMAI:
    def make_mai(self, coalescing=True):
        return MemoryAccessInterface(
            DRAMModel(), CerealConfig(), coalescing=coalescing
        )

    def test_read_latency_includes_dram(self):
        mai = self.make_mai()
        done = mai.read(0.0, 0x100, 8)
        assert done >= 40.0  # zero-load latency

    def test_coalescing_same_block(self):
        mai = self.make_mai()
        first = mai.read(0.0, 0x100, 8)
        second = mai.read(0.0, 0x108, 8)  # same 32 B block
        assert second == first  # no second DRAM access
        assert mai.stats.coalesced_blocks == 1
        assert mai.stats.blocks_read == 1

    def test_coalescing_disabled(self):
        mai = self.make_mai(coalescing=False)
        mai.read(0.0, 0x100, 8)
        mai.read(0.0, 0x108, 8)
        assert mai.stats.coalesced_blocks == 0
        assert mai.stats.blocks_read == 2

    def test_multi_block_read_returns_in_order_completion(self):
        mai = self.make_mai()
        done = mai.read(0.0, 0x0, 64)  # two 32 B blocks
        assert mai.stats.blocks_read == 2
        assert done >= 40.0

    def test_entry_eviction_limits_coalescing_window(self):
        config = CerealConfig(mai_entries=2)
        mai = MemoryAccessInterface(DRAMModel(), config)
        mai.read(0.0, 0 * 32, 8)
        mai.read(0.0, 1 * 32, 8)
        mai.read(0.0, 2 * 32, 8)  # evicts block 0
        mai.read(100.0, 0 * 32, 8)  # no longer coalesces
        assert mai.stats.blocks_read == 4

    def test_write_is_posted(self):
        mai = self.make_mai()
        mai.read(0.0, 0x100, 8)  # warm the TLB so only posting cost remains
        ack = mai.write(100.0, 0x200, 64)
        assert ack == pytest.approx(101.0)  # requester continues immediately
        assert mai.drain(0.0) > 140.0  # but data lands later

    def test_atomic_rmw_counts(self):
        mai = self.make_mai()
        done = mai.atomic_rmw(0.0, 0x200)
        assert done > 40.0
        assert mai.stats.atomic_rmws == 1

    def test_zero_length_rejected(self):
        mai = self.make_mai()
        with pytest.raises(SimulationError):
            mai.read(0.0, 0, 0)
