"""Tests for workload generators: microbenchmarks, JSBS, datagen."""

import pytest

from repro.common.errors import ConfigError
from repro.jvm import Heap, object_graph_stats
from repro.workloads import (
    JSBS_LIBRARY_PROFILES,
    MICROBENCH_CONFIGS,
    DeterministicRandom,
    build_media_content,
    build_microbench,
)
from repro.workloads.micro import register_micro_klasses


class TestDeterministicRandom:
    def test_deterministic(self):
        a = DeterministicRandom(seed=42)
        b = DeterministicRandom(seed=42)
        assert [a.next_u64() for _ in range(10)] == [b.next_u64() for _ in range(10)]

    def test_randint_range(self):
        rng = DeterministicRandom()
        values = [rng.randint(3, 7) for _ in range(200)]
        assert min(values) == 3 and max(values) == 7

    def test_random_unit_interval(self):
        rng = DeterministicRandom()
        assert all(0.0 <= rng.random() < 1.0 for _ in range(100))

    def test_sample_indices_distinct(self):
        rng = DeterministicRandom()
        indices = rng.sample_indices(100, 30)
        assert len(set(indices)) == 30

    def test_sample_too_many_rejected(self):
        rng = DeterministicRandom()
        with pytest.raises(ValueError):
            rng.sample_indices(5, 6)

    def test_zero_seed_survives(self):
        rng = DeterministicRandom(seed=0)
        assert rng.next_u64() != 0


class TestMicrobenchConfigs:
    def test_all_six_variants_present(self):
        assert set(MICROBENCH_CONFIGS) == {
            "tree-narrow",
            "tree-wide",
            "list-small",
            "list-large",
            "graph-sparse",
            "graph-dense",
        }

    def test_paper_sizes_match_table_ii(self):
        assert MICROBENCH_CONFIGS["tree-narrow"].paper_objects == 2_097_150
        assert MICROBENCH_CONFIGS["tree-wide"].paper_objects == 19_173_960
        assert MICROBENCH_CONFIGS["list-small"].paper_objects == 524_288
        assert MICROBENCH_CONFIGS["list-large"].paper_objects == 2_097_152
        assert MICROBENCH_CONFIGS["graph-sparse"].paper_objects == 4_096
        assert MICROBENCH_CONFIGS["graph-dense"].fanout == 255


class TestTreeBench:
    def test_narrow_tree_shape(self):
        heap = Heap()
        root = build_microbench(heap, "tree-narrow")
        stats = object_graph_stats(root)
        config = MICROBENCH_CONFIGS["tree-narrow"]
        assert stats.object_count == config.scaled_objects
        assert stats.max_out_degree == 2

    def test_wide_tree_fanout(self):
        heap = Heap()
        root = build_microbench(heap, "tree-wide")
        stats = object_graph_stats(root)
        assert stats.max_out_degree == 8

    def test_trees_are_acyclic_trees(self):
        heap = Heap()
        root = build_microbench(heap, "tree-narrow")
        stats = object_graph_stats(root)
        # A tree has exactly objects-1 edges.
        assert stats.reference_count == stats.object_count - 1


class TestListBench:
    def test_list_lengths(self):
        heap = Heap()
        small = build_microbench(heap, "list-small")
        assert object_graph_stats(small).object_count == 512

    def test_large_is_4x_small(self):
        assert (
            MICROBENCH_CONFIGS["list-large"].scaled_objects
            == 4 * MICROBENCH_CONFIGS["list-small"].scaled_objects
        )

    def test_list_is_chain(self):
        heap = Heap()
        root = build_microbench(heap, "list-small")
        stats = object_graph_stats(root)
        assert stats.max_out_degree == 1


class TestGraphBench:
    def test_sparse_connected(self):
        heap = Heap()
        root = build_microbench(heap, "graph-sparse")
        stats = object_graph_stats(root)
        config = MICROBENCH_CONFIGS["graph-sparse"]
        # All nodes plus their adjacency arrays are reachable from the root.
        assert stats.object_count == 2 * config.scaled_objects

    def test_dense_has_many_references(self):
        heap = Heap()
        root = build_microbench(heap, "graph-dense")
        stats = object_graph_stats(root)
        sparse_heap = Heap()
        sparse = build_microbench(sparse_heap, "graph-sparse")
        sparse_stats = object_graph_stats(sparse)
        assert stats.reference_count > 50 * sparse_stats.reference_count

    def test_deterministic_across_builds(self):
        a = object_graph_stats(build_microbench(Heap(), "graph-dense"))
        b = object_graph_stats(build_microbench(Heap(), "graph-dense"))
        assert a == b

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            build_microbench(Heap(), "graph-medium")

    def test_register_micro_klasses_idempotent(self):
        heap = Heap()
        register_micro_klasses(heap.registry)
        register_micro_klasses(heap.registry)
        assert "GraphNode" in heap.registry


class TestJSBS:
    def test_media_content_structure(self):
        heap = Heap()
        content = build_media_content(heap)
        assert content.klass.name == "MediaContent"
        media = content.get("media")
        assert media.get("width") == 640
        images = content.get("images")
        assert images.length == 2

    def test_media_content_serializable_by_all(self):
        from tests.test_serializers import make_serializer

        heap = Heap()
        content = build_media_content(heap)
        receiver = Heap(registry=heap.registry)
        serializer = make_serializer_for_heap(heap)
        rebuilt = serializer.round_trip(content, receiver)
        assert rebuilt.get("media").get("duration") == 18_000_000

    def test_profiles_count(self):
        # 84 cost profiles + the 4 measured implementations = the "88 other
        # S/D libraries" of Section VI-C.
        assert len(JSBS_LIBRARY_PROFILES) == 84

    def test_profiles_unique_names(self):
        names = [p.name for p in JSBS_LIBRARY_PROFILES]
        assert len(set(names)) == len(names)

    def test_profile_spread(self):
        factors = [p.time_factor for p in JSBS_LIBRARY_PROFILES]
        assert min(factors) < 0.3  # fast binary codecs
        assert max(factors) > 3.0  # reflective XML

    def test_mean_profile_factor_supports_43x(self):
        # The suite's mean round-trip factor sits below Java S/D but well
        # above the fastest codecs; combined with Cereal's ~50-100x lead
        # over Java S/D this yields the ~43x average of Section VI-C.
        factors = [p.time_factor for p in JSBS_LIBRARY_PROFILES]
        mean = sum(factors) / len(factors)
        assert 0.3 < mean < 1.2


def make_serializer_for_heap(heap):
    from repro.formats import ClassRegistration, KryoSerializer

    registration = ClassRegistration()
    for klass in heap.registry:
        registration.register(klass)
    return KryoSerializer(registration)
