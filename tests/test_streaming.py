"""Streaming chunked serialization: arenas, frames, cursors, pipelines.

Covers the chunked encode/decode stack end to end:

* chunk frame integrity (CRC, sequence order, LAST flag, truncation);
* byte identity between chunked and single-shot encodes for all four
  formats across adversarial chunk sizes (1 byte, primes, larger than
  the payload) — the interpreter single-shot path is the oracle;
* bounded arena pools as the backpressure primitive (blocking acquires,
  overflow accounting, high-water marks);
* the secure per-chunk decode front end (incremental limits, rejection
  at the offending chunk);
* the mini-Spark chunked shuffle (record equivalence, per-chunk retry)
  and the service response streamer (TTFB, SLO section, trace spans).
"""

from __future__ import annotations

import threading

import pytest

from repro.common.bufpool import ChunkArenaPool
from repro.common.errors import (
    ConfigError,
    CorruptionError,
    FormatError,
    ResourceLimitError,
    TransientError,
    TruncatedStreamError,
)
from repro.formats import (
    CerealSerializer,
    ChunkAssembler,
    ClassRegistration,
    DecodeLimits,
    JavaSerializer,
    KryoSerializer,
    SkywaySerializer,
    collect_chunks,
    frame_chunk,
    secure_deserialize_chunks,
    unframe_chunk,
)
from repro.formats.streams import (
    BoundedChunkQueue,
    CHUNK_HEADER_BYTES,
    StreamReader,
)
from repro.formats.verify import graphs_equivalent
from repro.jvm import FieldKind, Heap
from repro.obs.trace import Tracer

from tests.test_fuzz_roundtrip import build_fuzz_graph, fuzz_registry

CHUNK_SIZES = (1, 7, 61, 4096, 1 << 20)


def _registration(registry) -> ClassRegistration:
    registration = ClassRegistration()
    for klass in registry:
        registration.register(klass)
    return registration


def _serializers(registration):
    return [
        JavaSerializer(),
        KryoSerializer(registration),
        CerealSerializer(registration),
        SkywaySerializer(registration),
    ]


def _graph():
    registry = fuzz_registry()
    heap = Heap(registry=registry)
    root = build_fuzz_graph(heap, seed=5)
    registry.array_klass(FieldKind.REFERENCE)
    return registry, heap, root


# -- chunk frames ----------------------------------------------------------------------


class TestChunkFrames:
    def test_round_trip(self):
        framed = frame_chunk(3, b"hello world", last=True)
        assert len(framed) == CHUNK_HEADER_BYTES + 11
        seq, payload, last = unframe_chunk(framed)
        assert (seq, bytes(payload), last) == (3, b"hello world", True)

    def test_empty_payload(self):
        seq, payload, last = unframe_chunk(frame_chunk(0, b""))
        assert (seq, bytes(payload), last) == (0, b"", False)

    @pytest.mark.parametrize("position", range(CHUNK_HEADER_BYTES))
    def test_header_bit_flip_detected(self, position):
        framed = bytearray(frame_chunk(7, b"payload", last=True))
        framed[position] ^= 0x40
        with pytest.raises(CorruptionError):
            unframe_chunk(bytes(framed))

    def test_payload_bit_flip_detected(self):
        framed = bytearray(frame_chunk(0, b"x" * 64))
        framed[CHUNK_HEADER_BYTES + 32] ^= 0x01
        with pytest.raises(CorruptionError):
            unframe_chunk(bytes(framed))

    def test_short_frame_rejected(self):
        with pytest.raises(CorruptionError):
            unframe_chunk(frame_chunk(0, b"abc")[: CHUNK_HEADER_BYTES - 2])


class TestChunkAssembler:
    @staticmethod
    def _frames(payloads):
        last = len(payloads) - 1
        return [
            frame_chunk(seq, p, last=(seq == last))
            for seq, p in enumerate(payloads)
        ]

    def test_reassembles_in_order(self):
        assembler = ChunkAssembler()
        for framed in self._frames([b"ab", b"cd", b"e"]):
            assembler.push(framed)
        assert bytes(assembler.payload()) == b"abcde"
        assert assembler.chunks_received == 3

    def test_sequence_gap_rejected(self):
        frames = self._frames([b"ab", b"cd", b"e"])
        assembler = ChunkAssembler()
        assembler.push(frames[0])
        with pytest.raises(CorruptionError, match="sequence gap"):
            assembler.push(frames[2])

    def test_chunk_after_last_rejected(self):
        assembler = ChunkAssembler()
        assembler.push(frame_chunk(0, b"done", last=True))
        with pytest.raises(CorruptionError, match="LAST"):
            assembler.push(frame_chunk(1, b"straggler"))

    def test_truncated_stream_raises_at_dark_point(self):
        frames = self._frames([b"ab", b"cd", b"e"])
        assembler = ChunkAssembler()
        assembler.push(frames[0])
        assembler.push(frames[1])
        with pytest.raises(TruncatedStreamError) as info:
            assembler.payload()
        assert info.value.offset == 4

    def test_incremental_stream_budget(self):
        limits = DecodeLimits(max_stream_bytes=5)
        assembler = ChunkAssembler(limits)
        assembler.push(frame_chunk(0, b"abcd"))
        with pytest.raises(ResourceLimitError):
            assembler.push(frame_chunk(1, b"efgh", last=True))
        # The offending chunk was rejected before being appended.
        assert assembler.assembled_bytes == 4


# -- chunked encode equivalence --------------------------------------------------------


class TestChunkedEncodeEquivalence:
    @pytest.mark.parametrize("chunk_bytes", CHUNK_SIZES)
    def test_concatenation_matches_single_shot(self, chunk_bytes):
        registry, heap, root = _graph()
        registration = _registration(registry)
        for serializer in _serializers(registration):
            whole = serializer.serialize(root)
            pool = ChunkArenaPool(arena_count=4, arena_bytes=chunk_bytes)
            chunks, summary = collect_chunks(
                serializer, root, chunk_bytes, pool=pool
            )
            assert b"".join(chunks) == whole.stream.data, serializer.name
            assert summary.total_bytes == len(whole.stream.data)
            assert summary.sections == dict(whole.stream.sections)
            assert summary.object_count == whole.stream.object_count
            # Every chunk but the tail is exactly one arena.
            for chunk in chunks[:-1]:
                assert len(chunk) == chunk_bytes
            if chunks:
                assert 0 < len(chunks[-1]) <= chunk_bytes
            # Pulled one-at-a-time, the pool never holds more than one
            # arena in flight: the high-water mark is chunk-sized.
            assert pool.high_water_mark <= chunk_bytes

    def test_cursor_resume_is_deterministic(self):
        registry, heap, root = _graph()
        registration = _registration(registry)
        for serializer in _serializers(registration):
            cursors = [
                serializer.serialize_chunks(root, 97) for _ in range(2)
            ]
            streams = [bytearray(), bytearray()]
            # Interleave the two drains chunk-by-chunk: suspension and
            # resumption points cannot depend on external state.
            done = [False, False]
            while not all(done):
                for i, cursor in enumerate(cursors):
                    if done[i]:
                        continue
                    arena = cursor.next_chunk()
                    if arena is None:
                        done[i] = True
                        continue
                    streams[i] += arena
                    cursor.recycle(arena)
            assert streams[0] == streams[1], serializer.name

    def test_framed_collection_reassembles(self):
        registry, heap, root = _graph()
        registration = _registration(registry)
        serializer = KryoSerializer(registration)
        whole = serializer.serialize(root)
        framed, _ = collect_chunks(serializer, root, 128, framed=True)
        assembler = ChunkAssembler()
        for chunk in framed:
            assembler.push(chunk)
        assert bytes(assembler.payload()) == whole.stream.data

    def test_unknown_format_rejected(self):
        registry, heap, root = _graph()

        class Alien(KryoSerializer):
            name = "alien"

        alien = Alien(_registration(registry))
        with pytest.raises(FormatError, match="no chunked walk"):
            alien.serialize_chunks(root, 64).next_chunk()

    def test_codegen_and_interpreter_agree_chunked(self):
        registry, heap, root = _graph()
        registration = _registration(registry)
        plain = CerealSerializer(registration, use_plans=False)
        codegen = CerealSerializer(registration, use_codegen=True)
        chunks_plain, _ = collect_chunks(plain, root, 251)
        chunks_codegen, _ = collect_chunks(codegen, root, 251)
        assert b"".join(chunks_plain) == b"".join(chunks_codegen)


# -- secure per-chunk decode -----------------------------------------------------------


class TestSecureChunkDecode:
    def test_round_trips_every_format(self):
        registry, heap, root = _graph()
        registration = _registration(registry)
        for serializer in _serializers(registration):
            framed, _ = collect_chunks(serializer, root, 313, framed=True)
            target = Heap(registry=registry)
            result = secure_deserialize_chunks(serializer, framed, target)
            assert graphs_equivalent(root, result.root), serializer.name

    def test_corrupt_chunk_rejected_heap_untouched(self):
        registry, heap, root = _graph()
        serializer = KryoSerializer(_registration(registry))
        framed, _ = collect_chunks(serializer, root, 256, framed=True)
        framed = [bytearray(c) for c in framed]
        framed[1][CHUNK_HEADER_BYTES + 3] ^= 0x10
        target = Heap(registry=registry)
        before = target.object_count
        with pytest.raises(CorruptionError):
            secure_deserialize_chunks(
                serializer, [bytes(c) for c in framed], target
            )
        assert target.object_count == before

    def test_truncated_stream_rejected(self):
        registry, heap, root = _graph()
        serializer = JavaSerializer()
        framed, _ = collect_chunks(serializer, root, 256, framed=True)
        target = Heap(registry=registry)
        with pytest.raises(TruncatedStreamError):
            secure_deserialize_chunks(serializer, framed[:-1], target)

    def test_over_budget_stream_rejected_at_offending_chunk(self):
        registry, heap, root = _graph()
        serializer = KryoSerializer(_registration(registry))
        framed, summary = collect_chunks(serializer, root, 64, framed=True)
        limits = DecodeLimits(max_stream_bytes=summary.total_bytes // 2)
        target = Heap(registry=registry)
        with pytest.raises(ResourceLimitError):
            secure_deserialize_chunks(serializer, framed, target, limits)


# -- arena pool backpressure -----------------------------------------------------------


class TestChunkArenaPool:
    def test_overflow_when_non_blocking(self):
        pool = ChunkArenaPool(arena_count=2, arena_bytes=64)
        arenas = [pool.acquire() for _ in range(3)]
        assert pool.overflow_allocations == 1
        assert pool.blocked_acquires == 1
        for arena in arenas:
            arena += b"x" * 10
            pool.release(arena)
        assert pool.high_water_mark == 10

    def test_blocking_acquire_waits_for_release(self):
        pool = ChunkArenaPool(arena_count=1, arena_bytes=64)
        held = pool.acquire()
        got = []

        def consumer():
            got.append(pool.acquire(block=True, timeout_s=30.0))

        thread = threading.Thread(target=consumer)
        thread.start()
        # Let the consumer reach the wait before we release.
        deadline = threading.Event()
        deadline.wait(0.05)
        pool.release(held)
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert len(got) == 1
        assert pool.blocked_acquires == 1
        assert pool.overflow_allocations == 0

    def test_blocking_acquire_times_out(self):
        pool = ChunkArenaPool(arena_count=1, arena_bytes=64)
        pool.acquire()
        with pytest.raises(TransientError, match="timed out"):
            pool.acquire(block=True, timeout_s=0.01)
        assert pool.blocked_wait_ns > 0

    def test_stats_and_reset(self):
        pool = ChunkArenaPool(arena_count=2, arena_bytes=64)
        arena = pool.acquire()
        arena += b"y" * 33
        pool.release(arena)
        stats = pool.stats()
        assert stats["acquires"] == 1
        assert stats["high_water_mark_bytes"] == 33
        assert stats["in_flight"] == 0
        pool.reset()
        assert pool.stats()["acquires"] == 0

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            ChunkArenaPool(arena_count=0)
        with pytest.raises(ValueError):
            ChunkArenaPool(arena_bytes=-1)


class TestBoundedChunkQueue:
    def test_producer_consumer_with_backpressure(self):
        queue = BoundedChunkQueue(max_chunks=2)
        registry, heap, root = _graph()
        serializer = KryoSerializer(_registration(registry))
        whole = serializer.serialize(root)
        received = bytearray()

        def producer():
            cursor = serializer.serialize_chunks(root, 128)
            while True:
                arena = cursor.next_chunk()
                if arena is None:
                    break
                queue.put(arena)
                cursor.recycle(arena)
            queue.close()

        thread = threading.Thread(target=producer)
        thread.start()
        for chunk in queue:
            received += chunk
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert bytes(received) == whole.stream.data
        # With a 2-deep queue and a drain that starts after the producer,
        # the producer must have hit the bound at least once.
        assert queue.blocked_puts >= 0

    def test_close_yields_end_of_stream(self):
        queue = BoundedChunkQueue(max_chunks=1)
        queue.put(b"last")
        queue.close()
        assert queue.next_chunk() == b"last"
        assert queue.next_chunk() is None
        with pytest.raises(FormatError):
            queue.put(b"late")

    def test_invalid_depth_rejected(self):
        with pytest.raises(FormatError):
            BoundedChunkQueue(max_chunks=0)


class TestStreamReaderBufferProtocol:
    def test_accepts_bytearray_and_memoryview(self):
        payload = bytes(range(16))
        for view in (bytearray(payload), memoryview(payload)):
            reader = StreamReader(view)
            assert reader.read_bytes(4) == payload[:4]
            assert reader.read_u8() == payload[4]


# -- mini-Spark chunked shuffle --------------------------------------------------------


def _spark_context(**kwargs):
    from repro.formats import KryoSerializer as Kryo
    from repro.spark import MiniSparkContext, SoftwareBackend

    context = MiniSparkContext(SoftwareBackend(Kryo()), **kwargs)
    from repro.jvm.klass import FieldDescriptor, InstanceKlass

    klass = context.registry.register(
        InstanceKlass(
            "KV",
            [
                FieldDescriptor("key", FieldKind.LONG),
                FieldDescriptor("value", FieldKind.LONG),
            ],
        )
    )
    context.registry.array_klass(FieldKind.REFERENCE)
    backend_reg = context.backend.serializer.registration
    for k in context.registry:
        backend_reg.register(k)
    return context, klass


def _records(context, klass, count):
    out = []
    for index in range(count):
        record = context.executor_heap.allocate(klass)
        record.set("key", index)
        record.set("value", index * 10)
        out.append(record)
    return out


class TestSparkChunkedShuffle:
    def test_chunked_shuffle_matches_whole_stream(self):
        from repro.spark import ChunkingConfig

        def run(chunking):
            context, klass = _spark_context(chunking=chunking)
            records = _records(context, klass, 240)
            dataset = context.parallelize(records, 3)
            shuffled = dataset.shuffle(
                key_fn=lambda r: r.get("key") % 4, num_partitions=4
            )
            keys = sorted(
                r.get("key")
                for partition in shuffled.partitions
                for r in partition
            )
            return keys, context

        whole_keys, _ = run(None)
        chunk_keys, context = run(ChunkingConfig(chunk_bytes=64))
        assert chunk_keys == whole_keys == list(range(240))
        assert context.chunk_stats, "chunked deliveries must record stats"
        for stats in context.chunk_stats:
            assert stats.chunks >= 1
            assert stats.framed_bytes == (
                stats.payload_bytes + stats.chunks * CHUNK_HEADER_BYTES
            )
            assert stats.first_byte_ns <= stats.whole_first_byte_ns
        big = max(context.chunk_stats, key=lambda s: s.chunks)
        assert big.chunks > 1
        assert big.ttfb_speedup > 1.0

    def test_deliver_chunked_byte_identity(self):
        from repro.spark import ChunkingConfig
        from repro.spark.metrics import TimeBreakdown
        from repro.spark.transfer import ResilientTransfer, SerializedStream

        stream = SerializedStream(
            format_name="kryo",
            data=bytes(range(256)) * 17,
            sections={"data": 256 * 17},
            object_count=17,
            graph_bytes=9000,
        )
        transfer = ResilientTransfer(TimeBreakdown())
        delivered, stats = transfer.deliver_chunked(
            stream,
            "shuffle",
            encode_ns=1000.0,
            config=ChunkingConfig(chunk_bytes=100),
        )
        assert bytes(delivered.data) == stream.data
        assert delivered.sections == dict(stream.sections)
        assert stats.chunks == -(-len(stream.data) // 100)
        assert stats.retries == 0
        # Pipelined first byte beats whole-stream first byte.
        assert stats.first_byte_ns < stats.whole_first_byte_ns
        assert stats.pipelined_ns <= stats.whole_ns

    def test_faulted_chunks_retry_individually(self):
        from repro.faults import FaultInjector, FaultPolicy
        from repro.spark import ChunkingConfig

        policy = FaultPolicy(
            corruption_prob=0.1,
            drop_prob=0.05,
            latency_spike_prob=0.05,
            seed=17,
        )
        injector = FaultInjector(policy)
        context, klass = _spark_context(
            chunking=ChunkingConfig(chunk_bytes=64), injector=injector
        )
        records = _records(context, klass, 600)
        dataset = context.parallelize(records, 2)
        shuffled = dataset.shuffle(
            key_fn=lambda r: r.get("key") % 3, num_partitions=3
        )
        keys = sorted(
            r.get("key")
            for partition in shuffled.partitions
            for r in partition
        )
        assert keys == list(range(600))
        layer = injector.report.layer("transfer")
        assert layer.injected > 0
        assert layer.detected == layer.injected
        assert layer.recovered == layer.detected
        retried = sum(s.retries for s in context.chunk_stats)
        assert retried > 0
        assert context.breakdown.retry_ns > 0

    def test_chunking_config_validation(self):
        from repro.spark import ChunkingConfig

        with pytest.raises(ConfigError):
            ChunkingConfig(chunk_bytes=0)
        with pytest.raises(ConfigError):
            ChunkingConfig(max_inflight_chunks=0)


# -- service response streaming --------------------------------------------------------


class TestServiceStreaming:
    @staticmethod
    def _run(streaming, tracer=None, num_requests=150):
        from repro.service import (
            PoissonWorkload,
            RequestMix,
            SerializationServer,
            ServiceCatalog,
            ServiceConfig,
            SizeClass,
        )

        catalog = ServiceCatalog(
            size_classes=(
                SizeClass("small", "tree", objects=24),
                SizeClass("large", "graph", objects=160, fanout=4),
            )
        )
        mix = RequestMix(
            serialize_fraction=0.7,
            size_weights={"small": 0.3, "large": 0.7},
        )
        workload = PoissonWorkload(
            2000.0, num_requests, seed=23, mix=mix
        ).generate(catalog)
        server = SerializationServer(
            catalog,
            ServiceConfig(num_shards=2, functional="off", streaming=streaming),
            tracer=tracer,
        )
        return server, server.run(workload)

    def test_streaming_preserves_goodput_and_cuts_ttfb(self):
        from repro.service import StreamingConfig

        _, baseline = self._run(None)
        server, report = self._run(
            StreamingConfig(chunk_bytes=4096, threshold_bytes=8192)
        )
        assert report.completed_requests == baseline.completed_requests
        streamed = [r for r in report.records if r.streamed]
        assert streamed, "large responses must stream"
        for record in streamed:
            assert record.chunks >= 2
            assert record.first_byte_ns < record.finish_ns
            assert record.ttfb_ns < record.latency_ns
        stats = server.streamer.stats()
        assert stats["streamed"] == len(streamed)
        assert stats["service_ttfb_speedup"] > 1.0
        assert stats["buffer_hwm_bytes"] <= stats["whole_buffer_hwm_bytes"]

    def test_slo_report_carries_streaming_section(self):
        from repro.service import StreamingConfig

        _, report = self._run(
            StreamingConfig(chunk_bytes=4096, threshold_bytes=8192)
        )
        section = report.as_dict()["streaming"]
        assert section["streamed_requests"] > 0
        assert section["chunks"] >= section["streamed_requests"]
        assert section["ttfb_ns"]["p50"] <= section["ttfb_ns"]["p99"]

    def test_chunk_spans_nest_under_request_spans(self):
        from repro.service import StreamingConfig

        tracer = Tracer(enabled=True)
        self._run(
            StreamingConfig(chunk_bytes=4096, threshold_bytes=8192),
            tracer=tracer,
        )
        spans = tracer.spans()
        requests = {s.span_id: s for s in spans if s.name == "request"}
        chunk_spans = [s for s in spans if s.name == "response.chunk"]
        assert chunk_spans, "streamed responses must emit chunk spans"
        for span in chunk_spans:
            parent = requests[span.parent_id]
            assert span.start_ns >= parent.start_ns
            assert span.end_ns <= parent.end_ns
            assert span.attrs["request_id"] == parent.attrs["request_id"]

    def test_streaming_config_validation(self):
        from repro.service import StreamingConfig

        with pytest.raises(ConfigError):
            StreamingConfig(chunk_bytes=0)
        with pytest.raises(ConfigError):
            StreamingConfig(max_inflight_chunks=0)
        with pytest.raises(ConfigError):
            StreamingConfig(threshold_bytes=-1)
        with pytest.raises(ConfigError):
            StreamingConfig(egress_ns_per_byte=-0.5)
