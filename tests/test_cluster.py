"""Tests for the repro.cluster fleet: routing, nodes, scaling, failover."""

import pytest

from repro.cluster import (
    Autoscaler,
    AutoscalerConfig,
    ClusterConfig,
    ClusterRouter,
    ConsistentHashRing,
    GAUGE_P99_NS,
    GAUGE_QUEUE_DEPTH,
    GAUGE_STARTING_NODES,
    GAUGE_UP_NODES,
    NODE_DOWN,
    NODE_UP,
    SCALE_DOWN,
    SCALE_UP,
    SerializationCluster,
    ServerNode,
    stable_hash,
)
from repro.common.errors import ConfigError
from repro.faults.injector import FaultInjector
from repro.faults.policy import FaultPolicy
from repro.obs.export import to_chrome_trace, validate_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.service.admission import AdmissionConfig
from repro.service.server import ServiceConfig
from repro.service.workload import (
    DEFAULT_TENANTS,
    KeySkew,
    PoissonWorkload,
    RequestMix,
    ServiceCatalog,
    SizeClass,
)

_SMALL_CLASSES = (
    SizeClass("small", "tree", objects=24),
    SizeClass("medium", "list", objects=64),
)


@pytest.fixture(scope="module")
def catalog():
    return ServiceCatalog(size_classes=_SMALL_CLASSES)


def _mix():
    return RequestMix(
        serialize_fraction=0.5, size_weights={"small": 0.7, "medium": 0.3}
    )


def _keys(count):
    return [f"key-{i}" for i in range(count)]


# -- consistent hashing --------------------------------------------------------------


class TestConsistentHashRing:
    def test_stable_hash_is_deterministic_and_spread(self):
        values = {stable_hash(f"key-{i}") for i in range(1000)}
        assert len(values) == 1000
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash("abc") != stable_hash("abd")

    def test_all_keys_land_on_some_node(self):
        ring = ConsistentHashRing(vnodes=32)
        for node in ("node0", "node1", "node2"):
            ring.add_node(node)
        owners = {ring.node_for(key) for key in _keys(500)}
        assert owners <= {"node0", "node1", "node2"}
        assert len(owners) == 3  # every node owns some arc

    def test_add_one_node_remaps_about_one_over_n(self):
        """The stability property consistent hashing exists for."""
        ring = ConsistentHashRing(vnodes=64)
        nodes = [f"node{i}" for i in range(5)]
        for node in nodes:
            ring.add_node(node)
        keys = _keys(4000)
        before = {key: ring.node_for(key) for key in keys}
        ring.add_node("node5")
        moved = sum(1 for key in keys if ring.node_for(key) != before[key])
        # Ideal is 1/6 of keys; allow generous slack for vnode variance.
        assert 0.05 < moved / len(keys) < 0.35
        # Every moved key moved TO the new node, never between old nodes.
        for key in keys:
            after = ring.node_for(key)
            assert after == before[key] or after == "node5"

    def test_remove_one_node_remaps_only_its_keys(self):
        ring = ConsistentHashRing(vnodes=64)
        nodes = [f"node{i}" for i in range(5)]
        for node in nodes:
            ring.add_node(node)
        keys = _keys(4000)
        before = {key: ring.node_for(key) for key in keys}
        ring.remove_node("node2")
        for key in keys:
            if before[key] != "node2":
                assert ring.node_for(key) == before[key]
            else:
                assert ring.node_for(key) != "node2"

    def test_preference_list_never_colocates_replicas(self):
        """Primary and replicas are always distinct physical nodes."""
        ring = ConsistentHashRing(vnodes=48)
        for index in range(4):
            ring.add_node(f"node{index}")
        for key in _keys(1000):
            preference = ring.preference(key, 3)
            assert len(preference) == 3
            assert len(set(preference)) == 3

    def test_preference_clamps_to_fleet_size(self):
        ring = ConsistentHashRing(vnodes=16)
        ring.add_node("only")
        assert ring.preference("k", 3) == ["only"]
        assert ring.node_for("k") == "only"

    def test_empty_ring_routes_nowhere(self):
        ring = ConsistentHashRing()
        assert ring.node_for("k") is None
        assert ring.preference("k", 2) == []

    def test_membership_errors(self):
        ring = ConsistentHashRing()
        ring.add_node("a")
        with pytest.raises(ConfigError):
            ring.add_node("a")
        with pytest.raises(ConfigError):
            ring.remove_node("b")


class TestClusterRouter:
    def test_locality_prefers_zone_replica(self):
        router = ClusterRouter(replication_factor=2, locality_aware=True)
        router.add_node("node0", "zone-a")
        router.add_node("node1", "zone-b")
        for key in _keys(200):
            replicas = router.replicas_for(key)
            assert len(replicas) == 2
            target = router.route(key, zone="zone-b")
            assert router.zone_of(target) == "zone-b"

    def test_no_zone_uses_primary(self):
        router = ClusterRouter(replication_factor=2)
        router.add_node("node0", "zone-a")
        router.add_node("node1", "zone-b")
        for key in _keys(100):
            assert router.route(key) == router.replicas_for(key)[0]

    def test_exclude_walks_down_preference_list(self):
        router = ClusterRouter(replication_factor=3, locality_aware=False)
        for index in range(3):
            router.add_node(f"node{index}", "zone-a")
        key = "key-7"
        first, second, third = router.replicas_for(key)
        assert router.route(key, exclude=(first,)) == second
        assert router.route(key, exclude=(first, second)) == third
        assert router.route(key, exclude=(first, second, third)) is None


# -- node lifecycle ------------------------------------------------------------------


class TestServerNode:
    def test_lifecycle_and_shard_seconds(self, catalog):
        node = ServerNode(
            "node0", "zone-a", catalog,
            ServiceConfig(num_shards=2), provisioned_ns=1e6,
        )
        node.activate(2e6)
        assert node.state == NODE_UP and node.routable
        node.start_drain()
        assert not node.routable
        node.finish(6e6)
        assert node.state == NODE_DOWN
        # 2 shards x 5 ms provisioned (1e6 -> 6e6).
        assert node.shard_seconds(9e6) == pytest.approx(2 * 5e-3)

    def test_illegal_transitions_rejected(self, catalog):
        node = ServerNode(
            "node0", "zone-a", catalog, ServiceConfig(), provisioned_ns=0.0
        )
        with pytest.raises(ConfigError):
            node.start_drain()  # STARTING cannot drain
        node.activate(0.0)
        node.fail(1.0)
        with pytest.raises(ConfigError):
            node.activate(2.0)


# -- autoscaler ----------------------------------------------------------------------


def _publish(registry, queue_depth, p99_ns, up, starting=0):
    registry.gauge(GAUGE_QUEUE_DEPTH).set(queue_depth)
    registry.gauge(GAUGE_P99_NS).set(p99_ns)
    registry.gauge(GAUGE_UP_NODES).set(up)
    registry.gauge(GAUGE_STARTING_NODES).set(starting)


class TestAutoscaler:
    def test_scales_up_on_queue_pressure(self):
        registry = MetricsRegistry(enabled=True)
        scaler = Autoscaler(AutoscalerConfig(queue_high_per_node=10.0))
        _publish(registry, queue_depth=50, p99_ns=0.0, up=2)
        assert scaler.decide(registry, 0.0) == SCALE_UP
        assert scaler.actions[0]["action"] == SCALE_UP

    def test_cooldown_blocks_consecutive_actions(self):
        registry = MetricsRegistry(enabled=True)
        scaler = Autoscaler(
            AutoscalerConfig(queue_high_per_node=10.0, cooldown_ns=1e6)
        )
        _publish(registry, 50, 0.0, up=2)
        assert scaler.decide(registry, 0.0) == SCALE_UP
        assert scaler.decide(registry, 5e5) == ""
        assert scaler.decide(registry, 2e6) == SCALE_UP

    def test_starting_nodes_count_as_capacity(self):
        registry = MetricsRegistry(enabled=True)
        scaler = Autoscaler(
            AutoscalerConfig(
                max_nodes=3, queue_high_per_node=10.0, cooldown_ns=0.0
            )
        )
        _publish(registry, 100, 0.0, up=2, starting=1)
        assert scaler.decide(registry, 0.0) == ""  # 2 + 1 == max_nodes

    def test_scales_down_when_idle(self):
        registry = MetricsRegistry(enabled=True)
        scaler = Autoscaler(
            AutoscalerConfig(min_nodes=1, queue_low_per_node=4.0)
        )
        _publish(registry, 2, 0.0, up=3)
        assert scaler.decide(registry, 0.0) == SCALE_DOWN

    def test_min_nodes_floor(self):
        registry = MetricsRegistry(enabled=True)
        scaler = Autoscaler(AutoscalerConfig(min_nodes=2))
        _publish(registry, 0, 0.0, up=2)
        assert scaler.decide(registry, 0.0) == ""

    def test_latency_trigger(self):
        registry = MetricsRegistry(enabled=True)
        scaler = Autoscaler(
            AutoscalerConfig(queue_high_per_node=1e9, p99_high_ns=1e6)
        )
        _publish(registry, 1, 5e6, up=2)
        assert scaler.decide(registry, 0.0) == SCALE_UP

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            AutoscalerConfig(min_nodes=0)
        with pytest.raises(ConfigError):
            AutoscalerConfig(min_nodes=4, max_nodes=2)
        with pytest.raises(ConfigError):
            AutoscalerConfig(queue_high_per_node=1.0, queue_low_per_node=2.0)


# -- the cluster event loop ----------------------------------------------------------


def _workload(catalog, num_requests=1200, qps=40_000, seed=3, **kwargs):
    return PoissonWorkload(
        qps=qps, num_requests=num_requests, seed=seed, mix=_mix(),
        keys=KeySkew(key_space=128), **kwargs
    ).generate(catalog)


class TestSerializationCluster:
    def test_static_fleet_completes_everything(self, catalog):
        cluster = SerializationCluster(
            catalog, ClusterConfig(num_nodes=3)
        )
        report = cluster.run(_workload(catalog))
        assert report.slo.total_requests == 1200
        assert report.slo.completed_requests == 1200
        assert report.failovers == 0
        assert report.shard_seconds > 0
        served = {n["node"]: n["served_requests"] for n in report.nodes}
        assert sum(served.values()) == 1200
        assert all(count > 0 for count in served.values())

    def test_same_key_routes_to_same_node(self, catalog):
        cluster = SerializationCluster(
            catalog, ClusterConfig(num_nodes=3, locality_aware=False)
        )
        report = cluster.run(_workload(catalog))
        key_nodes = {}
        for request, record in zip(
            sorted(cluster._requests.values(), key=lambda r: r.request_id),
            report.slo.records,
        ):
            key_nodes.setdefault(request.key, set()).add(record.node)
        assert all(len(nodes) == 1 for nodes in key_nodes.values())

    def test_identical_runs_are_identical(self, catalog):
        import json

        def run_once():
            injector = FaultInjector(
                FaultPolicy(seed=17, node_loss_prob=0.005)
            )
            cluster = SerializationCluster(
                catalog,
                ClusterConfig(
                    num_nodes=3,
                    autoscaler=AutoscalerConfig(min_nodes=2, max_nodes=5),
                ),
                injector=injector,
            )
            payload = cluster.run(_workload(catalog)).as_dict()
            payload["slo"].pop("runtime_caches")  # process-global caches
            return json.dumps(payload, sort_keys=True)

        assert run_once() == run_once()

    def test_failover_reexecutes_without_losing_requests(self, catalog):
        injector = FaultInjector(FaultPolicy(seed=23, node_loss_prob=0.02))
        config = ClusterConfig(
            num_nodes=4,
            control_interval_ns=50_000.0,
            service=ServiceConfig(
                num_shards=1,
                admission=AdmissionConfig(max_outstanding=4096),
            ),
        )
        cluster = SerializationCluster(catalog, config, injector=injector)
        report = cluster.run(
            _workload(catalog, num_requests=3000, qps=150_000, seed=5)
        )
        assert report.failovers > 0
        assert report.retried_requests > 0
        retried = [r for r in report.slo.records if r.retries > 0]
        # Every reaped request is accounted for: re-executed to completion
        # (latency spanning the ORIGINAL arrival) or counted as lost.
        lost = [r for r in retried if not r.completed]
        assert len(lost) == report.lost_after_failover
        for record in retried:
            if record.completed:
                assert record.finish_ns > record.arrival_ns
                assert record.node != ""

    def test_autoscaler_grows_fleet_under_pressure(self, catalog):
        config = ClusterConfig(
            num_nodes=1,
            control_interval_ns=50_000.0,
            service=ServiceConfig(
                num_shards=1,
                admission=AdmissionConfig(max_outstanding=2048),
            ),
            autoscaler=AutoscalerConfig(
                min_nodes=1,
                max_nodes=4,
                queue_high_per_node=16.0,
                cooldown_ns=300_000.0,
                provision_delay_ns=200_000.0,
            ),
        )
        cluster = SerializationCluster(catalog, config)
        report = cluster.run(
            _workload(catalog, num_requests=2500, qps=800_000, seed=9)
        )
        ups = [
            a for a in report.autoscale_actions if a["action"] == SCALE_UP
        ]
        assert ups, "expected at least one scale-up"
        assert len(report.nodes) > 1
        late_nodes = [n for n in report.nodes if n["provisioned_ns"] > 0]
        assert any(n["served_requests"] > 0 for n in late_nodes)

    def test_cluster_trace_validates_and_nests(self, catalog):
        tracer = Tracer(enabled=True)
        cluster = SerializationCluster(
            catalog, ClusterConfig(num_nodes=2), tracer=tracer
        )
        cluster.run(_workload(catalog, num_requests=400))
        document = to_chrome_trace(tracer)
        counts = validate_chrome_trace(document)
        assert counts["X"] > 0
        node_spans = [
            s for s in tracer.spans() if s.name == "node.up"
        ]
        assert len(node_spans) == 2
        node_ids = {s.span_id for s in node_spans}
        requests = [s for s in tracer.spans() if s.name == "request"]
        assert requests
        assert all(s.parent_id in node_ids for s in requests)
        batches = [s for s in tracer.spans() if s.name == "batch.execute"]
        assert batches
        assert all(s.parent_id in node_ids for s in batches)
        assert all(s.track.split(".")[0].startswith("node") for s in batches)

    def test_node_registries_merge_into_run_registry(self, catalog):
        registry = MetricsRegistry(enabled=True)
        cluster = SerializationCluster(
            catalog, ClusterConfig(num_nodes=2), registry=registry
        )
        cluster.run(_workload(catalog, num_requests=600))
        snapshot = registry.snapshot()
        completed = [
            key for key in snapshot
            if key.startswith("node.requests_completed")
        ]
        assert len(completed) == 2
        total = sum(snapshot[key] for key in completed)
        assert total == 600

    def test_tenant_qos_priorities_flow_through(self, catalog):
        config = ClusterConfig(
            num_nodes=2,
            service=ServiceConfig(
                num_shards=1,
                admission=AdmissionConfig(
                    max_outstanding=64,
                    priority_shares=(1.0, 0.6, 0.3),
                ),
            ),
        )
        cluster = SerializationCluster(catalog, config)
        report = cluster.run(
            _workload(
                catalog, num_requests=3000, qps=250_000, seed=13,
                tenants=DEFAULT_TENANTS,
            )
        )
        summary = report.slo.as_dict()
        assert set(summary["tenants"]) == {
            "interactive", "analytics", "batch"
        }
        shed_rate = {}
        for tenant, entry in summary["tenants"].items():
            shed_rate[tenant] = entry["shed"] / entry["total"]
        # The protected class sheds least under pressure.
        assert shed_rate["interactive"] <= shed_rate["batch"]

    def test_duplicate_request_ids_rejected(self, catalog):
        requests = _workload(catalog, num_requests=10)
        requests.append(requests[0])
        cluster = SerializationCluster(catalog, ClusterConfig(num_nodes=1))
        with pytest.raises(ConfigError):
            cluster.run(requests)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ClusterConfig(num_nodes=0)
        with pytest.raises(ConfigError):
            ClusterConfig(zones=())
        with pytest.raises(ConfigError):
            ClusterConfig(control_interval_ns=0.0)
