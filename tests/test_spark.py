"""Tests for the mini-Spark engine, backends, and the six applications."""

import pytest

from repro.cereal import CerealAccelerator
from repro.formats import JavaSerializer, KryoSerializer
from repro.jvm.klass import FieldDescriptor, FieldKind, InstanceKlass
from repro.spark import (
    CerealBackend,
    MiniSparkContext,
    SoftwareBackend,
)
from repro.spark.apps import PAPER_INPUT_MB, SPARK_APPS
from repro.spark.metrics import SDOperation, TimeBreakdown


def kv_klass():
    return InstanceKlass(
        "KV",
        [FieldDescriptor("key", FieldKind.LONG), FieldDescriptor("value", FieldKind.LONG)],
    )


def make_context():
    context = MiniSparkContext(SoftwareBackend(KryoSerializer()))
    klass = context.registry.register(kv_klass())
    context.registry.array_klass(FieldKind.REFERENCE)
    backend_reg = context.backend.serializer.registration
    for k in context.registry:
        backend_reg.register(k)
    return context, klass


def make_records(context, klass, count):
    records = []
    for index in range(count):
        record = context.executor_heap.allocate(klass)
        record.set("key", index)
        record.set("value", index * 10)
        records.append(record)
    return records


class TestTimeBreakdown:
    def test_fractions_sum_to_one(self):
        breakdown = TimeBreakdown(compute_ns=10, gc_ns=20, io_ns=30)
        breakdown.add_operation(
            SDOperation("serialize", "shuffle", 40, 100, 200, 5)
        )
        fractions = breakdown.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert breakdown.sd_fraction == pytest.approx(0.4)

    def test_operation_split(self):
        breakdown = TimeBreakdown()
        breakdown.add_operation(SDOperation("serialize", "cache", 5, 1, 1, 1))
        breakdown.add_operation(SDOperation("deserialize", "cache", 7, 1, 1, 1))
        assert breakdown.serialize_ns == 5
        assert breakdown.deserialize_ns == 7
        assert breakdown.serialize_count == 1
        assert breakdown.deserialize_count == 1

    def test_merge(self):
        a = TimeBreakdown(compute_ns=1)
        b = TimeBreakdown(io_ns=2)
        b.add_operation(SDOperation("serialize", "shuffle", 3, 1, 1, 1))
        a.merge(b)
        assert a.total_ns == pytest.approx(6)

    def test_empty_fractions(self):
        assert TimeBreakdown().fractions()["sd"] == 0.0


class TestEngine:
    def test_parallelize_balances(self):
        context, klass = make_context()
        records = make_records(context, klass, 10)
        dataset = context.parallelize(records, 4)
        sizes = [len(p) for p in dataset.partitions]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_shuffle_preserves_records_and_partitions_by_key(self):
        context, klass = make_context()
        records = make_records(context, klass, 20)
        dataset = context.parallelize(records, 4)
        shuffled = dataset.shuffle(key_fn=lambda r: r.get("key") % 2, num_partitions=2)
        assert shuffled.record_count == 20
        for partition_index, partition in enumerate(shuffled.partitions):
            assert all(r.get("key") % 2 == partition_index for r in partition)

    def test_shuffle_records_are_reconstructed_copies(self):
        context, klass = make_context()
        records = make_records(context, klass, 4)
        dataset = context.parallelize(records, 2)
        shuffled = dataset.shuffle(key_fn=lambda r: 0, num_partitions=1)
        values = sorted(r.get("value") for r in shuffled.partitions[0])
        assert values == [0, 10, 20, 30]
        original = {r.address for r in records}
        assert all(r.address not in original for r in shuffled.partitions[0])

    def test_shuffle_accounts_sd_operations(self):
        context, klass = make_context()
        dataset = context.parallelize(make_records(context, klass, 8), 2)
        dataset.shuffle(key_fn=lambda r: r.get("key"), num_partitions=2)
        assert context.breakdown.serialize_count > 0
        assert context.breakdown.deserialize_count > 0
        assert context.breakdown.sd_ns > 0

    def test_cache_read_multiplies_deserialization(self):
        context, klass = make_context()
        dataset = context.parallelize(make_records(context, klass, 8), 2)
        cached = dataset.cache_serialized()
        base_deser = context.breakdown.deserialize_ns
        first = cached.read()
        after_one = context.breakdown.deserialize_ns
        cached.read()
        after_two = context.breakdown.deserialize_ns
        assert after_one > base_deser
        assert after_two - after_one == pytest.approx(after_one - base_deser)
        assert first.record_count == 8

    def test_collect_reaches_driver_heap(self):
        context, klass = make_context()
        dataset = context.parallelize(make_records(context, klass, 6), 2)
        collected = dataset.collect()
        assert len(collected) == 6
        assert all(r.heap is context.driver_heap for r in collected)

    def test_compute_and_io_accounting(self):
        context, _ = make_context()
        context.account_compute(9e9)  # 9 G instructions at 2.5 IPC, 3.6 GHz
        assert context.breakdown.compute_ns == pytest.approx(1e9)
        context.account_io(500e6)
        assert context.breakdown.io_ns == pytest.approx(1e9)

    def test_gc_charged_for_allocation(self):
        context, klass = make_context()
        context.parallelize(make_records(context, klass, 50), 2)
        assert context.breakdown.gc_ns > 0


class TestBackends:
    def test_software_backend_names(self):
        assert SoftwareBackend(JavaSerializer()).name == "java-builtin"
        assert SoftwareBackend(KryoSerializer()).name == "kryo"

    def test_framework_cost_added(self):
        context, klass = make_context()
        records = make_records(context, klass, 8)
        stream = context.serialize_bucket(records, "shuffle")
        op = context.breakdown.operations[-1]
        framework = context.backend._framework_ns(stream.size_bytes)
        assert op.time_ns > framework  # kernel + framework

    def test_cereal_backend_round_trip(self):
        accelerator = CerealAccelerator()
        context = MiniSparkContext(CerealBackend(accelerator))
        klass = context.registry.register(kv_klass())
        context.registry.array_klass(FieldKind.REFERENCE)
        for k in context.registry:
            accelerator.register_class(k)
        records = make_records(context, klass, 6)
        dataset = context.parallelize(records, 2)
        shuffled = dataset.shuffle(key_fn=lambda r: r.get("key"), num_partitions=2)
        assert shuffled.record_count == 6


@pytest.mark.parametrize("app_name", sorted(SPARK_APPS))
class TestApplications:
    def test_runs_on_kryo(self, app_name):
        result = SPARK_APPS[app_name](SoftwareBackend(KryoSerializer()), scale=0.1)
        assert result.name == app_name
        assert result.total_ns > 0
        assert result.breakdown.sd_ns > 0
        assert result.records > 0

    def test_runs_on_cereal(self, app_name):
        result = SPARK_APPS[app_name](CerealBackend(CerealAccelerator()), scale=0.1)
        assert result.breakdown.sd_ns > 0

    def test_paper_input_documented(self, app_name):
        assert PAPER_INPUT_MB[app_name] > 0


class TestApplicationShapes:
    def test_svm_is_sd_dominated_with_software(self):
        """Figure 2: SVM spends ~90% of its time in S/D with Java S/D."""
        result = SPARK_APPS["svm"](SoftwareBackend(JavaSerializer()), scale=0.25)
        assert result.sd_fraction > 0.6

    def test_cereal_shrinks_sd_share(self):
        kryo = SPARK_APPS["terasort"](SoftwareBackend(KryoSerializer()), scale=0.25)
        cereal = SPARK_APPS["terasort"](CerealBackend(CerealAccelerator()), scale=0.25)
        assert cereal.breakdown.sd_ns < kryo.breakdown.sd_ns

    def test_non_sd_time_backend_invariant(self):
        """Compute/IO must not depend on the serializer choice."""
        kryo = SPARK_APPS["als"](SoftwareBackend(KryoSerializer()), scale=0.2)
        cereal = SPARK_APPS["als"](CerealBackend(CerealAccelerator()), scale=0.2)
        assert kryo.breakdown.compute_ns == pytest.approx(
            cereal.breakdown.compute_ns, rel=1e-6
        )
        assert kryo.breakdown.io_ns == pytest.approx(
            cereal.breakdown.io_ns, rel=1e-6
        )
