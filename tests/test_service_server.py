"""End-to-end tests of the event-loop serialization server."""

import pytest

from repro.common.errors import ConfigError
from repro.faults import FaultInjector, FaultPolicy
from repro.service import (
    AdmissionConfig,
    PoissonWorkload,
    RequestMix,
    SerializationServer,
    ServiceCatalog,
    ServiceConfig,
    SizeClass,
)
from repro.service.slo import (
    BACKEND_CEREAL,
    BACKEND_NONE,
    BACKEND_SOFTWARE,
    OUTCOME_DEGRADED,
    OUTCOME_OK,
    OUTCOME_SHED,
)
from repro.service.workload import KIND_SERIALIZE

_SIZE_CLASSES = (
    SizeClass("small", "tree", objects=24),
    SizeClass("large", "graph", objects=96, fanout=4),
)
_MIX = RequestMix(
    serialize_fraction=0.5, size_weights={"small": 0.8, "large": 0.2}
)


@pytest.fixture(scope="module")
def catalog():
    return ServiceCatalog(size_classes=_SIZE_CLASSES)


def _capacity_qps(catalog):
    """Single-shard serialize-pool saturation rate for this catalog."""
    mean_ns = catalog.mean_service_ns(KIND_SERIALIZE, _MIX.size_weights)
    units = catalog.cereal_config.num_serializer_units
    return units * 1e9 / mean_ns / _MIX.serialize_fraction


def _workload(catalog, load_fraction, num_requests=400, seed=11):
    qps = load_fraction * _capacity_qps(catalog)
    return PoissonWorkload(qps, num_requests, seed=seed, mix=_MIX).generate(
        catalog
    )


class TestServerBasics:
    def test_moderate_load_all_served_on_accelerator(self, catalog):
        server = SerializationServer(
            catalog, ServiceConfig(num_shards=2, functional="all")
        )
        report = server.run(_workload(catalog, 0.4))
        assert report.total_requests == 400
        assert report.shed_requests == 0
        assert report.verified_requests == report.completed_requests
        for record in report.records:
            assert record.outcome == OUTCOME_OK
            assert record.backend == BACKEND_CEREAL
            assert record.finish_ns > record.arrival_ns
            assert record.dispatch_ns >= record.arrival_ns
            assert record.batch_id >= 0

    def test_same_seed_same_report(self, catalog):
        def run():
            server = SerializationServer(
                catalog, ServiceConfig(num_shards=2, functional="off")
            )
            return server.run(_workload(catalog, 0.8)).as_dict()

        assert run() == run()

    def test_latency_rises_with_load(self, catalog):
        def p99(load):
            config = ServiceConfig(
                num_shards=1,
                batch_wait_ns=0.0,
                functional="off",
                admission=AdmissionConfig(
                    max_outstanding=100_000, enable_degrade=False
                ),
            )
            server = SerializationServer(catalog, config)
            return server.run(_workload(catalog, load)).p99()

        light, heavy = p99(0.3), p99(1.4)
        assert heavy > 1.5 * light

    def test_more_shards_cut_tail_latency(self, catalog):
        def p99(shards):
            config = ServiceConfig(
                num_shards=shards,
                batch_wait_ns=0.0,
                functional="off",
                admission=AdmissionConfig(
                    max_outstanding=100_000, enable_degrade=False
                ),
            )
            server = SerializationServer(catalog, config)
            return server.run(_workload(catalog, 1.4)).p99()

        assert p99(4) < p99(1)

    def test_batching_amortizes_dispatch_overhead(self, catalog):
        def goodput(wait_ns):
            config = ServiceConfig(
                num_shards=1,
                batch_wait_ns=wait_ns,
                functional="off",
                admission=AdmissionConfig(
                    max_outstanding=100_000, enable_degrade=False
                ),
            )
            server = SerializationServer(catalog, config)
            report = server.run(_workload(catalog, 1.5, num_requests=800))
            return report.goodput_qps, report.mean_batch_size

        unbatched, size_unbatched = goodput(0.0)
        batched, size_batched = goodput(20_000.0)
        assert size_unbatched == 1.0
        assert size_batched > 1.5
        assert batched > unbatched

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigError):
            ServiceConfig(num_shards=0)
        with pytest.raises(ConfigError):
            ServiceConfig(routing="random")
        with pytest.raises(ConfigError):
            ServiceConfig(engine="fpga")
        with pytest.raises(ConfigError):
            ServiceConfig(functional="sometimes")

    def test_duplicate_request_ids_rejected(self, catalog):
        requests = _workload(catalog, 0.5, num_requests=4)
        requests[1].request_id = requests[0].request_id
        server = SerializationServer(catalog, ServiceConfig(functional="off"))
        with pytest.raises(ConfigError):
            server.run(requests)


class TestRouting:
    def _run(self, catalog, routing, shards=4):
        config = ServiceConfig(
            num_shards=shards, routing=routing, functional="off"
        )
        server = SerializationServer(catalog, config)
        report = server.run(_workload(catalog, 1.0, num_requests=600))
        return server, report

    @pytest.mark.parametrize("routing", ["round-robin", "least-loaded", "size-aware"])
    def test_policies_complete_all_requests(self, catalog, routing):
        _, report = self._run(catalog, routing)
        assert report.completed_requests == report.total_requests

    def test_round_robin_spreads_batches(self, catalog):
        server, _ = self._run(catalog, "round-robin")
        counts = [shard.dispatched_batches for shard in server.shards]
        assert min(counts) > 0
        assert max(counts) - min(counts) <= 1

    def test_least_loaded_uses_every_shard(self, catalog):
        server, _ = self._run(catalog, "least-loaded")
        assert all(shard.dispatched_requests > 0 for shard in server.shards)

    def test_size_aware_isolates_large_batches(self, catalog):
        """All-large traffic lands on the reserved partition only."""
        mix = RequestMix(serialize_fraction=0.5, size_weights={"large": 1.0})
        qps = 0.5 * _capacity_qps(catalog)
        requests = PoissonWorkload(qps, 200, seed=3, mix=mix).generate(catalog)
        config = ServiceConfig(
            num_shards=4,
            routing="size-aware",
            functional="off",
            size_aware_bytes=1,  # every batch counts as large
        )
        server = SerializationServer(catalog, config)
        server.run(requests)
        assert server.shards[0].dispatched_requests == 200
        assert all(s.dispatched_requests == 0 for s in server.shards[1:])

    def test_size_aware_keeps_small_batches_off_reserved_shard(self, catalog):
        mix = RequestMix(serialize_fraction=0.5, size_weights={"small": 1.0})
        qps = 0.5 * _capacity_qps(catalog)
        requests = PoissonWorkload(qps, 200, seed=3, mix=mix).generate(catalog)
        config = ServiceConfig(
            num_shards=4,
            routing="size-aware",
            functional="off",
            size_aware_bytes=1 << 30,  # nothing counts as large
        )
        server = SerializationServer(catalog, config)
        server.run(requests)
        assert server.shards[0].dispatched_requests == 0
        assert sum(s.dispatched_requests for s in server.shards[1:]) == 200


class TestDegradeAndShed:
    def test_overload_degrades_then_sheds(self, catalog):
        config = ServiceConfig(
            num_shards=1,
            functional="off",
            admission=AdmissionConfig(
                max_outstanding=64, degrade_threshold=0.5
            ),
        )
        server = SerializationServer(catalog, config)
        report = server.run(_workload(catalog, 3.0, num_requests=800))
        assert report.degraded_requests > 0
        assert report.shed_requests > 0
        assert report.completed_requests + report.shed_requests == 800
        for record in report.records:
            if record.outcome == OUTCOME_SHED:
                assert record.backend == BACKEND_NONE
            elif record.outcome == OUTCOME_DEGRADED:
                assert record.backend == BACKEND_SOFTWARE
        summary = report.as_dict()
        assert summary["requests"]["shed"] == report.shed_requests
        assert summary["requests"]["degraded"] == report.degraded_requests
        assert summary["throughput"]["shed_rate"] > 0

    def test_chaos_faults_degrade_without_dropping_requests(self, catalog):
        """Acceptance: capacity faults shed/degrade but never lose work.

        ``functional="all"`` makes the server actually execute and
        round-trip-check every admitted request it claims completed, so
        correctness under the fault schedule is verified, not assumed.
        """
        injector = FaultInjector(
            FaultPolicy(seed=0xC405, accelerator_fault_prob=0.2)
        )
        config = ServiceConfig(
            num_shards=1,
            functional="all",
            admission=AdmissionConfig(
                max_outstanding=128, degrade_threshold=0.75
            ),
        )
        server = SerializationServer(catalog, config, injector=injector)
        report = server.run(_workload(catalog, 1.5, num_requests=600))

        # Nothing is silently lost: every request is accounted for, and
        # every completed one was functionally verified.
        assert report.completed_requests + report.shed_requests == 600
        assert report.verified_requests == report.completed_requests

        # The fault schedule actually fired, and every fault was recovered
        # by falling back to the software lane.
        layer = report.fault_report.layer("accelerator")
        assert layer.injected > 0
        assert layer.recovered == layer.injected
        assert layer.fallbacks > 0
        assert report.degraded_batches > 0
        fallback_requests = sum(
            1
            for r in report.records
            if r.outcome == OUTCOME_DEGRADED and r.batch_id >= 0
        )
        assert fallback_requests == layer.fallbacks

        # The counts surface in the machine-readable report.
        summary = report.as_dict()
        assert summary["faults"]["accelerator"]["injected"] == layer.injected
        assert summary["batching"]["degraded_batches"] == report.degraded_batches
        assert summary["requests"]["degraded"] == report.degraded_requests

    def test_degraded_requests_use_software_timing(self, catalog):
        config = ServiceConfig(
            num_shards=1,
            functional="off",
            admission=AdmissionConfig(
                max_outstanding=32, degrade_threshold=0.25
            ),
        )
        server = SerializationServer(catalog, config)
        report = server.run(_workload(catalog, 3.0, num_requests=400))
        degraded = [
            r for r in report.records if r.outcome == OUTCOME_DEGRADED
        ]
        assert degraded
        assert server.software.served == len(degraded)


class TestDeviceEngine:
    def test_device_engine_serves_and_verifies(self, catalog):
        config = ServiceConfig(
            num_shards=2, engine="device", functional="off"
        )
        server = SerializationServer(catalog, config)
        report = server.run(_workload(catalog, 0.5, num_requests=60))
        assert report.completed_requests == 60
        assert all(r.backend == BACKEND_CEREAL for r in report.records)

    def test_device_and_analytic_agree_on_outcomes(self, catalog):
        """Same workload, same admission outcomes on both engines."""
        requests = _workload(catalog, 0.5, num_requests=60)

        def outcomes(engine):
            server = SerializationServer(
                catalog,
                ServiceConfig(num_shards=2, engine=engine, functional="off"),
            )
            report = server.run(list(requests))
            return [r.outcome for r in report.records]

        assert outcomes("analytic") == outcomes("device")
