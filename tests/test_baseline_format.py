"""Tests for the Section IV-A baseline Cereal format (packing disabled)."""

import pytest

from repro.cereal.du import DUWorkload
from repro.formats import CerealSerializer, ClassRegistration, graphs_equivalent
from repro.jvm import Heap
from tests.test_serializers import (
    build_cycle,
    build_reference_array,
    build_shared,
    build_tree,
    make_registry,
)


@pytest.fixture
def setup():
    registry = make_registry()
    registration = ClassRegistration()
    for klass in registry:
        registration.register(klass)
    packed = CerealSerializer(registration)
    baseline = CerealSerializer(registration, use_packing=False)
    heap = Heap(registry=registry)
    return registry, packed, baseline, heap


class TestBaselineRoundTrip:
    @pytest.mark.parametrize(
        "builder", [build_tree, build_shared, build_cycle, build_reference_array]
    )
    def test_round_trip(self, setup, builder):
        registry, _, baseline, heap = setup
        root = builder(heap)
        receiver = Heap(registry=registry)
        rebuilt = baseline.round_trip(root, receiver)
        assert graphs_equivalent(root, rebuilt)

    def test_streams_self_describing(self, setup):
        """A packed decoder reads a baseline stream via the flags byte."""
        registry, packed, baseline, heap = setup
        root = build_tree(heap, depth=4)
        stream = baseline.serialize(root).stream
        receiver = Heap(registry=registry)
        # Deserializing with the *packed* serializer instance must work:
        # the format flag in the stream drives decoding.
        rebuilt = packed.deserialize(stream, receiver).root
        assert graphs_equivalent(root, rebuilt)

    def test_sections_flagging(self, setup):
        _, packed, baseline, heap = setup
        root = build_tree(heap, depth=3)
        packed_sections = CerealSerializer.decode_sections(
            packed.serialize(root).stream
        )
        baseline_sections = CerealSerializer.decode_sections(
            baseline.serialize(root).stream
        )
        assert packed_sections.packed is True
        assert baseline_sections.packed is False
        assert (
            packed_sections.reference_values()
            == baseline_sections.reference_values()
        )
        assert (
            packed_sections.layout_bitmaps()
            == baseline_sections.layout_bitmaps()
        )


class TestBaselineSizeOverhead:
    def test_packing_shrinks_the_stream(self, setup):
        """Section IV-B exists because IV-A is bigger — verify directly."""
        _, packed, baseline, heap = setup
        root = build_tree(heap, depth=7)
        packed_size = packed.serialize(root).stream.size_bytes
        baseline_size = baseline.serialize(root).stream.size_bytes
        assert packed_size < baseline_size

    def test_baseline_metadata_is_8b_per_ref_and_object(self, setup):
        _, _, baseline, heap = setup
        root = build_tree(heap, depth=4)
        stream = baseline.serialize(root).stream
        sections = CerealSerializer.decode_sections(stream)
        assert stream.sections["reference_array"] == 8 * sections.reference_count
        expected_bitmap = sum(
            8 + (len(b) + 7) // 8 for b in sections.layout_bitmaps()
        )
        assert stream.sections["layout_bitmap"] == expected_bitmap


class TestBaselineOnAccelerator:
    def test_du_workload_from_baseline_stream(self, setup):
        _, _, baseline, heap = setup
        root = build_tree(heap, depth=4)
        sections = CerealSerializer.decode_sections(
            baseline.serialize(root).stream
        )
        workload = DUWorkload.from_stream_sections(sections)
        slot_total = sum(
            b.value_slots + b.reference_slots for b in workload.blocks
        )
        assert slot_total * 8 == workload.image_bytes
        assert workload.reference_array_bytes == 8 * sections.reference_count

    def test_baseline_stream_costs_more_du_bandwidth(self, setup):
        """The DU reads more reference/bitmap bytes without packing."""
        registry, packed, baseline, heap = setup
        root = build_tree(heap, depth=7)
        packed_sections = CerealSerializer.decode_sections(
            packed.serialize(root).stream
        )
        baseline_sections = CerealSerializer.decode_sections(
            baseline.serialize(root).stream
        )
        packed_wl = DUWorkload.from_stream_sections(packed_sections)
        baseline_wl = DUWorkload.from_stream_sections(baseline_sections)
        assert (
            baseline_wl.reference_array_bytes > packed_wl.reference_array_bytes
        )
        assert baseline_wl.bitmap_bytes > packed_wl.bitmap_bytes
