"""Tests for the shared-DRAM device simulator and the interval channel."""

import pytest

from repro.cereal import CerealAccelerator, DeviceSimulator
from repro.common.config import CerealConfig
from repro.common.errors import SimulationError
from repro.formats import graphs_equivalent
from repro.jvm import Heap
from repro.memory.dram import DRAMModel, _IntervalChannel
from tests.test_serializers import build_tree, make_registry


class TestIntervalChannel:
    def test_empty_channel_starts_at_issue(self):
        channel = _IntervalChannel()
        assert channel.schedule(100.0, 5.0) == 100.0

    def test_back_to_back_queues(self):
        channel = _IntervalChannel()
        channel.schedule(0.0, 10.0)
        assert channel.schedule(0.0, 10.0) == 10.0

    def test_out_of_order_fills_gap(self):
        channel = _IntervalChannel()
        channel.schedule(0.0, 10.0)  # [0, 10)
        channel.schedule(50.0, 10.0)  # [50, 60)
        # A later-issued access with an earlier timestamp fits the gap.
        assert channel.schedule(20.0, 10.0) == 20.0

    def test_gap_too_small_skipped(self):
        channel = _IntervalChannel()
        channel.schedule(0.0, 10.0)  # [0, 10)
        channel.schedule(15.0, 10.0)  # [15, 25)
        # A 10-unit access cannot fit in the 5-unit gap [10, 15).
        assert channel.schedule(5.0, 10.0) == 25.0

    def test_issue_inside_busy_interval(self):
        channel = _IntervalChannel()
        channel.schedule(0.0, 20.0)  # [0, 20)
        assert channel.schedule(5.0, 5.0) == 20.0

    def test_many_insertions_remain_sorted(self):
        channel = _IntervalChannel()
        starts = [channel.schedule(t, 1.0) for t in (50, 10, 30, 10, 50, 0)]
        assert all(s >= t for s, t in zip(starts, (50, 10, 30, 10, 50, 0)))
        assert channel._starts == sorted(channel._starts)


class TestOutOfOrderDRAM:
    def test_early_issue_not_queued_behind_late(self):
        in_order = DRAMModel()
        out_of_order = DRAMModel(out_of_order=True)
        for dram in (in_order, out_of_order):
            dram.access(10_000.0, 0, 64, is_write=False)  # late traffic
        blocked = in_order.access(0.0, 0, 64, is_write=False)
        unblocked = out_of_order.access(0.0, 0, 64, is_write=False)
        assert blocked > 10_000.0
        assert unblocked < 100.0

    def test_reset_clears_intervals(self):
        dram = DRAMModel(out_of_order=True)
        dram.access(0.0, 0, 64, is_write=False)
        dram.reset()
        assert dram.access(0.0, 0, 64, is_write=False) < 100.0


@pytest.fixture
def device():
    registry = make_registry()
    accelerator = CerealAccelerator()
    for klass in registry:
        accelerator.register_class(klass)
    heap = Heap(registry=registry)
    return registry, accelerator, heap, DeviceSimulator(accelerator)


class TestDeviceSimulator:
    def test_empty_batch(self, device):
        _, _, _, simulator = device
        result = simulator.run([])
        assert result.wall_time_ns == 0.0
        assert result.operations == []

    def test_pool_overlap_near_single_op_time(self, device):
        """Eight independent serializations on eight SUs ~ one op's time."""
        _, accelerator, heap, simulator = device
        roots = [build_tree(heap, depth=7) for _ in range(8)]
        _, single, _ = accelerator.serialize(build_tree(heap, depth=7))
        batch = simulator.run([("serialize", root) for root in roots])
        assert batch.wall_time_ns < 1.8 * single.elapsed_ns

    def test_oversubscription_queues_on_units(self, device):
        _, accelerator, heap, simulator = device
        roots = [build_tree(heap, depth=6) for _ in range(16)]
        batch_8 = simulator.run([("serialize", root) for root in roots[:8]])
        batch_16 = simulator.run([("serialize", root) for root in roots])
        assert batch_16.wall_time_ns > 1.5 * batch_8.wall_time_ns

    def test_device_bandwidth_scales_with_busy_units(self, device):
        _, _, heap, simulator = device
        one = simulator.run([("serialize", build_tree(heap, depth=7))])
        eight = simulator.run(
            [("serialize", build_tree(heap, depth=7)) for _ in range(8)]
        )
        assert eight.bandwidth_utilization > 4 * one.bandwidth_utilization

    def test_deserialize_wave_functional_and_fast(self, device):
        registry, _, heap, simulator = device
        roots = [build_tree(heap, depth=5) for _ in range(4)]
        ser = simulator.run([("serialize", root) for root in roots])
        receivers = [Heap(registry=registry) for _ in range(4)]
        deser = simulator.run(
            [
                ("deserialize", op.stream, receiver)
                for op, receiver in zip(ser.operations, receivers)
            ]
        )
        for root, op in zip(roots, deser.operations):
            assert graphs_equivalent(root, op.root)
        assert deser.wall_time_ns > 0

    def test_mixed_batch_uses_both_pools(self, device):
        registry, _, heap, simulator = device
        root = build_tree(heap, depth=5)
        ser = simulator.run([("serialize", root)])
        stream = ser.operations[0].stream
        mixed = simulator.run(
            [
                ("serialize", build_tree(heap, depth=5)),
                ("deserialize", stream, Heap(registry=registry)),
            ]
        )
        kinds = {op.kind for op in mixed.operations}
        assert kinds == {"serialize", "deserialize"}
        # Both pools start immediately: neither op waits for the other.
        assert all(op.start_ns == 0.0 for op in mixed.operations)

    def test_unknown_request_kind_rejected(self, device):
        _, _, heap, simulator = device
        with pytest.raises(SimulationError):
            simulator.run([("compress", build_tree(heap, depth=2))])

    def test_small_pool_config_respected(self):
        registry = make_registry()
        accelerator = CerealAccelerator(CerealConfig(num_serializer_units=2))
        for klass in registry:
            accelerator.register_class(klass)
        heap = Heap(registry=registry)
        simulator = DeviceSimulator(accelerator)
        roots = [build_tree(heap, depth=5) for _ in range(4)]
        result = simulator.run([("serialize", root) for root in roots])
        assert {op.unit_index for op in result.operations} == {0, 1}


def _oversubscribed_run(device, num_serialize=20, num_deserialize=8):
    """A run with more requests than units, with uneven op sizes."""
    registry, _, heap, simulator = device
    depths = [3 + (i % 5) for i in range(num_serialize)]
    roots = [build_tree(heap, depth=depth) for depth in depths]
    ser = simulator.run([("serialize", root) for root in roots])
    requests = [("serialize", root) for root in roots]
    requests.extend(
        ("deserialize", op.stream, Heap(registry=registry))
        for op in ser.operations[:num_deserialize]
    )
    return simulator, simulator.run(requests)


class TestSchedulingInvariants:
    """Invariants of the earliest-free-unit dispatch policy.

    ``DeviceRunResult.unit_timeline()`` groups completed operations per
    physical unit in dispatch order; the policy's contract is checked by
    replaying dispatch over the recorded start/finish times.
    """

    def test_no_overlap_on_any_unit(self, device):
        _, result = _oversubscribed_run(device)
        for (kind, unit), ops in result.unit_timeline().items():
            for earlier, later in zip(ops, ops[1:]):
                assert later.start_ns >= earlier.finish_ns, (
                    f"{kind} unit {unit}: op starting at {later.start_ns} "
                    f"overlaps op finishing at {earlier.finish_ns}"
                )

    def test_finish_times_monotone_per_unit(self, device):
        _, result = _oversubscribed_run(device)
        for (kind, unit), ops in result.unit_timeline().items():
            finishes = [op.finish_ns for op in ops]
            assert finishes == sorted(finishes), (
                f"{kind} unit {unit}: finish times {finishes} not monotone"
            )
            for op in ops:
                assert op.finish_ns > op.start_ns

    def test_dispatch_picks_earliest_free_unit(self, device):
        """Greedy replay: each op must land on the unit that freed first.

        Ties break to the lowest unit index, matching ``min`` over the
        free-time list.
        """
        simulator, result = _oversubscribed_run(device)
        pools = {
            "serialize": [0.0] * simulator.config.num_serializer_units,
            "deserialize": [0.0] * simulator.config.num_deserializer_units,
        }
        for op in result.operations:
            free = pools[op.kind]
            expected_unit = min(range(len(free)), key=free.__getitem__)
            assert op.unit_index == expected_unit
            assert op.start_ns == free[expected_unit]
            free[expected_unit] = op.finish_ns

    def test_pools_are_independent(self, device):
        """Serialize load never delays deserialize dispatch (own pool)."""
        _, result = _oversubscribed_run(device)
        du_count = len(
            [op for op in result.operations if op.kind == "deserialize"]
        )
        du_pool = {
            unit
            for (kind, unit) in result.unit_timeline()
            if kind == "deserialize"
        }
        assert du_pool == set(range(min(du_count, 8)))
        first_deser = next(
            op for op in result.operations if op.kind == "deserialize"
        )
        assert first_deser.start_ns == 0.0
