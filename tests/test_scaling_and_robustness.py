"""Scale stability of the modelled speedups, and corruption robustness.

DESIGN.md claims the reproduction's speedups are ratios of modelled
cycles/bytes and therefore scale-stable; the first half verifies that the
key ratios move only mildly when the workload doubles. The second half
injects random corruption into serialized streams and requires every
decoder to fail with a *library* error (or produce a structurally valid
graph) — never an unrelated crash.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cereal import CerealAccelerator
from repro.common.config import HostCPUConfig, SystemConfig
from repro.common.errors import CerealError
from repro.cpu import SoftwarePlatform
from repro.formats import (
    CerealSerializer,
    ClassRegistration,
    JavaSerializer,
    KryoSerializer,
    SerializedStream,
    SkywaySerializer,
)
from repro.jvm import Heap
from tests.test_serializers import build_tree, make_registry, make_serializer


def _speedup_at_depth(depth):
    """(kryo_deser_speedup, cereal_ser_speedup) on a tree of ``depth``."""
    registry = make_registry()
    platform = SoftwarePlatform(SystemConfig(host=HostCPUConfig().scaled_caches(100)))

    heap = Heap(registry=registry)
    receiver = Heap(registry=registry)
    root = build_tree(heap, depth=depth)
    java_ser, java_de = platform.round_trip_timings(
        make_serializer("java", registry), root, receiver
    )
    heap2 = Heap(registry=registry)
    receiver2 = Heap(registry=registry)
    root2 = build_tree(heap2, depth=depth)
    kryo_ser, kryo_de = platform.round_trip_timings(
        make_serializer("kryo", registry), root2, receiver2
    )

    heap3 = Heap(registry=registry)
    root3 = build_tree(heap3, depth=depth)
    accelerator = CerealAccelerator()
    for klass in registry:
        accelerator.register_class(klass)
    _, cereal_ser, _ = accelerator.serialize(root3)

    return (
        java_de.time_ns / kryo_de.time_ns,
        java_ser.time_ns / cereal_ser.elapsed_ns,
    )


class TestScaleStability:
    def test_ratios_stable_when_workload_doubles(self):
        kryo_small, cereal_small = _speedup_at_depth(9)  # 1023 objects
        kryo_large, cereal_large = _speedup_at_depth(10)  # 2047 objects
        assert kryo_large / kryo_small == pytest.approx(1.0, abs=0.35)
        assert cereal_large / cereal_small == pytest.approx(1.0, abs=0.35)

    def test_cereal_throughput_grows_with_size(self):
        """Fixed costs amortize: bigger graphs get closer to peak rate."""
        registry = make_registry()
        accelerator = CerealAccelerator()
        for klass in registry:
            accelerator.register_class(klass)
        heap = Heap(registry=registry)
        small = build_tree(heap, depth=5)
        large = build_tree(heap, depth=10)
        _, t_small, _ = accelerator.serialize(small)
        _, t_large, _ = accelerator.serialize(large)
        assert (
            t_large.throughput_bytes_per_sec
            >= 0.9 * t_small.throughput_bytes_per_sec
        )


def _corrupt(data: bytes, position: int, value: int) -> bytes:
    mutated = bytearray(data)
    mutated[position % len(mutated)] ^= value or 0xFF
    return bytes(mutated)


_SERIALIZER_KINDS = ["java", "kryo", "skyway", "cereal"]

_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.mark.parametrize("serializer_kind", _SERIALIZER_KINDS)
class TestCorruptionRobustness:
    @_SETTINGS
    @given(position=st.integers(0, 10_000), flip=st.integers(1, 255))
    def test_corrupted_stream_fails_safely(self, serializer_kind, position, flip):
        registry = make_registry()
        heap = Heap(registry=registry)
        receiver = Heap(registry=registry)
        serializer = make_serializer(serializer_kind, registry)
        stream = serializer.serialize(build_tree(heap, depth=4)).stream
        corrupted = SerializedStream(
            format_name=stream.format_name,
            data=_corrupt(stream.data, position, flip),
            sections=dict(stream.sections),
        )
        try:
            result = serializer.deserialize(corrupted, receiver)
        except CerealError:
            return  # detected: a library error, the acceptable outcome
        except (OverflowError, MemoryError):
            pytest.fail("corruption escaped the format layer's validation")
        # Undetected corruption must still have produced real heap objects
        # (e.g. a flipped primitive value), never a dangling structure.
        graph_root = result.root
        assert graph_root.klass.name
        for obj in _walk_safely(graph_root):
            assert obj.size_bytes > 0


def _walk_safely(root, limit=10_000):
    from repro.jvm import traverse_object_graph

    count = 0
    for obj in traverse_object_graph(root):
        yield obj
        count += 1
        if count > limit:
            raise AssertionError("corrupted graph walk did not terminate")


@pytest.mark.parametrize("serializer_kind", _SERIALIZER_KINDS)
class TestFramedCorruptionDetection:
    """With checksummed framing, corruption detection must be *total*.

    The unframed contract above is fail-safely: decoders may crash with a
    library error or produce a structurally valid (but wrong) graph. The
    CRC32 frame upgrades that to fail-loudly: any corrupted byte —
    header or payload — raises :class:`CorruptionError`, so no silently
    wrong graph can ever leave the transfer layer.
    """

    @_SETTINGS
    @given(position=st.integers(0, 10_000), flip=st.integers(1, 255))
    def test_framed_corruption_always_detected(
        self, serializer_kind, position, flip
    ):
        from repro.common.errors import CorruptionError

        registry = make_registry()
        heap = Heap(registry=registry)
        serializer = make_serializer(serializer_kind, registry)
        framed = serializer.serialize(build_tree(heap, depth=4)).stream.framed()
        corrupted = SerializedStream(
            format_name=framed.format_name,
            data=_corrupt(framed.data, position, flip),
            sections=dict(framed.sections),
        )
        with pytest.raises(CorruptionError):
            corrupted.unframed()

    @_SETTINGS
    @given(cut=st.integers(1, 200))
    def test_framed_truncation_always_detected(self, serializer_kind, cut):
        from repro.common.errors import CorruptionError

        registry = make_registry()
        heap = Heap(registry=registry)
        serializer = make_serializer(serializer_kind, registry)
        framed = serializer.serialize(build_tree(heap, depth=4)).stream.framed()
        truncated = SerializedStream(
            format_name=framed.format_name,
            data=framed.data[: max(0, len(framed.data) - cut)],
            sections=dict(framed.sections),
        )
        with pytest.raises(CorruptionError):
            truncated.unframed()

    def test_intact_frame_round_trips(self, serializer_kind):
        registry = make_registry()
        heap = Heap(registry=registry)
        receiver = Heap(registry=registry)
        serializer = make_serializer(serializer_kind, registry)
        stream = serializer.serialize(build_tree(heap, depth=4)).stream
        recovered = stream.framed().unframed()
        assert recovered.data == stream.data
        result = serializer.deserialize(recovered, receiver)
        assert result.root.klass.name
