"""Tests for the analysis/report helpers and the summary tool."""

import os

import pytest

from repro.analysis import ReportTable, format_speedup, geomean
from repro.analysis.summary import build_summary, collect_reports


class TestGeomean:
    def test_basic(self):
        assert geomean([1, 4]) == pytest.approx(2.0)

    def test_single(self):
        assert geomean([7.0]) == pytest.approx(7.0)

    def test_empty(self):
        assert geomean([]) == 0.0

    def test_ignores_non_positive(self):
        assert geomean([0.0, 4.0, -1.0]) == pytest.approx(4.0)

    def test_order_invariant(self):
        assert geomean([2, 8, 32]) == pytest.approx(geomean([32, 2, 8]))


class TestFormatSpeedup:
    def test_format(self):
        assert format_speedup(2.345) == "2.35x"


class TestReportTable:
    def make_table(self):
        table = ReportTable("Demo", ["name", "value"])
        table.add_row("alpha", 1.5)
        table.add_row("beta", "raw")
        return table

    def test_render_contains_title_and_rows(self):
        text = self.make_table().render()
        assert "Demo" in text
        assert "alpha" in text
        assert "1.50" in text
        assert "raw" in text

    def test_row_arity_checked(self):
        table = ReportTable("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_small_floats_get_more_precision(self):
        table = ReportTable("Demo", ["v"])
        table.add_row(0.0042)
        assert "0.0042" in table.render()

    def test_notes_rendered(self):
        table = self.make_table()
        table.add_note("context matters")
        assert "note: context matters" in table.render()

    def test_columns_aligned(self):
        text = self.make_table().render()
        lines = text.splitlines()
        header = next(line for line in lines if "name" in line)
        separator = lines[lines.index(header) + 1]
        assert len(separator) == len(header)

    def test_save_round_trip(self, tmp_path):
        table = self.make_table()
        path = table.save(str(tmp_path), "demo")
        with open(path) as handle:
            assert "alpha" in handle.read()


class TestSummary:
    def _populate(self, directory):
        for name in ("fig10_serialize", "zz_custom"):
            table = ReportTable(name, ["k"])
            table.add_row(name)
            table.save(str(directory), name)

    def test_collect_orders_known_first(self, tmp_path):
        self._populate(tmp_path)
        reports = collect_reports(str(tmp_path))
        assert [name for name, _ in reports] == ["fig10_serialize", "zz_custom"]

    def test_build_summary_contains_everything(self, tmp_path):
        self._populate(tmp_path)
        summary = build_summary(str(tmp_path))
        assert "fig10_serialize" in summary
        assert "zz_custom" in summary
        assert "2 tables" in summary

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_reports(str(tmp_path / "nope"))

    def test_summary_file_excluded_from_collection(self, tmp_path):
        self._populate(tmp_path)
        with open(os.path.join(tmp_path, "SUMMARY.txt"), "w") as handle:
            handle.write("previous run")
        reports = collect_reports(str(tmp_path))
        assert all(name != "SUMMARY" for name, _ in reports)
