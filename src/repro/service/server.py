"""The event-loop serialization server: shards, routing, degrade lane.

:class:`SerializationServer` advances virtual time over an open-loop
request sequence. Each arriving request passes admission control, joins
the batch coalescer, and — when its batch closes — is dispatched to one of
N accelerator *shards* (each shard owns a full Cereal device:
:class:`~repro.cereal.accelerator.CerealAccelerator` plus
:class:`~repro.cereal.device_sim.DeviceSimulator`) or to the CPU
*software lane* when admission degrades it or a capacity fault knocks the
batch off the accelerator path.

Two shard engines share one scheduling contract:

* ``analytic`` (default): replays the catalog's cached single-operation
  timings through the same earliest-free-unit dispatch the device
  simulator uses, plus a per-batch dispatch overhead on every unit a
  batch touches and the shared-DRAM bandwidth floor. Fast enough for
  million-request sweeps.
* ``device``: runs the real :class:`DeviceSimulator` (functional codec +
  cycle model, shared-channel contention) per batch. Slow but exact; the
  tests use it to validate the analytic engine's scheduling.

Virtual time is event-driven: arrivals, batch deadlines, and completions
are the only points where state changes, so a 10k-request run takes
milliseconds of wall clock in analytic mode.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cereal.accelerator import CerealAccelerator
from repro.cereal.device_sim import DeviceSimulator
from repro.common.config import CerealConfig, DRAMConfig
from repro.common.errors import ConfigError, SimulationError
from repro.common.bufpool import pool_stats
from repro.faults.injector import FaultInjector
from repro.formats.codegen import codegen_cache_stats
from repro.formats.plans import plan_cache_stats
from repro.formats.secure import decode_stats
from repro.formats.verify import graphs_equivalent
from repro.jvm.heap import Heap
from repro.jvm.layout_cache import stats as layout_cache_stats
from repro.obs.trace import Tracer, get_tracer
from repro.service.admission import (
    DECISION_DEGRADE,
    DECISION_SHED,
    AdmissionConfig,
    AdmissionController,
)
from repro.service.batching import Batch, BatchCoalescer
from repro.service.slo import (
    BACKEND_CEREAL,
    BACKEND_NONE,
    BACKEND_SOFTWARE,
    OUTCOME_DEGRADED,
    OUTCOME_OK,
    OUTCOME_REJECTED,
    OUTCOME_SHED,
    RequestRecord,
    SLOReport,
)
from repro.service.streaming import ResponseStreamer, StreamingConfig
from repro.service.timing_cache import device_batch_cache
from repro.service.workload import (
    KIND_SERIALIZE,
    ServiceCatalog,
    ServiceRequest,
)

ROUTING_POLICIES = ("round-robin", "least-loaded", "size-aware")
ENGINES = ("analytic", "device")
FUNCTIONAL_MODES = ("off", "sample", "all")


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one service deployment."""

    num_shards: int = 2
    routing: str = "least-loaded"
    max_batch_requests: int = 8
    max_batch_bytes: int = 1 << 20
    batch_wait_ns: float = 20_000.0
    #: Command-queue descriptor setup + doorbell + DMA programming, paid
    #: once per dispatch on every unit the batch occupies.
    dispatch_overhead_ns: float = 2_000.0
    software_workers: int = 4
    software_overhead_ns: float = 1_000.0
    engine: str = "analytic"
    functional: str = "sample"
    functional_every: int = 16
    #: Batches at or above this payload route to the large-partition
    #: shards under the size-aware policy.
    size_aware_bytes: int = 16 * 1024
    admission: AdmissionConfig = dataclass_field(default_factory=AdmissionConfig)
    #: When set, large responses leave chunk by chunk with bounded
    #: in-flight arenas (see :mod:`repro.service.streaming`); ``None``
    #: keeps the legacy whole-response egress.
    streaming: Optional[StreamingConfig] = None

    def __post_init__(self) -> None:
        if self.num_shards <= 0:
            raise ConfigError("num_shards must be positive")
        if self.routing not in ROUTING_POLICIES:
            raise ConfigError(
                f"unknown routing policy {self.routing!r}; "
                f"choose from {ROUTING_POLICIES}"
            )
        if self.engine not in ENGINES:
            raise ConfigError(f"unknown engine {self.engine!r}")
        if self.functional not in FUNCTIONAL_MODES:
            raise ConfigError(f"unknown functional mode {self.functional!r}")
        if self.functional_every <= 0:
            raise ConfigError("functional_every must be positive")
        if self.software_workers <= 0:
            raise ConfigError("software_workers must be positive")
        if self.dispatch_overhead_ns < 0 or self.software_overhead_ns < 0:
            raise ConfigError("overheads must be non-negative")


class AcceleratorShard:
    """One Cereal device plus its scheduling state inside the server."""

    def __init__(
        self,
        shard_id: int,
        catalog: ServiceCatalog,
        cereal_config: CerealConfig,
        dram_config: DRAMConfig,
    ):
        self.shard_id = shard_id
        self._cereal_config = cereal_config
        self._dram_config = dram_config
        self.accelerator = CerealAccelerator(
            cereal_config, dram_config, registration=catalog.registration
        )
        self.simulator = DeviceSimulator(self.accelerator)
        self.su_free = [0.0] * cereal_config.num_serializer_units
        self.du_free = [0.0] * cereal_config.num_deserializer_units
        self.busy_until = 0.0  # device-engine batches run back-to-back
        self.dispatched_batches = 0
        self.dispatched_requests = 0

    def _pool(self, kind: str) -> List[float]:
        return self.su_free if kind == KIND_SERIALIZE else self.du_free

    def backlog_ns(self, kind: str, now_ns: float) -> float:
        """Pending work on this shard's pool for ``kind`` at ``now_ns``."""
        backlog = sum(max(0.0, f - now_ns) for f in self._pool(kind))
        return backlog + max(0.0, self.busy_until - now_ns)

    # -- analytic engine ------------------------------------------------------------

    def service_analytic(
        self, batch: Batch, now_ns: float, overhead_ns: float
    ) -> List[Tuple[ServiceRequest, float]]:
        """Schedule the batch on the unit pool; returns (request, finish).

        Mirrors the device simulator's policy: longest operation first,
        each to the earliest-free unit. Every unit the batch touches pays
        the dispatch overhead once, so single-request batches cannot
        amortize it. The shared-DRAM bandwidth floor then pushes the whole
        batch's completions out if aggregate traffic exceeds the DDR4 peak.
        """
        pool = self._pool(batch.kind)
        dram = self.accelerator.dram_config
        touched: Dict[int, bool] = {}
        finishes: List[Tuple[ServiceRequest, float]] = []
        total_dram_bytes = 0
        ordered = sorted(
            batch.requests, key=lambda r: (-r.accel_timing.elapsed_ns, r.request_id)
        )
        for request in ordered:
            unit = min(range(len(pool)), key=lambda i: (pool[i], i))
            begin = max(pool[unit], now_ns)
            if unit not in touched:
                touched[unit] = True
                begin += overhead_ns
            finish = begin + request.accel_timing.elapsed_ns
            pool[unit] = finish
            total_dram_bytes += request.accel_timing.dram_bytes
            finishes.append((request, finish))
        # Bandwidth floor: the batch cannot finish faster than its DRAM
        # traffic drains at peak bandwidth.
        wall = max(f for _, f in finishes) - now_ns
        floor = total_dram_bytes / dram.peak_bandwidth_bytes_per_sec * 1e9
        if floor > wall:
            delta = floor - wall
            finishes = [(r, f + delta) for r, f in finishes]
            for unit in touched:
                pool[unit] += delta
        self.dispatched_batches += 1
        self.dispatched_requests += batch.size
        return finishes

    # -- device engine -------------------------------------------------------------------

    def service_device(
        self,
        batch: Batch,
        now_ns: float,
        overhead_ns: float,
        tracer: Optional[Tracer] = None,
        parent=None,
        track: Optional[str] = None,
    ) -> List[Tuple[ServiceRequest, float]]:
        """Run the batch through the real device simulator.

        The simulator owns per-batch unit state, so batches on one shard
        execute back-to-back (``busy_until``); within a batch the full
        shared-channel contention model applies. Deserialize requests
        decode onto fresh heaps — functional correctness is inherent here.

        Batch timelines are deterministic in the batch's composition (the
        kinds and catalog entries it contains) and the device configs, so
        repeated compositions replay the first verified execution's
        timeline from an LRU instead of re-running the simulator.

        When ``tracer`` is enabled, a fresh simulator run emits per-unit
        child spans under ``parent`` on this shard's track; cached replays
        only retain request finish times, so unit activity appears in the
        trace the first time a batch composition executes.
        """
        start = max(now_ns, self.busy_until) + overhead_ns
        cache_key = (
            self._cereal_config,
            self._dram_config,
            batch.kind,
            tuple(request.entry.stream_digest for request in batch.requests),
        )
        cached = device_batch_cache.get(cache_key)
        if cached is not None:
            wall_time_ns, relative_finishes = cached
            self.busy_until = start + wall_time_ns
            self.dispatched_batches += 1
            self.dispatched_requests += batch.size
            return [
                (request, start + finish_ns)
                for request, finish_ns in zip(batch.requests, relative_finishes)
            ]
        device_requests = []
        for request in batch.requests:
            if request.kind == KIND_SERIALIZE:
                device_requests.append(("serialize", request.entry.root))
            else:
                receiver = Heap(registry=request.entry.root.heap.registry)
                device_requests.append(
                    ("deserialize", request.entry.stream, receiver)
                )
        run = self.simulator.run(device_requests)
        if tracer is not None and tracer.enabled:
            run.emit_spans(
                tracer,
                base_ns=start,
                parent=parent,
                track=track if track is not None else f"shard{self.shard_id}",
            )
        self.busy_until = start + run.wall_time_ns
        finishes = []
        for request, op in zip(batch.requests, run.operations):
            if op.root is not None and not graphs_equivalent(
                request.entry.root, op.root
            ):
                raise SimulationError(
                    f"device shard {self.shard_id}: deserialize of "
                    f"{request.entry.name!r} did not round-trip"
                )
            finishes.append((request, start + op.finish_ns))
        device_batch_cache.put(
            cache_key,
            (run.wall_time_ns, tuple(op.finish_ns for op in run.operations)),
        )
        self.dispatched_batches += 1
        self.dispatched_requests += batch.size
        return finishes


class SoftwareLane:
    """CPU degrade path: a small pool of software-serializer workers."""

    def __init__(self, catalog: ServiceCatalog, workers: int, overhead_ns: float):
        self.catalog = catalog
        self.worker_free = [0.0] * workers
        self.overhead_ns = overhead_ns
        self.served = 0

    def service(self, request: ServiceRequest, now_ns: float) -> float:
        worker = min(range(len(self.worker_free)), key=lambda i: (self.worker_free[i], i))
        begin = max(self.worker_free[worker], now_ns) + self.overhead_ns
        finish = begin + request.software_ns
        self.worker_free[worker] = finish
        self.served += 1
        return finish


@dataclass
class ArrivalOutcome:
    """What one arrival did to the server (incremental/cluster driving).

    ``completions`` are ``(finish_ns, request_id)`` markers for every
    request whose finish time became known; ``deadline`` — when set — is a
    ``(deadline_ns, kind, seq)`` batch-flush event the driver must
    schedule and later deliver via :meth:`SerializationServer.on_deadline`.
    """

    completions: List[Tuple[float, int]] = dataclass_field(default_factory=list)
    deadline: Optional[Tuple[float, str, int]] = None


class SerializationServer:
    """Discrete-event simulation of the sharded serialization service.

    Two driving modes share the same event handlers:

    * :meth:`run` owns the event heap — the standalone single-server mode
      every existing bench and test uses;
    * the incremental API (:meth:`register` / :meth:`on_arrival` /
      :meth:`on_deadline` / :meth:`flush_remaining`) lets an external
      event loop — :class:`repro.cluster.SerializationCluster` — interleave
      many servers on one shared virtual clock, scheduling the batch
      deadlines each server hands back.
    """

    def __init__(
        self,
        catalog: ServiceCatalog,
        config: Optional[ServiceConfig] = None,
        injector: Optional[FaultInjector] = None,
        tracer: Optional[Tracer] = None,
        node_id: str = "",
    ):
        self.catalog = catalog
        self.config = config or ServiceConfig()
        self.injector = injector
        # The tracer is sampled per-server (not per-call) so one chaos run
        # can direct its spans at a private tracer without touching the
        # process-wide one. Disabled (the default) every hook below is a
        # single attribute check.
        self.tracer = tracer if tracer is not None else get_tracer()
        #: Cluster identity: prefixes every span track this server emits
        #: (``node0.shard1``, ...) so one Chrome trace can hold N nodes.
        self.node_id = node_id
        self._track_prefix = f"{node_id}." if node_id else ""
        #: Optional parent span (the node's lifetime span) batch spans
        #: nest under in cluster traces.
        self.trace_parent = None
        self.shards = [
            AcceleratorShard(
                shard_id,
                catalog,
                catalog.cereal_config,
                catalog.dram_config,
            )
            for shard_id in range(self.config.num_shards)
        ]
        self.software = SoftwareLane(
            catalog, self.config.software_workers, self.config.software_overhead_ns
        )
        self.coalescer = BatchCoalescer(
            max_batch_requests=self.config.max_batch_requests,
            max_batch_bytes=self.config.max_batch_bytes,
            max_wait_ns=self.config.batch_wait_ns,
        )
        self.admission = AdmissionController(self.config.admission)
        self.streamer = (
            ResponseStreamer(self.config.streaming)
            if self.config.streaming is not None
            else None
        )
        self.degraded_batches = 0
        self.verified_requests = 0
        self._rr_next = 0
        self._functional_counter = 0
        self._records: Dict[int, RequestRecord] = {}
        #: ``(finish_ns, request_id)`` of admitted-but-unfinished requests;
        #: drained to release admission slots, reaped on node failure.
        self._inflight: List[Tuple[float, int]] = []

    def _track(self, name: str) -> str:
        return self._track_prefix + name

    # -- routing ---------------------------------------------------------------------

    def _route(self, batch: Batch, now_ns: float) -> AcceleratorShard:
        policy = self.config.routing
        if policy == "round-robin":
            shard = self.shards[self._rr_next % len(self.shards)]
            self._rr_next += 1
            return shard
        if policy == "least-loaded":
            candidates = self.shards
        else:  # size-aware: isolate large batches on a reserved partition
            split = max(1, len(self.shards) // 4)
            if len(self.shards) == 1:
                candidates = self.shards
            elif batch.payload_bytes >= self.config.size_aware_bytes:
                candidates = self.shards[:split]
            else:
                candidates = self.shards[split:]
        return min(
            candidates,
            key=lambda s: (s.backlog_ns(batch.kind, now_ns), s.shard_id),
        )

    # -- functional execution (correctness checking) ----------------------------------

    def _should_verify(self) -> bool:
        mode = self.config.functional
        if mode == "off":
            return False
        if mode == "all":
            return True
        self._functional_counter += 1
        return self._functional_counter % self.config.functional_every == 1

    def _verify(self, request: ServiceRequest, backend: str) -> None:
        """Execute the operation for real and check the round trip."""
        entry = request.entry
        registry = entry.root.heap.registry
        if request.kind == KIND_SERIALIZE:
            if backend == BACKEND_SOFTWARE:
                codec = self.catalog.fallback_serializer
                stream = codec.serialize(entry.root).stream
            else:
                codec = self.catalog.accelerator.codec
                stream = codec.serialize(entry.root).stream
            rebuilt = codec.deserialize(stream, Heap(registry=registry)).root
        else:
            # Software degrade of a Cereal stream decodes with the software
            # Cereal codec — the wire format is already fixed.
            codec = self.catalog.accelerator.codec
            rebuilt = codec.deserialize(
                entry.stream, Heap(registry=registry)
            ).root
        if not graphs_equivalent(entry.root, rebuilt):
            raise SimulationError(
                f"request {request.request_id} ({request.kind} "
                f"{entry.name!r} via {backend}) did not round-trip"
            )
        self.verified_requests += 1

    # -- dispatch paths -------------------------------------------------------------------

    def _serve_software(
        self,
        request: ServiceRequest,
        now_ns: float,
        record: RequestRecord,
        batch: Optional[Batch] = None,
    ) -> None:
        finish = self.software.service(request, now_ns)
        record.dispatch_ns = now_ns
        record.finish_ns = finish
        record.outcome = OUTCOME_DEGRADED
        record.backend = BACKEND_SOFTWARE
        record.node = self.node_id
        if batch is not None:
            record.batch_id = batch.batch_id
            record.batch_size = batch.size
        self._stream_response(request, record, "software")
        if self._should_verify():
            self._verify(request, BACKEND_SOFTWARE)

    def _stream_response(
        self, request: ServiceRequest, record: RequestRecord, lane: str
    ) -> None:
        """Chunked-egress hook: re-times the response when streaming is on.

        The response payload is what the client receives back — the
        produced stream for a serialize, the rebuilt graph for a
        deserialize. Admission slots still free at the execute finish
        (egress is asynchronous to the shard), so only the record's
        client-visible timing changes.
        """
        if self.streamer is None:
            return
        if request.kind == KIND_SERIALIZE:
            response_bytes = request.entry.stream_bytes
        else:
            response_bytes = request.entry.graph_bytes
        self.streamer.stream_response(record, response_bytes, lane)

    def _dispatch(self, batch: Batch, now_ns: float) -> List[Tuple[float, int]]:
        """Send one closed batch to a shard (or degrade it); returns
        ``(finish_ns, request_id)`` completion markers."""
        completions: List[Tuple[float, int]] = []
        tracer = self.tracer
        faulted = (
            self.injector is not None
            and self.injector.accelerator_fault(f"service.{batch.kind}")
        )
        if faulted:
            # A capacity fault (CAM/MAI overflow) rejects the whole batch at
            # the command queue; the server degrades it to software, which
            # is slower but correct — no admitted request is lost.
            report = self.injector.report
            report.record_injected("accelerator")
            report.record_detected("accelerator")
            report.record_recovered("accelerator")
            report.record_fallback("accelerator", count=batch.size)
            self.degraded_batches += 1
            for request in batch.requests:
                record = self._records[request.request_id]
                self._serve_software(request, now_ns, record, batch=batch)
                completions.append((record.finish_ns, request.request_id))
            if tracer.enabled and completions:
                tracer.record_span(
                    "batch.degrade",
                    now_ns,
                    max(f for f, _ in completions),
                    category="batch",
                    track=self._track("software"),
                    parent=self.trace_parent,
                    batch_id=batch.batch_id,
                    kind=batch.kind,
                    size=batch.size,
                )
            return completions
        shard = self._route(batch, now_ns)
        # The batch span is recorded up front (so device unit spans can
        # parent on it) and closed once the last finish time is known —
        # spans are records, not live handles, so patching end_ns is safe.
        batch_span = None
        if tracer.enabled:
            batch_span = tracer.record_span(
                "batch.execute",
                now_ns,
                now_ns,
                category="batch",
                track=self._track(f"shard{shard.shard_id}"),
                parent=self.trace_parent,
                batch_id=batch.batch_id,
                kind=batch.kind,
                size=batch.size,
                engine=self.config.engine,
            )
        if self.config.engine == "device":
            finishes = shard.service_device(
                batch,
                now_ns,
                self.config.dispatch_overhead_ns,
                tracer=tracer,
                parent=batch_span,
                track=self._track(f"shard{shard.shard_id}"),
            )
        else:
            finishes = shard.service_analytic(
                batch, now_ns, self.config.dispatch_overhead_ns
            )
        if batch_span is not None and finishes:
            batch_span.end_ns = max(f for _, f in finishes)
        for request, finish in finishes:
            record = self._records[request.request_id]
            record.dispatch_ns = now_ns
            record.finish_ns = finish
            record.outcome = OUTCOME_OK
            record.backend = BACKEND_CEREAL
            record.batch_id = batch.batch_id
            record.batch_size = batch.size
            record.node = self.node_id
            self._stream_response(request, record, f"shard{shard.shard_id}")
            completions.append((finish, request.request_id))
            if self.config.engine != "device" and self._should_verify():
                self._verify(request, BACKEND_CEREAL)
        return completions

    # -- tracing ------------------------------------------------------------------------------

    def _emit_request_spans(self, requests: Sequence[ServiceRequest]) -> None:
        """Retrospectively record one span tree per completed request.

        The event loop learns a request's finish time the moment its batch
        dispatches (virtual time runs ahead of completion), so request
        spans are emitted from the finished records rather than around live
        code. Each completed request becomes a ``request`` span
        (arrival → finish) on the ``requests`` track with ``queue``
        (arrival → dispatch, the admission + coalescing wait) and
        ``execute`` (dispatch → finish) children; shed requests leave an
        instant marker instead. The span durations *are* the record's
        latency decomposition, which is what lets the reconciliation test
        re-derive the SLO percentiles from the exported trace exactly.
        """
        tracer = self.tracer
        for request in requests:
            record = self._records[request.request_id]
            if not record.completed:
                name = (
                    "request.rejected"
                    if record.outcome == OUTCOME_REJECTED
                    else "request.shed"
                )
                tracer.instant(
                    name,
                    ts_ns=record.arrival_ns,
                    category="request",
                    track=self._track("requests"),
                    request_id=record.request_id,
                )
                continue
            parent = tracer.record_span(
                "request",
                record.arrival_ns,
                record.finish_ns,
                category="request",
                track=self._track("requests"),
                request_id=record.request_id,
                kind=record.kind,
                size_class=record.size_class,
                outcome=record.outcome,
                backend=record.backend,
                batch_id=record.batch_id,
                batch_size=record.batch_size,
            )
            tracer.record_span(
                "request.queue",
                record.arrival_ns,
                record.dispatch_ns,
                category="request",
                track=self._track("requests"),
                parent=parent,
                request_id=record.request_id,
            )
            tracer.record_span(
                "request.execute",
                record.dispatch_ns,
                record.finish_ns,
                category="request",
                track=self._track("requests"),
                parent=parent,
                request_id=record.request_id,
                backend=record.backend,
            )
            if record.streamed and record.chunk_timeline:
                for seq, start_ns, done_ns in record.chunk_timeline:
                    tracer.record_span(
                        "response.chunk",
                        start_ns,
                        done_ns,
                        category="chunk",
                        track=self._track("requests"),
                        parent=parent,
                        request_id=record.request_id,
                        chunk=seq,
                    )

    # -- incremental event API (cluster driving) ------------------------------------------

    def register(self, request: ServiceRequest) -> RequestRecord:
        """Create (and index) the record for a request this server will see."""
        record = RequestRecord(
            request_id=request.request_id,
            kind=request.kind,
            size_class=request.entry.name,
            arrival_ns=request.arrival_ns,
            tenant=request.tenant,
            priority=request.priority,
        )
        self._records[request.request_id] = record
        return record

    def adopt(self, record: RequestRecord) -> None:
        """Index an externally owned record — failover re-routes a failed
        node's record to a replica without losing its history."""
        self._records[record.request_id] = record

    def drain(self, now_ns: float) -> None:
        """Release admission slots for every completion at or before now."""
        while self._inflight and self._inflight[0][0] <= now_ns:
            heapq.heappop(self._inflight)
            self.admission.release()

    @property
    def inflight_count(self) -> int:
        """Admitted requests whose finish time has not yet passed."""
        return len(self._inflight)

    def _note_completions(self, completions: List[Tuple[float, int]]) -> None:
        for finish, request_id in completions:
            heapq.heappush(self._inflight, (finish, request_id))

    def reap_inflight(self, now_ns: float) -> List[int]:
        """Node death: ids of admitted requests whose finish is still in
        the future (their work is lost); frees every admission slot."""
        self.drain(now_ns)
        lost = [request_id for _, request_id in self._inflight]
        for _ in self._inflight:
            self.admission.release()
        self._inflight = []
        return lost

    def on_arrival(self, request: ServiceRequest, now_ns: float) -> ArrivalOutcome:
        """Admit/shed/degrade/coalesce one arriving request."""
        self.drain(now_ns)
        arrival = ArrivalOutcome()
        record = self._records[request.request_id]
        if request.malformed:
            # The hardened decode path refuses the payload with a typed
            # error before admission: no queue slot, no latency sample — a
            # shed class of its own.
            self.admission.reject_malformed()
            record.outcome = OUTCOME_REJECTED
            record.backend = BACKEND_NONE
            record.dispatch_ns = now_ns
            record.finish_ns = now_ns
            return arrival
        decision = self.admission.decide(priority=request.priority)
        if decision == DECISION_SHED:
            record.outcome = OUTCOME_SHED
            record.backend = BACKEND_NONE
            record.dispatch_ns = now_ns
            record.finish_ns = now_ns
            return arrival
        if decision == DECISION_DEGRADE:
            self._serve_software(request, now_ns, record)
            arrival.completions.append((record.finish_ns, request.request_id))
        else:
            outcome = self.coalescer.add(request, now_ns)
            if outcome.batch is not None:
                arrival.completions.extend(
                    self._dispatch(outcome.batch, now_ns)
                )
            elif outcome.opened_seq is not None:
                arrival.deadline = (
                    outcome.deadline_ns, request.kind, outcome.opened_seq
                )
        self._note_completions(arrival.completions)
        return arrival

    def on_deadline(
        self, kind: str, seq: int, now_ns: float
    ) -> List[Tuple[float, int]]:
        """Deliver a batch-wait deadline; stale seqs are no-ops."""
        self.drain(now_ns)
        batch = self.coalescer.flush_due(kind, seq, now_ns)
        if batch is None:
            return []
        completions = self._dispatch(batch, now_ns)
        self._note_completions(completions)
        return completions

    def flush_remaining(self, now_ns: float) -> List[Tuple[float, int]]:
        """End-of-run drain: dispatch every still-open coalescer group."""
        completions: List[Tuple[float, int]] = []
        for batch in self.coalescer.flush_all(now_ns):
            completions.extend(self._dispatch(batch, now_ns))
        self._note_completions(completions)
        return completions

    # -- the event loop ----------------------------------------------------------------------

    def run(self, requests: Sequence[ServiceRequest]) -> SLOReport:
        """Simulate the full request sequence; returns the SLO report."""
        self._records = {}
        self._inflight = []
        for request in requests:
            self.register(request)
        if len(self._records) != len(requests):
            raise ConfigError("request_ids must be unique within one run")

        events: List[Tuple[float, int, str, object]] = []
        tiebreak = 0
        for request in requests:
            events.append((request.arrival_ns, tiebreak, "arrival", request))
            tiebreak += 1
        heapq.heapify(events)

        tracer = self.tracer
        while events:
            now_ns, _, etype, payload = heapq.heappop(events)
            tracer.advance(now_ns)
            if etype == "arrival":
                arrival = self.on_arrival(payload, now_ns)
                if arrival.deadline is not None:
                    deadline_ns, kind, seq = arrival.deadline
                    tiebreak += 1
                    heapq.heappush(
                        events, (deadline_ns, tiebreak, "deadline", (kind, seq))
                    )
            else:  # deadline
                kind, seq = payload
                self.on_deadline(kind, seq, now_ns)
        # Safety drain: every opened group had a deadline event, so this is
        # normally empty, but a zero-wait config flushed inline never opens
        # groups and end-of-sequence semantics must not depend on that.
        last = max((r.arrival_ns for r in requests), default=0.0)
        self.flush_remaining(last)

        if tracer.enabled:
            self._emit_request_spans(requests)
        report = SLOReport(
            records=[self._records[r.request_id] for r in requests],
            fault_report=self.injector.report if self.injector else None,
            degraded_batches=self.degraded_batches,
            mean_batch_size=self.coalescer.mean_batch_size,
            peak_outstanding=self.admission.peak_outstanding,
            verified_requests=self.verified_requests,
            runtime_caches={
                "plan_cache": plan_cache_stats(),
                "codegen_cache": codegen_cache_stats(),
                "layout_cache": layout_cache_stats(),
                "buffer_pool": pool_stats(),
                "secure_decode": decode_stats(),
                **(
                    {"streaming": self.streamer.stats()}
                    if self.streamer is not None
                    else {}
                ),
            },
        )
        return report
