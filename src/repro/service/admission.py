"""Admission control: bounded queues, load shedding, and degrade routing.

The service is open-loop — clients do not slow down when the server falls
behind — so backpressure has to be explicit. The controller tracks how
many admitted requests are anywhere in the system (coalescer, shard
queues, software lane) and applies a two-threshold policy:

* above ``degrade_threshold`` occupancy, new requests are *degraded*:
  admitted, but routed to the CPU software serializers instead of the
  accelerator shards. Software service is slower per request but adds
  capacity orthogonal to the saturated shard pools, trading latency for
  goodput exactly like production sidecar fallbacks do;
* at full occupancy (``max_outstanding``), new requests are *shed*:
  rejected immediately, counted against goodput, and excluded from the
  latency distribution (the client got an error, not a slow answer).

Malformed payloads form a separate shed class: the hardened decode path
(:mod:`repro.formats.secure`) rejects them with a typed error before any
slot is occupied, so they never consume queue capacity or appear in the
latency distribution. They are counted on the controller (``rejected``)
and in the ``decode.rejected{...}`` obs counters, distinct from
load shedding — a shed request was valid but unlucky; a rejected request
was never valid at all.

A third degrade source lives in the server: accelerator capacity faults
(from :mod:`repro.faults`) reroute already-dispatched batches to the
software lane. Those are counted separately as fault fallbacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.common.errors import ConfigError

DECISION_ADMIT = "admit"
DECISION_DEGRADE = "degrade"
DECISION_SHED = "shed"
DECISION_REJECT = "reject"  # malformed payload: refused by the decoder


@dataclass(frozen=True)
class AdmissionConfig:
    """Bounded-queue geometry and the degrade threshold."""

    max_outstanding: int = 1024
    degrade_threshold: float = 0.75
    enable_degrade: bool = True
    #: Per-QoS-priority capacity shares, indexed by request priority
    #: (0 = most protected; priorities past the end clamp to the last
    #: entry). A request of priority ``p`` sees an *effective* queue of
    #: ``max_outstanding * priority_shares[p]`` slots, so under pressure
    #: best-effort tenants degrade and shed first while the protected
    #: class keeps the full queue. The default single-entry tuple makes
    #: every priority identical — exactly the pre-QoS behaviour.
    priority_shares: Tuple[float, ...] = (1.0,)

    def __post_init__(self) -> None:
        if self.max_outstanding <= 0:
            raise ConfigError("max_outstanding must be positive")
        if not 0.0 < self.degrade_threshold <= 1.0:
            raise ConfigError("degrade_threshold must be in (0, 1]")
        if not self.priority_shares:
            raise ConfigError("priority_shares must be non-empty")
        for share in self.priority_shares:
            if not 0.0 < share <= 1.0:
                raise ConfigError("priority shares must be in (0, 1]")
        if self.priority_shares[0] != max(self.priority_shares):
            raise ConfigError(
                "priority 0 must hold the largest capacity share"
            )

    def share_for(self, priority: int) -> float:
        """The capacity share of ``priority`` (clamped to the table)."""
        index = min(max(priority, 0), len(self.priority_shares) - 1)
        return self.priority_shares[index]


class AdmissionController:
    """Occupancy tracker making the admit/degrade/shed decision."""

    def __init__(self, config: AdmissionConfig = AdmissionConfig()):
        self.config = config
        self.outstanding = 0
        self.peak_outstanding = 0
        self.admitted = 0
        self.degraded = 0
        self.shed = 0
        self.rejected = 0
        self.shed_by_priority: Dict[int, int] = {}
        self.degraded_by_priority: Dict[int, int] = {}

    def reject_malformed(self, reason: str = "malformed") -> str:
        """A payload the hardened decoder refused; occupies no slot.

        Counted per ``reason`` in the ``decode.rejected`` obs metric so
        SLO reports and bench snapshots can break rejections down the
        same way :func:`repro.formats.secure.decode_stats` does.
        """
        from repro.obs.metrics import get_registry

        self.rejected += 1
        get_registry().counter(
            "decode.rejected", format="service", reason=reason
        ).inc()
        return DECISION_REJECT

    def decide(self, priority: int = 0) -> str:
        """Decision for one arriving request; occupies a slot unless shed.

        ``priority`` is the request's QoS class (0 = most protected): the
        shed and degrade thresholds both scale by that class's capacity
        share, so lower classes hit them at lower occupancy. The default
        priority sees the full queue — identical to the pre-QoS policy.
        """
        effective = self.config.share_for(priority) * self.config.max_outstanding
        if self.outstanding >= effective:
            self.shed += 1
            self.shed_by_priority[priority] = (
                self.shed_by_priority.get(priority, 0) + 1
            )
            return DECISION_SHED
        decision = DECISION_ADMIT
        if (
            self.config.enable_degrade
            and self.outstanding >= self.config.degrade_threshold * effective
        ):
            decision = DECISION_DEGRADE
            self.degraded += 1
            self.degraded_by_priority[priority] = (
                self.degraded_by_priority.get(priority, 0) + 1
            )
        self.admitted += 1
        self.outstanding += 1
        self.peak_outstanding = max(self.peak_outstanding, self.outstanding)
        return decision

    def release(self, count: int = 1) -> None:
        """A previously admitted request completed; free its slot."""
        if count > self.outstanding:
            raise ConfigError(
                f"releasing {count} requests but only {self.outstanding} "
                f"are outstanding"
            )
        self.outstanding -= count

    @property
    def total_seen(self) -> int:
        return self.admitted + self.shed + self.rejected
