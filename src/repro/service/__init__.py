"""Event-driven serialization serving layer (the load-driven view).

The paper measures Cereal on one-shot batches; this package measures it
under *sustained request traffic*, where queueing, batching, and memory
contention dominate. The pieces:

* :mod:`repro.service.workload` — payload catalog + seeded open-loop
  arrival generators (Poisson and bursty) with a configurable
  serialize/deserialize mix over :mod:`repro.workloads` object graphs;
* :mod:`repro.service.batching` — batch coalescer (count / byte / wait
  triggers) amortizing per-dispatch overhead the way the accelerator's
  batch interface rewards;
* :mod:`repro.service.admission` — bounded queues, load shedding, and
  degrade-to-software routing (open-loop backpressure);
* :mod:`repro.service.server` — the event-loop
  :class:`~repro.service.server.SerializationServer` owning N
  accelerator shards plus a CPU software lane, with round-robin /
  least-loaded / size-aware routing and fault-driven degrade via
  :mod:`repro.faults`;
* :mod:`repro.service.slo` — per-request latency traces and the
  p50/p95/p99/p999 + goodput/shed-rate summaries.

``benchmarks/bench_service_scaling.py`` sweeps QPS x shard count x batch
deadline over this stack and emits ``BENCH_service.json``.
"""

from repro.service.admission import (
    AdmissionConfig,
    AdmissionController,
    DECISION_ADMIT,
    DECISION_DEGRADE,
    DECISION_SHED,
)
from repro.service.batching import AddOutcome, Batch, BatchCoalescer
from repro.service.server import (
    AcceleratorShard,
    ArrivalOutcome,
    SerializationServer,
    ServiceConfig,
    SoftwareLane,
)
from repro.service.slo import RequestRecord, SLOReport
from repro.service.streaming import ResponseStreamer, StreamingConfig
from repro.service.workload import (
    BurstyWorkload,
    CatalogEntry,
    DEFAULT_SIZE_CLASSES,
    DEFAULT_TENANTS,
    DiurnalWorkload,
    FlashCrowdWorkload,
    KeySkew,
    OpenLoopWorkload,
    PoissonWorkload,
    RequestMix,
    ServiceCatalog,
    ServiceRequest,
    SizeClass,
    TenantClass,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "DECISION_ADMIT",
    "DECISION_DEGRADE",
    "DECISION_SHED",
    "AddOutcome",
    "Batch",
    "BatchCoalescer",
    "AcceleratorShard",
    "ArrivalOutcome",
    "SerializationServer",
    "ServiceConfig",
    "SoftwareLane",
    "RequestRecord",
    "SLOReport",
    "ResponseStreamer",
    "StreamingConfig",
    "BurstyWorkload",
    "CatalogEntry",
    "DEFAULT_SIZE_CLASSES",
    "DEFAULT_TENANTS",
    "DiurnalWorkload",
    "FlashCrowdWorkload",
    "KeySkew",
    "OpenLoopWorkload",
    "PoissonWorkload",
    "RequestMix",
    "ServiceCatalog",
    "ServiceRequest",
    "SizeClass",
    "TenantClass",
]
