"""Batch coalescing: trade a bounded wait for amortized dispatch cost.

The accelerator's command-queue interface rewards batches: descriptor
setup, doorbell, and DMA programming are paid once per dispatch, and a
batch of independent operations fills the whole SU/DU pool in one shot.
The coalescer holds arriving requests per kind (serialize and deserialize
target different unit pools, so they batch separately) until one of three
triggers closes the batch:

* the request-count cap (fills the unit pool exactly),
* the byte cap (bounds shard memory footprint per dispatch),
* the wait deadline (bounds the latency cost of waiting for peers).

``max_wait_ns == 0`` degenerates to one-request batches dispatched
immediately — the unbatched baseline every batching sweep compares
against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import ConfigError
from repro.service.workload import KINDS, ServiceRequest


@dataclass
class Batch:
    """A closed group of same-kind requests dispatched together."""

    batch_id: int
    kind: str
    requests: List[ServiceRequest]
    opened_ns: float
    closed_ns: float

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def payload_bytes(self) -> int:
        return sum(request.payload_bytes for request in self.requests)


@dataclass
class _PendingGroup:
    """An open (not yet dispatched) batch accumulating requests."""

    seq: int
    opened_ns: float
    requests: List[ServiceRequest] = field(default_factory=list)
    payload_bytes: int = 0


@dataclass
class AddOutcome:
    """What happened when a request entered the coalescer."""

    batch: Optional[Batch] = None  # set when the add closed a batch
    opened_seq: Optional[int] = None  # set when the add opened a new group
    deadline_ns: Optional[float] = None  # flush deadline for the new group


class BatchCoalescer:
    """Per-kind accumulation with count/byte caps and a wait deadline."""

    def __init__(
        self,
        max_batch_requests: int = 8,
        max_batch_bytes: int = 1 << 20,
        max_wait_ns: float = 20_000.0,
    ):
        if max_batch_requests <= 0:
            raise ConfigError("max_batch_requests must be positive")
        if max_batch_bytes <= 0:
            raise ConfigError("max_batch_bytes must be positive")
        if max_wait_ns < 0:
            raise ConfigError("max_wait_ns must be non-negative")
        self.max_batch_requests = max_batch_requests
        self.max_batch_bytes = max_batch_bytes
        self.max_wait_ns = max_wait_ns
        self._pending: Dict[str, Optional[_PendingGroup]] = {k: None for k in KINDS}
        self._next_seq = 0
        self._next_batch_id = 0
        self.batches_closed = 0
        self.requests_batched = 0

    # -- internals ---------------------------------------------------------------------

    def _close(self, kind: str, now_ns: float) -> Batch:
        group = self._pending[kind]
        assert group is not None and group.requests
        self._pending[kind] = None
        batch = Batch(
            batch_id=self._next_batch_id,
            kind=kind,
            requests=group.requests,
            opened_ns=group.opened_ns,
            closed_ns=now_ns,
        )
        self._next_batch_id += 1
        self.batches_closed += 1
        self.requests_batched += batch.size
        return batch

    # -- event-loop interface -------------------------------------------------------

    def add(self, request: ServiceRequest, now_ns: float) -> AddOutcome:
        """Admit one request; maybe close a batch or open a new group."""
        if request.kind not in KINDS:
            raise ConfigError(f"unknown request kind {request.kind!r}")
        if self.max_wait_ns == 0:
            # Unbatched mode: every request is its own immediate batch.
            self._pending[request.kind] = _PendingGroup(
                seq=self._next_seq, opened_ns=now_ns, requests=[request],
                payload_bytes=request.payload_bytes,
            )
            self._next_seq += 1
            return AddOutcome(batch=self._close(request.kind, now_ns))
        outcome = AddOutcome()
        group = self._pending[request.kind]
        if group is None:
            group = _PendingGroup(seq=self._next_seq, opened_ns=now_ns)
            self._next_seq += 1
            self._pending[request.kind] = group
            outcome.opened_seq = group.seq
            outcome.deadline_ns = now_ns + self.max_wait_ns
        group.requests.append(request)
        group.payload_bytes += request.payload_bytes
        if (
            len(group.requests) >= self.max_batch_requests
            or group.payload_bytes >= self.max_batch_bytes
        ):
            outcome.batch = self._close(request.kind, now_ns)
        return outcome

    def flush_due(self, kind: str, seq: int, now_ns: float) -> Optional[Batch]:
        """Close the pending group iff it is still the one that set ``seq``.

        Deadline events for groups already closed by a count/byte trigger
        arrive stale; the sequence check makes them harmless no-ops.
        """
        group = self._pending.get(kind)
        if group is None or group.seq != seq:
            return None
        return self._close(kind, now_ns)

    def flush_all(self, now_ns: float) -> List[Batch]:
        """Close every open group (end-of-run drain)."""
        batches = []
        for kind in KINDS:
            if self._pending.get(kind) is not None:
                batches.append(self._close(kind, now_ns))
        return batches

    def pending_requests(self) -> List[ServiceRequest]:
        """Requests admitted but not yet dispatched (open groups), in
        arrival order. Failover uses this to reap a failed node's
        coalescer without dispatching anything."""
        pending: List[ServiceRequest] = []
        for kind in KINDS:
            group = self._pending.get(kind)
            if group is not None:
                pending.extend(group.requests)
        return pending

    def clear_pending(self) -> int:
        """Drop every open group (the node died with them); returns the
        number of requests discarded. They were never counted as batched,
        so ``mean_batch_size`` stays truthful."""
        dropped = 0
        for kind in KINDS:
            group = self._pending.get(kind)
            if group is not None:
                dropped += len(group.requests)
                self._pending[kind] = None
        return dropped

    @property
    def mean_batch_size(self) -> float:
        if self.batches_closed == 0:
            return 0.0
        return self.requests_batched / self.batches_closed
