"""Chunked response egress for the serialization service.

Large responses leave the server the same way chunked shuffle buckets
cross the wire (:mod:`repro.spark.transfer`): the response is cut into
fixed-size chunks, each chunk goes onto its lane's egress link the moment
it is encoded *and* the link plus an arena are free, and the client's
time-to-first-byte collapses from "whole encode + whole send" to "one
chunk's worth of each". The arena budget (``max_inflight_chunks``) bounds
the per-response buffer the server holds: chunk ``k`` cannot be produced
until chunk ``k - max_inflight_chunks`` has drained, so the modelled
response-buffer high-water mark is ``max_inflight_chunks * chunk_bytes``
instead of the full response size.

The streamer only re-times egress; the execute-side work (shard
scheduling, batching, admission) is untouched, so goodput is preserved
while TTFB and buffer occupancy drop — the same equal-goodput contract
the chunked encode path keeps on the Spark side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.errors import ConfigError
from repro.formats.streams import CHUNK_HEADER_BYTES
from repro.obs.metrics import get_registry
from repro.service.slo import RequestRecord


@dataclass(frozen=True)
class StreamingConfig:
    """Egress chunking knobs for one service deployment."""

    chunk_bytes: int = 16 * 1024
    #: Arena budget per response: bounds the chunks buffered between the
    #: encoder and the wire (the backpressure window).
    max_inflight_chunks: int = 4
    #: Responses smaller than this are sent whole (chunk framing would
    #: cost more than it saves).
    threshold_bytes: int = 32 * 1024
    #: Response egress link (~2 GB/s NIC towards the client).
    egress_ns_per_byte: float = 0.5

    def __post_init__(self) -> None:
        if self.chunk_bytes <= 0:
            raise ConfigError(
                f"chunk_bytes must be positive, got {self.chunk_bytes}"
            )
        if self.max_inflight_chunks < 1:
            raise ConfigError(
                f"max_inflight_chunks must be >= 1, "
                f"got {self.max_inflight_chunks}"
            )
        if self.threshold_bytes < 0:
            raise ConfigError("threshold_bytes must be non-negative")
        if self.egress_ns_per_byte < 0:
            raise ConfigError("egress_ns_per_byte must be non-negative")


class ResponseStreamer:
    """Per-server egress model: one link per lane, bounded arenas.

    ``stream_response`` re-times a completed record: chunk ``k`` of the
    response is encode-ready at ``dispatch + service * cum_bytes_k /
    total`` (the shard emits bytes as it works through the payload) and
    drains at ``egress_ns_per_byte``; ``record.first_byte_ns`` becomes
    the wire-done time of chunk 0 and ``record.finish_ns`` extends to the
    last chunk. Responses under the threshold keep their legacy timing
    but still count toward the whole-buffer high-water mark.
    """

    def __init__(self, config: StreamingConfig, registry=None):
        self.config = config
        self._egress_free: Dict[str, float] = {}
        registry = registry if registry is not None else get_registry()
        self._chunk_counter = registry.counter("service.response_chunks")
        self._streamed_counter = registry.counter("service.streamed_responses")
        self._buffer_hwm = registry.gauge("service.response_buffer_hwm_bytes")
        self.responses = 0
        self.streamed = 0
        self.chunks = 0
        self.streamed_bytes = 0
        self.ttfb_sum_ns = 0.0
        self.whole_ttfb_sum_ns = 0.0
        #: Same sums measured from dispatch (queueing excluded): the
        #: server-side view of how much streaming moves first bytes up.
        self.service_ttfb_sum_ns = 0.0
        self.whole_service_ttfb_sum_ns = 0.0
        #: Modelled buffer held per response: bounded window when
        #: streamed, the whole response when sent in one piece.
        self.buffer_hwm_bytes = 0
        self.whole_buffer_hwm_bytes = 0

    def stream_response(
        self, record: RequestRecord, response_bytes: int, lane: str
    ) -> None:
        """Re-time ``record``'s egress as a chunked send on ``lane``."""
        self.responses += 1
        self.whole_buffer_hwm_bytes = max(
            self.whole_buffer_hwm_bytes, response_bytes
        )
        cfg = self.config
        if response_bytes < cfg.threshold_bytes or not record.completed:
            self.buffer_hwm_bytes = max(self.buffer_hwm_bytes, response_bytes)
            self._buffer_hwm.set_max(response_bytes)
            return

        exec_start = record.dispatch_ns
        exec_span = max(0.0, record.finish_ns - exec_start)
        chunk_count = -(-response_bytes // cfg.chunk_bytes)
        link_free = self._egress_free.get(lane, 0.0)
        wire_done = []
        timeline = []
        for seq in range(chunk_count):
            cum = min((seq + 1) * cfg.chunk_bytes, response_bytes)
            size = cum - seq * cfg.chunk_bytes
            ready = exec_start + exec_span * (cum / response_bytes)
            # Arena backpressure: the encoder stalls until the chunk that
            # holds this arena has fully drained onto the link.
            gate = (
                wire_done[seq - cfg.max_inflight_chunks]
                if seq >= cfg.max_inflight_chunks
                else 0.0
            )
            start = max(ready, link_free, gate)
            done = start + (size + CHUNK_HEADER_BYTES) * cfg.egress_ns_per_byte
            link_free = done
            wire_done.append(done)
            timeline.append((seq, start, done))
        self._egress_free[lane] = link_free

        whole_first = record.finish_ns + (
            (min(cfg.chunk_bytes, response_bytes) + CHUNK_HEADER_BYTES)
            * cfg.egress_ns_per_byte
        )
        record.streamed = True
        record.chunks = chunk_count
        record.first_byte_ns = wire_done[0]
        record.finish_ns = wire_done[-1]
        record.chunk_timeline = timeline

        held = min(chunk_count, cfg.max_inflight_chunks) * cfg.chunk_bytes
        held = min(held, response_bytes)
        self.buffer_hwm_bytes = max(self.buffer_hwm_bytes, held)
        self._buffer_hwm.set_max(held)
        self._chunk_counter.inc(chunk_count)
        self._streamed_counter.inc()
        self.streamed += 1
        self.chunks += chunk_count
        self.streamed_bytes += response_bytes
        self.ttfb_sum_ns += wire_done[0] - record.arrival_ns
        self.whole_ttfb_sum_ns += whole_first - record.arrival_ns
        self.service_ttfb_sum_ns += wire_done[0] - exec_start
        self.whole_service_ttfb_sum_ns += whole_first - exec_start

    @property
    def mean_ttfb_speedup(self) -> float:
        """Whole-send TTFB over streamed TTFB, averaged over responses."""
        if self.ttfb_sum_ns <= 0:
            return 0.0
        return self.whole_ttfb_sum_ns / self.ttfb_sum_ns

    @property
    def service_ttfb_speedup(self) -> float:
        """TTFB speedup measured from dispatch (queueing excluded)."""
        if self.service_ttfb_sum_ns <= 0:
            return 0.0
        return self.whole_service_ttfb_sum_ns / self.service_ttfb_sum_ns

    def stats(self) -> Dict:
        return {
            "responses": self.responses,
            "streamed": self.streamed,
            "chunks": self.chunks,
            "streamed_bytes": self.streamed_bytes,
            "ttfb_sum_ns": self.ttfb_sum_ns,
            "whole_ttfb_sum_ns": self.whole_ttfb_sum_ns,
            "service_ttfb_sum_ns": self.service_ttfb_sum_ns,
            "whole_service_ttfb_sum_ns": self.whole_service_ttfb_sum_ns,
            "mean_ttfb_speedup": self.mean_ttfb_speedup,
            "service_ttfb_speedup": self.service_ttfb_speedup,
            "buffer_hwm_bytes": self.buffer_hwm_bytes,
            "whole_buffer_hwm_bytes": self.whole_buffer_hwm_bytes,
        }
