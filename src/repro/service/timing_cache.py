"""LRU timing caches for the serving layer's deterministic models.

Everything the service layer times is *deterministic*: a catalog entry's
accelerator and software timings are pure functions of (payload shape,
device configs), and a device-engine batch timeline is a pure function of
(request kinds, catalog entry composition). Sweeps — QPS curves, shard
scaling, the perf harness — rebuild identical catalogs and replay
identical batch compositions thousands of times, so memoizing the timing
results changes wall-clock cost, never simulated results.

The caches are deliberately keyed on *complete* input signatures (all
size classes in build order, full config dataclasses) so two runs that
could diverge can never share an entry. Correctness note for the batch
cache: the device engine functionally verifies every round trip the first
time a composition runs; a cache hit replays the timeline of that
verified execution.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional, Tuple


class LRUCache:
    """A small ordered-dict LRU with hit/miss accounting."""

    def __init__(self, capacity: int = 128):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value, refreshed as most-recent; None on miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Tuple[int, int, int]:
        """(hits, misses, resident entries)."""
        return self.hits, self.misses, len(self._entries)


#: Catalog build cache: (size classes in build order, entry name, cereal
#: config, dram config) -> (stream, accel timings, software timings).
catalog_timing_cache = LRUCache(capacity=64)

#: Device-engine batch cache, shared across shards with identical configs:
#: (cereal config, dram config, kind, entry-name tuple) ->
#: (wall_time_ns, per-request relative finish times).
device_batch_cache = LRUCache(capacity=256)


def clear_timing_caches() -> None:
    """Reset both service-layer timing caches (tests, config experiments)."""
    catalog_timing_cache.clear()
    device_batch_cache.clear()
