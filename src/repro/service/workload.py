"""Open-loop request workloads for the serialization service.

A service run needs two things: *what* is being (de)serialized and *when*
requests arrive.

The **catalog** answers "what": a small set of representative object
graphs (built by the :mod:`repro.workloads` generators) with their Cereal
streams and per-backend single-operation timings precomputed. Every
request references one catalog entry, so a million-request simulation only
pays the functional serialization cost once per entry — the event loop
replays cached timings, and functional execution is re-run on a sampled
(or exhaustive) subset of requests for correctness checking.

The **arrival generators** answer "when": open-loop (the paper's
wimpy-vs-beefy argument only bites when clients do not wait for the
server), seeded, and deliberately structured so that *one* master
unit-rate arrival sequence is rescaled for every offered QPS. Two runs at
different QPS therefore see the *same* requests in the same order with the
same sizes — only compressed in time — which makes latency-vs-load curves
monotone by construction rather than by luck.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import sha256
from math import log
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cereal.accelerator import CerealAccelerator, OperationTiming
from repro.common.config import CerealConfig, DRAMConfig
from repro.common.errors import ConfigError
from repro.cpu.harness import SoftwarePlatform
from repro.formats.base import SerializedStream
from repro.formats.kryo import KryoSerializer
from repro.formats.registry import ClassRegistration
from repro.jvm.heap import Heap, HeapObject
from repro.service.timing_cache import catalog_timing_cache
from repro.workloads.datagen import DeterministicRandom
from repro.workloads.micro import (
    MicrobenchConfig,
    build_graph_bench,
    build_list_bench,
    build_tree_bench,
)

KIND_SERIALIZE = "serialize"
KIND_DESERIALIZE = "deserialize"
KINDS = (KIND_SERIALIZE, KIND_DESERIALIZE)


@dataclass(frozen=True)
class SizeClass:
    """One request size class: a shape plus an object budget."""

    name: str
    shape: str  # "tree" | "list" | "graph"
    objects: int
    fanout: int = 2


#: Default request-size mix: mostly small RPC-style graphs, some medium
#: shuffle buckets, a few large cached-partition-style graphs.
DEFAULT_SIZE_CLASSES: Tuple[SizeClass, ...] = (
    SizeClass("small", "tree", objects=48, fanout=2),
    SizeClass("medium", "list", objects=192),
    SizeClass("large", "graph", objects=256, fanout=6),
)


@dataclass
class CatalogEntry:
    """A reusable payload: graph, stream, and cached per-backend timings."""

    name: str
    root: HeapObject
    stream: SerializedStream  # Cereal-format bytes (deserialize input)
    accel_timing: Dict[str, OperationTiming]
    software_ns: Dict[str, float]
    #: Content identity of the payload (the Cereal stream identifies the
    #: graph too — serialization is deterministic). Timing caches key on
    #: this, never on the entry name alone.
    stream_digest: str = ""

    def __post_init__(self) -> None:
        if not self.stream_digest:
            self.stream_digest = sha256(self.stream.data).hexdigest()

    @property
    def graph_bytes(self) -> int:
        return self.stream.graph_bytes

    @property
    def stream_bytes(self) -> int:
        return self.stream.size_bytes


class ServiceCatalog:
    """Builds and owns the payload graphs plus their cached timings.

    The catalog, every accelerator shard, and the software degrade path all
    share one :class:`~repro.formats.registry.ClassRegistration`, so a
    stream produced anywhere in the service is decodable everywhere (class
    IDs agree by construction).
    """

    def __init__(
        self,
        size_classes: Sequence[SizeClass] = DEFAULT_SIZE_CLASSES,
        cereal_config: Optional[CerealConfig] = None,
        dram_config: Optional[DRAMConfig] = None,
    ):
        if not size_classes:
            raise ConfigError("catalog needs at least one size class")
        self.heap = Heap(registry=None)
        self.registration = ClassRegistration()
        self.cereal_config = cereal_config or CerealConfig()
        self.dram_config = dram_config or DRAMConfig()
        self.entries: Dict[str, CatalogEntry] = {}
        self._build(size_classes)

    def _build(self, size_classes: Sequence[SizeClass]) -> None:
        roots: Dict[str, HeapObject] = {}
        for size in size_classes:
            config = MicrobenchConfig(
                name=f"service-{size.name}",
                shape=size.shape,
                variant=size.name,
                paper_objects=size.objects,
                scale=1,
                fanout=size.fanout,
            )
            if size.shape == "tree":
                roots[size.name] = build_tree_bench(self.heap, config)
            elif size.shape == "list":
                roots[size.name] = build_list_bench(self.heap, config)
            elif size.shape == "graph":
                roots[size.name] = build_graph_bench(self.heap, config)
            else:
                raise ConfigError(f"unknown workload shape {size.shape!r}")
        # Reference accelerator: produces the catalog streams and the
        # cached single-op timings every analytic shard replays.
        self.accelerator = CerealAccelerator(
            self.cereal_config, self.dram_config, registration=self.registration
        )
        for klass in self.heap.registry:
            self.accelerator.register_class(klass)
        self.software = SoftwarePlatform()
        self.fallback_serializer = KryoSerializer(self.registration)
        # Catalog timings are a deterministic function of the build inputs
        # (payload shapes + device configs), so identical catalogs — the
        # common case across QPS/shard sweeps — reuse them via the LRU.
        build_signature = tuple(size_classes)
        for size in size_classes:
            root = roots[size.name]
            cache_key = (
                build_signature,
                size.name,
                self.cereal_config,
                self.dram_config,
            )
            cached = catalog_timing_cache.get(cache_key)
            if cached is not None:
                stream, accel_timing, software_ns = cached
            else:
                result, ser_timing, _ = self.accelerator.serialize(root)
                receiver = Heap(registry=self.heap.registry)
                _, de_timing, _ = self.accelerator.deserialize(
                    result.stream, receiver
                )
                _, soft_ser = self.software.run_serialize(
                    self.fallback_serializer, root
                )
                soft_heap = Heap(registry=self.heap.registry)
                _, soft_de = self.software.run_deserialize(
                    self.accelerator.codec, result.stream, soft_heap
                )
                stream = result.stream
                accel_timing = {
                    KIND_SERIALIZE: ser_timing,
                    KIND_DESERIALIZE: de_timing,
                }
                software_ns = {
                    KIND_SERIALIZE: soft_ser.timing.time_ns,
                    KIND_DESERIALIZE: soft_de.timing.time_ns,
                }
                catalog_timing_cache.put(
                    cache_key, (stream, accel_timing, software_ns)
                )
            self.entries[size.name] = CatalogEntry(
                name=size.name,
                root=root,
                stream=stream,
                accel_timing=dict(accel_timing),
                software_ns=dict(software_ns),
            )

    @property
    def registry(self):
        return self.heap.registry

    def entry(self, name: str) -> CatalogEntry:
        return self.entries[name]

    def mean_service_ns(self, kind: str, weights: Mapping[str, float]) -> float:
        """Weighted mean accelerator service time for one request kind."""
        total_weight = sum(weights.get(name, 0.0) for name in self.entries)
        if total_weight <= 0:
            raise ConfigError("size weights select no catalog entries")
        return sum(
            self.entries[name].accel_timing[kind].elapsed_ns * weight
            for name, weight in weights.items()
            if name in self.entries
        ) / total_weight


@dataclass
class ServiceRequest:
    """One request in flight through the service."""

    request_id: int
    kind: str  # "serialize" | "deserialize"
    entry: CatalogEntry
    arrival_ns: float
    #: The payload is adversarial/corrupt: the hardened decode path will
    #: refuse it at admission instead of occupying a queue slot.
    malformed: bool = False
    #: Routing identity for the cluster layer: consistent-hash placement
    #: keys on this (hot-key skew makes some keys vastly more popular).
    #: Empty means "no affinity" — single-server runs never set it.
    key: str = ""
    #: Multi-tenant QoS: the owning tenant and its admission priority
    #: (0 = highest). Per-tenant shed/degrade thresholds key on priority.
    tenant: str = ""
    priority: int = 0
    #: Client locality zone, consumed by locality-aware cluster routing.
    zone: str = ""

    @property
    def payload_bytes(self) -> int:
        """Bytes the operation must move in: heap graph (ser) or stream (de)."""
        if self.kind == KIND_SERIALIZE:
            return self.entry.graph_bytes
        return self.entry.stream_bytes

    @property
    def accel_timing(self) -> OperationTiming:
        return self.entry.accel_timing[self.kind]

    @property
    def software_ns(self) -> float:
        return self.entry.software_ns[self.kind]


@dataclass(frozen=True)
class RequestMix:
    """Serialize/deserialize split and size-class weights."""

    serialize_fraction: float = 0.5
    size_weights: Mapping[str, float] = field(
        default_factory=lambda: {"small": 0.6, "medium": 0.3, "large": 0.1}
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.serialize_fraction <= 1.0:
            raise ConfigError("serialize_fraction must be in [0, 1]")
        if not self.size_weights or min(self.size_weights.values()) < 0:
            raise ConfigError("size_weights must be non-empty and non-negative")
        if sum(self.size_weights.values()) <= 0:
            raise ConfigError("size_weights must have positive total weight")


@dataclass(frozen=True)
class KeySkew:
    """Zipfian hot-key popularity over a bounded key space.

    Request keys are drawn rank-proportional to ``1 / rank**exponent``:
    with the default exponent ~1.1 the hottest key absorbs a double-digit
    percentage of all traffic, which is what makes consistent-hash
    placement interesting (one ring segment melts while others idle).
    """

    key_space: int = 1024
    exponent: float = 1.1
    prefix: str = "key"

    def __post_init__(self) -> None:
        if self.key_space <= 0:
            raise ConfigError("key_space must be positive")
        if self.exponent < 0.0:
            raise ConfigError("exponent must be non-negative")

    def cumulative_weights(self) -> List[float]:
        weights: List[float] = []
        total = 0.0
        for rank in range(1, self.key_space + 1):
            total += 1.0 / (rank ** self.exponent)
            weights.append(total)
        return weights


@dataclass(frozen=True)
class TenantClass:
    """One QoS class in a multi-tenant mix.

    ``priority`` indexes :attr:`AdmissionConfig.priority_shares` (0 is
    the most protected); ``zone`` is the locality hint cluster routing
    consumes. Weights are relative draw probabilities.
    """

    name: str
    weight: float = 1.0
    priority: int = 0
    zone: str = ""

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigError("tenant weight must be positive")
        if self.priority < 0:
            raise ConfigError("tenant priority must be non-negative")


#: Default three-class tenant mix: a protected interactive tenant, a
#: bulk-analytics tenant, and a best-effort batch tenant across two zones.
DEFAULT_TENANTS: Tuple[TenantClass, ...] = (
    TenantClass("interactive", weight=0.5, priority=0, zone="zone-a"),
    TenantClass("analytics", weight=0.3, priority=1, zone="zone-b"),
    TenantClass("batch", weight=0.2, priority=2, zone="zone-a"),
)


# Substream tags: every draw category gets its own xorshift stream seeded
# from ``(seed << 1) ^ tag``, so adding a traffic shape (or turning a
# feature on) can never perturb the draws of another. The first five tags
# predate the cluster layer and must never change — seeded workload tests
# and recorded benchmark trajectories depend on those exact sequences.
_STREAM_ARRIVAL = 0xA881_17A1
_STREAM_KIND = 0x5EED_0002
_STREAM_SIZE = 0x5EED_0003
_STREAM_PHASE = 0x5EED_0004
_STREAM_MALFORMED = 0x5EED_0005
_STREAM_KEY = 0x5EED_0006
_STREAM_TENANT = 0x5EED_0007


class OpenLoopWorkload:
    """Base open-loop generator: seeded Poisson arrivals at a target QPS.

    Arrival times come from a unit-rate exponential sequence divided by
    ``qps``; request kinds, sizes, hot keys, and tenants come from
    *separate* seeded substreams (:meth:`_stream`) that never consume each
    other's draws. Changing ``qps`` therefore rescales the timeline
    without reshuffling the request sequence, and enabling key skew or a
    tenant mix decorates the same request sequence without moving a
    single arrival.
    """

    def __init__(
        self,
        qps: float,
        num_requests: int,
        seed: int = 0,
        mix: Optional[RequestMix] = None,
        malformed_fraction: float = 0.0,
        keys: Optional[KeySkew] = None,
        tenants: Optional[Sequence[TenantClass]] = None,
    ):
        if qps <= 0:
            raise ConfigError(f"qps must be positive, got {qps}")
        if num_requests <= 0:
            raise ConfigError("num_requests must be positive")
        if not 0.0 <= malformed_fraction <= 1.0:
            raise ConfigError("malformed_fraction must be in [0, 1]")
        self.qps = qps
        self.num_requests = num_requests
        self.seed = seed
        self.mix = mix or RequestMix()
        self.malformed_fraction = malformed_fraction
        self.keys = keys
        self.tenants = tuple(tenants) if tenants else ()

    # -- overridable pieces --------------------------------------------------------

    def _stream(self, tag: int) -> DeterministicRandom:
        """The seeded substream for one draw category (see tag table)."""
        return DeterministicRandom(seed=(self.seed << 1) ^ tag)

    def _unit_gaps(self) -> List[float]:
        """Unit-rate inter-arrival gaps (mean 1.0) before QPS scaling."""
        rng = self._stream(_STREAM_ARRIVAL)
        gaps = []
        for _ in range(self.num_requests):
            u = rng.random()
            gaps.append(-log(1.0 - u))
        return gaps

    # -- per-request decoration (keys, tenants) ------------------------------------

    def _draw_key(self, rng: DeterministicRandom) -> str:
        assert self.keys is not None
        cumulative = self._key_cumulative
        draw = rng.random() * cumulative[-1]
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] > draw:
                hi = mid
            else:
                lo = mid + 1
        return f"{self.keys.prefix}-{lo}"

    def _draw_tenant(self, rng: DeterministicRandom) -> TenantClass:
        draw = rng.random() * self._tenant_total
        for tenant in self.tenants:
            if draw < tenant.weight:
                return tenant
            draw -= tenant.weight
        return self.tenants[-1]

    # -- generation --------------------------------------------------------------------

    def generate(self, catalog: ServiceCatalog) -> List[ServiceRequest]:
        names = sorted(
            name for name in self.mix.size_weights if name in catalog.entries
        )
        if not names:
            raise ConfigError(
                "request mix references no catalog entries "
                f"(mix={sorted(self.mix.size_weights)}, "
                f"catalog={sorted(catalog.entries)})"
            )
        weights = [self.mix.size_weights[name] for name in names]
        total_weight = sum(weights)
        kind_rng = self._stream(_STREAM_KIND)
        size_rng = self._stream(_STREAM_SIZE)
        # Malformed flags come from their own stream so turning the
        # fraction on or off never reshuffles kinds, sizes, or arrivals —
        # and likewise keys and tenants below.
        malformed_rng = self._stream(_STREAM_MALFORMED)
        key_rng = self._stream(_STREAM_KEY)
        tenant_rng = self._stream(_STREAM_TENANT)
        if self.keys is not None:
            self._key_cumulative = self.keys.cumulative_weights()
        if self.tenants:
            self._tenant_total = sum(t.weight for t in self.tenants)
        scale_ns = 1e9 / self.qps
        clock = 0.0
        requests: List[ServiceRequest] = []
        for index, gap in enumerate(self._unit_gaps()):
            clock += gap * scale_ns
            if kind_rng.random() < self.mix.serialize_fraction:
                kind = KIND_SERIALIZE
            else:
                kind = KIND_DESERIALIZE
            draw = size_rng.random() * total_weight
            chosen = names[-1]
            for name, weight in zip(names, weights):
                if draw < weight:
                    chosen = name
                    break
                draw -= weight
            malformed = malformed_rng.random() < self.malformed_fraction
            key = self._draw_key(key_rng) if self.keys is not None else ""
            if self.tenants:
                tenant = self._draw_tenant(tenant_rng)
                tenant_name, priority, zone = (
                    tenant.name, tenant.priority, tenant.zone,
                )
            else:
                tenant_name, priority, zone = "", 0, ""
            requests.append(
                ServiceRequest(
                    request_id=index,
                    kind=kind,
                    entry=catalog.entry(chosen),
                    arrival_ns=clock,
                    malformed=malformed,
                    key=key,
                    tenant=tenant_name,
                    priority=priority,
                    zone=zone,
                )
            )
        return requests


class PoissonWorkload(OpenLoopWorkload):
    """Memoryless open-loop arrivals at a fixed mean rate."""


class BurstyWorkload(OpenLoopWorkload):
    """On/off modulated Poisson arrivals with the same mean rate.

    Requests alternate between ON phases (inter-arrival gaps divided by
    ``burst_factor``) and OFF phases (gaps stretched so the *mean* rate
    stays ``qps``). Phase lengths are drawn from the seeded stream, so the
    burst schedule is as reproducible as the arrivals themselves.
    """

    def __init__(
        self,
        qps: float,
        num_requests: int,
        seed: int = 0,
        mix: Optional[RequestMix] = None,
        burst_factor: float = 8.0,
        burst_fraction: float = 0.25,
        mean_phase_requests: int = 32,
        malformed_fraction: float = 0.0,
        keys: Optional[KeySkew] = None,
        tenants: Optional[Sequence[TenantClass]] = None,
    ):
        super().__init__(
            qps,
            num_requests,
            seed=seed,
            mix=mix,
            malformed_fraction=malformed_fraction,
            keys=keys,
            tenants=tenants,
        )
        if burst_factor < 1.0:
            raise ConfigError("burst_factor must be >= 1")
        if not 0.0 < burst_fraction < 1.0:
            raise ConfigError("burst_fraction must be in (0, 1)")
        if mean_phase_requests <= 0:
            raise ConfigError("mean_phase_requests must be positive")
        self.burst_factor = burst_factor
        self.burst_fraction = burst_fraction
        self.mean_phase_requests = mean_phase_requests

    def _unit_gaps(self) -> List[float]:
        gaps = super()._unit_gaps()
        phase_rng = self._stream(_STREAM_PHASE)
        # Slow-phase stretch chosen so the long-run mean gap stays 1.0:
        #   burst_fraction / factor + (1 - burst_fraction) * stretch == 1.
        stretch = (1.0 - self.burst_fraction / self.burst_factor) / (
            1.0 - self.burst_fraction
        )
        shaped: List[float] = []
        index = 0
        in_burst = True
        while index < len(gaps):
            if in_burst:
                length = max(
                    1,
                    int(
                        self.mean_phase_requests
                        * self.burst_fraction
                        * (0.5 + phase_rng.random())
                    ),
                )
                factor = 1.0 / self.burst_factor
            else:
                length = max(
                    1,
                    int(
                        self.mean_phase_requests
                        * (1.0 - self.burst_fraction)
                        * (0.5 + phase_rng.random())
                    ),
                )
                factor = stretch
            for _ in range(length):
                if index >= len(gaps):
                    break
                shaped.append(gaps[index] * factor)
                index += 1
            in_burst = not in_burst
        return shaped


class DiurnalWorkload(OpenLoopWorkload):
    """Sinusoidal day/night rate modulation at a preserved mean rate.

    The arrival rate follows ``1 + amplitude * sin(...)`` over
    ``period_requests``-request "days" (gaps divide by the instantaneous
    rate), then the whole gap sequence is renormalized to mean 1.0 so the
    long-run rate is exactly ``qps``. Deterministic in the request index —
    no extra rng draws, so composing it with key skew or tenant mixes
    reuses the identical request sequence.
    """

    def __init__(
        self,
        qps: float,
        num_requests: int,
        seed: int = 0,
        mix: Optional[RequestMix] = None,
        amplitude: float = 0.6,
        period_requests: int = 1000,
        phase: float = 0.0,
        malformed_fraction: float = 0.0,
        keys: Optional[KeySkew] = None,
        tenants: Optional[Sequence[TenantClass]] = None,
    ):
        super().__init__(
            qps,
            num_requests,
            seed=seed,
            mix=mix,
            malformed_fraction=malformed_fraction,
            keys=keys,
            tenants=tenants,
        )
        if not 0.0 <= amplitude < 1.0:
            raise ConfigError("amplitude must be in [0, 1)")
        if period_requests <= 1:
            raise ConfigError("period_requests must be > 1")
        self.amplitude = amplitude
        self.period_requests = period_requests
        self.phase = phase

    def _unit_gaps(self) -> List[float]:
        from math import pi, sin

        gaps = super()._unit_gaps()
        shaped = []
        for index, gap in enumerate(gaps):
            rate = 1.0 + self.amplitude * sin(
                2.0 * pi * index / self.period_requests + self.phase
            )
            shaped.append(gap / rate)
        mean = sum(shaped) / len(shaped)
        return [gap / mean for gap in shaped]


class FlashCrowdWorkload(OpenLoopWorkload):
    """Baseline Poisson traffic with one sudden, sustained rate spike.

    Requests whose index falls inside the crowd window arrive at
    ``spike_factor`` times the baseline rate (their gaps divide by the
    factor); everything outside the window is untouched, so the spike
    *adds* load rather than conserving it — the scenario a reactive
    autoscaler exists for. Deterministic in the request index, no extra
    rng draws.
    """

    def __init__(
        self,
        qps: float,
        num_requests: int,
        seed: int = 0,
        mix: Optional[RequestMix] = None,
        spike_factor: float = 6.0,
        spike_start_fraction: float = 0.4,
        spike_duration_fraction: float = 0.2,
        malformed_fraction: float = 0.0,
        keys: Optional[KeySkew] = None,
        tenants: Optional[Sequence[TenantClass]] = None,
    ):
        super().__init__(
            qps,
            num_requests,
            seed=seed,
            mix=mix,
            malformed_fraction=malformed_fraction,
            keys=keys,
            tenants=tenants,
        )
        if spike_factor < 1.0:
            raise ConfigError("spike_factor must be >= 1")
        if not 0.0 <= spike_start_fraction < 1.0:
            raise ConfigError("spike_start_fraction must be in [0, 1)")
        if not 0.0 < spike_duration_fraction <= 1.0:
            raise ConfigError("spike_duration_fraction must be in (0, 1]")
        self.spike_factor = spike_factor
        self.spike_start_fraction = spike_start_fraction
        self.spike_duration_fraction = spike_duration_fraction

    def spike_window(self) -> Tuple[int, int]:
        """[start, end) request indices of the crowd."""
        start = int(self.num_requests * self.spike_start_fraction)
        end = min(
            self.num_requests,
            start + max(1, int(self.num_requests * self.spike_duration_fraction)),
        )
        return start, end

    def _unit_gaps(self) -> List[float]:
        gaps = super()._unit_gaps()
        start, end = self.spike_window()
        return [
            gap / self.spike_factor if start <= index < end else gap
            for index, gap in enumerate(gaps)
        ]
