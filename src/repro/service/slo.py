"""Per-request latency traces and tail-latency / goodput summaries.

Every request that enters the server leaves exactly one
:class:`RequestRecord` behind — admitted or shed, accelerated or degraded
— so the SLO report can be rebuilt from the trace alone. Latency is
measured arrival-to-finish (queueing + batching wait + service); shed
requests have no latency (the client got an immediate rejection) and are
reported through the shed rate instead.

The summary mirrors what a production serving dashboard shows: p50 / p95 /
p99 / p999, goodput vs. offered load, shed and degrade rates, and the
fault-recovery counters when a chaos schedule was active.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.report import ReportTable
from repro.faults.report import FaultReport
from repro.obs.metrics import Histogram, exact_quantile

OUTCOME_OK = "ok"
OUTCOME_DEGRADED = "degraded"
OUTCOME_SHED = "shed"
OUTCOME_REJECTED = "rejected"  # malformed payload refused at admission

BACKEND_CEREAL = "cereal"
BACKEND_SOFTWARE = "software"
BACKEND_NONE = "none"

#: The quantiles every summary reports, in display order.
SLO_QUANTILES = (("p50", 50.0), ("p95", 95.0), ("p99", 99.0), ("p999", 99.9))


@dataclass
class RequestRecord:
    """The full observable history of one request."""

    request_id: int
    kind: str
    size_class: str
    arrival_ns: float
    dispatch_ns: float = 0.0
    finish_ns: float = 0.0
    outcome: str = OUTCOME_OK
    backend: str = BACKEND_CEREAL
    batch_id: int = -1
    batch_size: int = 1
    #: Multi-tenant QoS identity (empty outside tenant-mix workloads).
    tenant: str = ""
    priority: int = 0
    #: The cluster node that finally served the request ("" when the run
    #: is a single standalone server).
    node: str = ""
    #: Failover re-executions: how many times the request was re-routed
    #: after a node loss. Latency always spans arrival to *final* finish,
    #: so retries are inside the SLO, never hidden by it.
    retries: int = 0
    #: Streamed-response egress: when the response left chunk by chunk,
    #: ``first_byte_ns`` is the wire-done time of chunk 0 (the client's
    #: time-to-first-byte) and ``finish_ns`` extends to the last chunk.
    streamed: bool = False
    chunks: int = 0
    first_byte_ns: float = 0.0
    #: Per chunk ``(seq, wire_start_ns, wire_done_ns)``; feeds the
    #: ``response.chunk`` spans nested under the request span.
    chunk_timeline: Optional[List] = None

    @property
    def completed(self) -> bool:
        return self.outcome not in (OUTCOME_SHED, OUTCOME_REJECTED)

    @property
    def ttfb_ns(self) -> float:
        """Arrival to first response byte (falls back to full latency
        when the response was not streamed)."""
        if self.streamed:
            return self.first_byte_ns - self.arrival_ns
        return self.latency_ns

    @property
    def latency_ns(self) -> float:
        return self.finish_ns - self.arrival_ns

    @property
    def queue_ns(self) -> float:
        """Time between arrival and dispatch (batching wait + queueing)."""
        return self.dispatch_ns - self.arrival_ns

    @property
    def service_ns(self) -> float:
        return self.finish_ns - self.dispatch_ns


@dataclass
class SLOReport:
    """Aggregated view over one service run's request records."""

    records: List[RequestRecord]
    fault_report: Optional[FaultReport] = None
    degraded_batches: int = 0
    mean_batch_size: float = 0.0
    peak_outstanding: int = 0
    verified_requests: int = 0
    #: Snapshot of the process-wide serialization caches at end of run
    #: (compiled-plan cache, klass layout cache, output buffer pool) —
    #: plans compile on the first request of a shape and are reused across
    #: every later batch, so warm runs should show a high hit rate here.
    runtime_caches: Optional[Dict] = None

    _latency_cache: Dict[str, List[float]] = field(
        default_factory=dict, repr=False
    )
    _hist_cache: Dict[str, Histogram] = field(default_factory=dict, repr=False)

    # -- basic populations -------------------------------------------------------

    def _latencies(self, kind: str = "all") -> List[float]:
        cached = self._latency_cache.get(kind)
        if cached is None:
            cached = sorted(
                r.latency_ns
                for r in self.records
                if r.completed and (kind == "all" or r.kind == kind)
            )
            self._latency_cache[kind] = cached
        return cached

    @property
    def total_requests(self) -> int:
        return len(self.records)

    @property
    def completed_requests(self) -> int:
        return sum(1 for r in self.records if r.completed)

    @property
    def shed_requests(self) -> int:
        return sum(1 for r in self.records if r.outcome == OUTCOME_SHED)

    @property
    def rejected_requests(self) -> int:
        """Malformed payloads refused by the hardened decoder — a shed
        class of their own, never lumped into capacity shedding."""
        return sum(1 for r in self.records if r.outcome == OUTCOME_REJECTED)

    @property
    def degraded_requests(self) -> int:
        return sum(1 for r in self.records if r.outcome == OUTCOME_DEGRADED)

    @property
    def retried_requests(self) -> int:
        """Requests re-executed at least once after a node failover."""
        return sum(1 for r in self.records if r.retries > 0)

    @property
    def shed_rate(self) -> float:
        if not self.records:
            return 0.0
        return self.shed_requests / self.total_requests

    @property
    def rejected_rate(self) -> float:
        if not self.records:
            return 0.0
        return self.rejected_requests / self.total_requests

    # -- latency ------------------------------------------------------------------

    def _latency_hist(self, kind: str) -> Histogram:
        """An obs histogram over this population's latencies.

        Sized so the exact reservoir covers every record — the quantiles
        below are therefore :func:`repro.obs.metrics.exact_quantile` over
        the raw series, the same definition the tracing exports and
        ``repro.analysis.percentile`` use. That shared definition is what
        lets ``tests/test_obs_reconcile.py`` demand span-derived and
        SLO-reported percentiles agree to the nanosecond.
        """
        cached = self._hist_cache.get(kind)
        if cached is None:
            values = self._latencies(kind)
            cached = Histogram(
                f"slo.latency_ns.{kind}", exact_limit=max(1, len(values))
            )
            for value in values:
                cached.observe(value)
            self._hist_cache[kind] = cached
        return cached

    def latency_ns_at(self, q: float, kind: str = "all") -> float:
        if not self._latencies(kind):
            return 0.0
        return self._latency_hist(kind).quantile(q)

    def p50(self, kind: str = "all") -> float:
        return self.latency_ns_at(50.0, kind)

    def p95(self, kind: str = "all") -> float:
        return self.latency_ns_at(95.0, kind)

    def p99(self, kind: str = "all") -> float:
        return self.latency_ns_at(99.0, kind)

    def p999(self, kind: str = "all") -> float:
        return self.latency_ns_at(99.9, kind)

    def mean_latency_ns(self, kind: str = "all") -> float:
        values = self._latencies(kind)
        if not values:
            return 0.0
        return sum(values) / len(values)

    def max_latency_ns(self, kind: str = "all") -> float:
        values = self._latencies(kind)
        return values[-1] if values else 0.0

    # -- throughput ----------------------------------------------------------------

    @property
    def makespan_ns(self) -> float:
        """First arrival to last completion (the busy horizon)."""
        if not self.records:
            return 0.0
        first = min(r.arrival_ns for r in self.records)
        last = max(
            (r.finish_ns for r in self.records if r.completed),
            default=first,
        )
        return max(0.0, last - first)

    @property
    def offered_qps(self) -> float:
        """Arrival rate over the arrival window."""
        if len(self.records) < 2:
            return 0.0
        first = min(r.arrival_ns for r in self.records)
        last = max(r.arrival_ns for r in self.records)
        if last <= first:
            return 0.0
        return (len(self.records) - 1) / ((last - first) * 1e-9)

    @property
    def goodput_qps(self) -> float:
        """Completed requests per second over the busy horizon."""
        span = self.makespan_ns
        if span <= 0:
            return 0.0
        return self.completed_requests / (span * 1e-9)

    # -- rendering -------------------------------------------------------------------

    def as_dict(self) -> Dict:
        """Stable machine-readable summary (for ``BENCH_*.json``)."""
        summary: Dict = {
            "requests": {
                "total": self.total_requests,
                "completed": self.completed_requests,
                "shed": self.shed_requests,
                "rejected": self.rejected_requests,
                "degraded": self.degraded_requests,
                "retried": self.retried_requests,
                "verified": self.verified_requests,
            },
            "latency_ns": {},
            "throughput": {
                "offered_qps": self.offered_qps,
                "goodput_qps": self.goodput_qps,
                "shed_rate": self.shed_rate,
                "rejected_rate": self.rejected_rate,
            },
            "batching": {
                "mean_batch_size": self.mean_batch_size,
                "degraded_batches": self.degraded_batches,
            },
            "queue": {"peak_outstanding": self.peak_outstanding},
        }
        for kind in ("all", "serialize", "deserialize"):
            if not self._latencies(kind):
                continue
            entry = {
                name: self.latency_ns_at(q, kind) for name, q in SLO_QUANTILES
            }
            entry["mean"] = self.mean_latency_ns(kind)
            entry["max"] = self.max_latency_ns(kind)
            summary["latency_ns"][kind] = entry
        streamed = [r for r in self.records if r.streamed and r.completed]
        if streamed:
            ttfbs = sorted(r.ttfb_ns for r in streamed)
            summary["streaming"] = {
                "streamed_requests": len(streamed),
                "chunks": sum(r.chunks for r in streamed),
                "ttfb_ns": {
                    "p50": exact_quantile(ttfbs, 50.0),
                    "p95": exact_quantile(ttfbs, 95.0),
                    "p99": exact_quantile(ttfbs, 99.0),
                    "mean": sum(ttfbs) / len(ttfbs),
                    "max": ttfbs[-1],
                },
            }
        tenants = sorted({r.tenant for r in self.records if r.tenant})
        if tenants:
            summary["tenants"] = {}
            for tenant in tenants:
                population = [r for r in self.records if r.tenant == tenant]
                done = sorted(
                    r.latency_ns for r in population if r.completed
                )
                entry = {
                    "total": len(population),
                    "completed": len(done),
                    "shed": sum(
                        1 for r in population if r.outcome == OUTCOME_SHED
                    ),
                    "degraded": sum(
                        1 for r in population if r.outcome == OUTCOME_DEGRADED
                    ),
                    "priority": population[0].priority,
                }
                if done:
                    entry["p99_ns"] = exact_quantile(done, 99.0)
                summary["tenants"][tenant] = entry
        if self.runtime_caches is not None:
            summary["runtime_caches"] = self.runtime_caches
        if self.fault_report is not None:
            summary["faults"] = self.fault_report.as_dict()
        return summary

    def to_table(self, title: str = "Service SLO report") -> ReportTable:
        table = ReportTable(
            title,
            ["Kind", "N", "p50 (us)", "p95 (us)", "p99 (us)", "p999 (us)",
             "Mean (us)", "Max (us)"],
        )
        for kind in ("all", "serialize", "deserialize"):
            values = self._latencies(kind)
            if not values:
                continue
            table.add_row(
                kind,
                str(len(values)),
                f"{self.p50(kind) / 1e3:.2f}",
                f"{self.p95(kind) / 1e3:.2f}",
                f"{self.p99(kind) / 1e3:.2f}",
                f"{self.p999(kind) / 1e3:.2f}",
                f"{self.mean_latency_ns(kind) / 1e3:.2f}",
                f"{self.max_latency_ns(kind) / 1e3:.2f}",
            )
        table.add_note(
            f"offered {self.offered_qps:,.0f} rps, goodput "
            f"{self.goodput_qps:,.0f} rps, shed {self.shed_requests} "
            f"({self.shed_rate * 100:.2f}%), rejected "
            f"{self.rejected_requests} ({self.rejected_rate * 100:.2f}%), "
            f"degraded {self.degraded_requests} "
            f"(batches {self.degraded_batches})"
        )
        table.add_note(
            f"mean batch size {self.mean_batch_size:.2f}, peak queue "
            f"{self.peak_outstanding}, verified {self.verified_requests}"
        )
        streamed = [r for r in self.records if r.streamed and r.completed]
        if streamed:
            ttfbs = sorted(r.ttfb_ns for r in streamed)
            table.add_note(
                f"streaming: {len(streamed)} responses in "
                f"{sum(r.chunks for r in streamed)} chunks, TTFB p50 "
                f"{exact_quantile(ttfbs, 50.0) / 1e3:.2f} us / p99 "
                f"{exact_quantile(ttfbs, 99.0) / 1e3:.2f} us"
            )
        if self.runtime_caches is not None:
            plan = self.runtime_caches.get("plan_cache", {})
            codegen = self.runtime_caches.get("codegen_cache", {})
            layout = self.runtime_caches.get("layout_cache", {})
            pool = self.runtime_caches.get("buffer_pool", {})
            table.add_note(
                f"caches: plan hit rate {plan.get('hit_rate', 0.0) * 100:.1f}% "
                f"({plan.get('entries', 0)} plans), codegen hit rate "
                f"{codegen.get('hit_rate', 0.0) * 100:.1f}% "
                f"({codegen.get('entries', 0)} kernels), layout hit rate "
                f"{layout.get('hit_rate', 0.0) * 100:.1f}%, arena high water "
                f"{pool.get('high_water_mark_bytes', 0)} B"
            )
        if self.fault_report is not None and self.fault_report.layers:
            totals = self.fault_report.totals
            table.add_note(
                f"faults: injected {totals.injected}, detected "
                f"{totals.detected}, recovered {totals.recovered}, "
                f"fallbacks {totals.fallbacks}"
            )
        return table
