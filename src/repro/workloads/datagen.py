"""Deterministic data generation helpers.

All workloads must be reproducible run-to-run (the simulators are
deterministic, so the inputs must be too). ``DeterministicRandom`` is a
small xorshift* generator independent of Python's global RNG state.
"""

from __future__ import annotations

from typing import List, Sequence

_MASK64 = (1 << 64) - 1


class DeterministicRandom:
    """xorshift64* PRNG with convenience draws."""

    def __init__(self, seed: int = 0x1234_5678_9ABC_DEF1):
        if seed == 0:
            seed = 0xDEAD_BEEF_CAFE_F00D
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        x = self._state
        x ^= (x >> 12) & _MASK64
        x ^= (x << 25) & _MASK64
        x ^= (x >> 27) & _MASK64
        self._state = x
        return (x * 0x2545F4914F6CDD1D) & _MASK64

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        span = high - low + 1
        return low + self.next_u64() % span

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return (self.next_u64() >> 11) / float(1 << 53)

    def gauss_like(self) -> float:
        """Cheap approximately-normal draw (sum of three uniforms)."""
        return (self.random() + self.random() + self.random()) / 1.5 - 1.0

    def choice(self, items: Sequence):
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self.randint(0, len(items) - 1)]

    def sample_indices(self, population: int, count: int) -> List[int]:
        """``count`` distinct indices from ``range(population)``."""
        if count > population:
            raise ValueError(f"cannot sample {count} from {population}")
        if count > population // 2:
            # Dense draw: partial Fisher-Yates over the full range.
            pool = list(range(population))
            for i in range(count):
                j = self.randint(i, population - 1)
                pool[i], pool[j] = pool[j], pool[i]
            return pool[:count]
        chosen = set()
        out = []
        while len(out) < count:
            index = self.randint(0, population - 1)
            if index not in chosen:
                chosen.add(index)
                out.append(index)
        return out

    def ascii_string(self, length: int) -> str:
        letters = "abcdefghijklmnopqrstuvwxyz0123456789"
        return "".join(self.choice(letters) for _ in range(length))
