"""Workload generators: microbenchmarks, JSBS objects, synthetic data."""

from repro.workloads.micro import (
    MICROBENCH_CONFIGS,
    MicrobenchConfig,
    build_graph_bench,
    build_list_bench,
    build_microbench,
    build_tree_bench,
)
from repro.workloads.jsbs import (
    JSBS_LIBRARY_PROFILES,
    LibraryProfile,
    build_media_content,
    register_jsbs_klasses,
)
from repro.workloads.datagen import DeterministicRandom

__all__ = [
    "MicrobenchConfig",
    "MICROBENCH_CONFIGS",
    "build_microbench",
    "build_tree_bench",
    "build_list_bench",
    "build_graph_bench",
    "LibraryProfile",
    "JSBS_LIBRARY_PROFILES",
    "build_media_content",
    "register_jsbs_klasses",
    "DeterministicRandom",
]
