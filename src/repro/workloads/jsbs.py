"""Java Serialization Benchmark Suite (JSBS) workload (paper Section VI-C).

JSBS (the ``jvm-serializers`` project) benchmarks ~90 serializer
configurations on one fixed object: a ``MediaContent`` record holding a
``Media`` description and a list of ``Image``s. We reproduce:

* the benchmark object itself (:func:`build_media_content`), with strings
  modelled as char arrays so they live on the heap like Java strings;
* the four libraries implemented functionally in this repository
  (java-builtin, kryo, kryo-manual, skyway) — kryo-manual being Kryo with
  hand-written serialization functions (modelled as a constant-factor
  reduction of Kryo's per-object dispatch cost);
* calibrated *cost profiles* for the remaining suite entries. Running 88
  third-party Java libraries is impossible here, so each profile stores a
  round-trip-time factor and a serialized-size factor relative to Java
  S/D, drawn from the published spread of the suite (fast binary codecs at
  ~0.14x of Java S/D down to reflective XML at ~6x). The Figure 12 bench
  measures Java S/D with the CPU model and positions every profile off it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.jvm.heap import Heap, HeapObject
from repro.jvm.klass import FieldDescriptor, FieldKind, InstanceKlass, KlassRegistry
from repro.jvm.strings import new_string
from repro.workloads.datagen import DeterministicRandom


@dataclass(frozen=True)
class LibraryProfile:
    """One JSBS entry as factors relative to Java built-in serialization."""

    name: str
    time_factor: float  # round-trip time / Java S/D round-trip time
    size_factor: float  # serialized size / Java S/D serialized size

    def __post_init__(self) -> None:
        if self.time_factor <= 0 or self.size_factor <= 0:
            raise ValueError(f"{self.name}: factors must be positive")


def _spread(
    names: List[str], fastest: float, slowest: float, size_low: float,
    size_high: float, seed: int,
) -> List[LibraryProfile]:
    """Log-spaced time factors with jitter, deterministic per seed."""
    rng = DeterministicRandom(seed)
    count = len(names)
    profiles = []
    for index, name in enumerate(names):
        position = index / max(1, count - 1)
        time_factor = fastest * (slowest / fastest) ** position
        time_factor *= 1.0 + 0.12 * rng.gauss_like()
        size_factor = size_low + (size_high - size_low) * position
        size_factor *= 1.0 + 0.10 * rng.gauss_like()
        profiles.append(
            LibraryProfile(name, max(0.05, time_factor), max(0.1, size_factor))
        )
    return profiles


# Fast hand-tuned binary codecs -> generic binary -> text (JSON) -> XML.
# Factors bracket the published jvm-serializers spread; the mean time
# factor (~0.4x of Java S/D) reproduces the paper's 43.4x average Cereal
# speedup given Cereal's ~108x advantage over Java S/D round trips.
_FAST_BINARY = [
    "colfer", "protostuff", "protostuff-manual", "fst-flat", "fst",
    "kryo-flat-pre", "kryo-opt", "protostuff-runtime", "msgpack-manual",
    "wobly", "wobly-compact", "capnproto", "flatbuffers", "datakernel",
    "protobuf", "thrift-compact", "thrift", "avro-specific",
]
_GENERIC_BINARY = [
    "msgpack-databind", "cbor-databind", "cbor-col-databind", "smile-databind",
    "smile-col-databind", "avro-generic", "hessian", "protobuf-nano",
    "obser", "jboss-serialization", "jboss-marshalling-river",
    "jboss-marshalling-river-manual", "jboss-marshalling-serial",
    "exi-exificient", "ion-databind", "ion-manual", "sbe",
    "bson-jackson-databind", "javolution", "dse", "simple-binary",
]
_JSON_TEXT = [
    "json-jackson-databind", "json-jackson-manual", "json-jackson-tree",
    "json-dsljson", "json-boon-databind", "json-gson-databind",
    "json-gson-manual", "json-gson-tree", "json-fastjson-databind",
    "json-genson-databind", "json-flexjson", "json-json-lib-databind",
    "json-jsonij-jpath", "json-argo-manual", "json-svenson-databind",
    "json-minimal-json", "json-json-simple", "json-json-smart",
    "json-org-json", "json-jsonpath", "json-jsonautodetect", "json-moshi",
    "json-purejson",
]
_XML_TEXT = [
    "xml-xstream+c", "xml-xstream+c-woodstox", "xml-xstream+c-aalto",
    "xml-cxml", "xml-cxml-woodstox", "xml-cxml-aalto", "xml-jaxb",
    "xml-jaxb-woodstox", "xml-jaxb-aalto", "xml-jibx", "xml-exi-jaxb",
    "xml-fastinfoset-jaxb", "xml-javax", "xml-javolution",
    "xml-transform-manual", "xml-sax-manual", "xml-stax-manual",
    "xml-dom-databind", "xml-castor", "xml-xmlbeans", "xml-simple-databind",
    "xml-xembly",
]


def _build_profiles() -> List[LibraryProfile]:
    profiles: List[LibraryProfile] = []
    profiles.extend(_spread(_FAST_BINARY, 0.13, 0.32, 0.25, 0.55, seed=11))
    profiles.extend(_spread(_GENERIC_BINARY, 0.26, 0.65, 0.45, 0.95, seed=23))
    profiles.extend(_spread(_JSON_TEXT, 0.45, 1.40, 1.00, 2.20, seed=37))
    profiles.extend(_spread(_XML_TEXT, 0.85, 3.20, 1.60, 3.40, seed=53))
    # The three measured software baselines also appear in the suite; the
    # benchmark adds them from the CPU model rather than from profiles.
    return profiles


#: 84 cost profiles + the 4 measured implementations = the "88 other
#: S/D libraries" of Section VI-C; Cereal makes 89.
JSBS_LIBRARY_PROFILES: List[LibraryProfile] = _build_profiles()

#: kryo-manual: hand-written serialize functions remove per-object dispatch.
KRYO_MANUAL_TIME_FACTOR = 0.62  # of regular Kryo (registration + manual code)


# -- the benchmark object -----------------------------------------------------------


def register_jsbs_klasses(registry: KlassRegistry) -> None:
    """Install the MediaContent/Media/Image classes."""
    if "Image" not in registry:
        registry.register(
            InstanceKlass(
                "Image",
                [
                    FieldDescriptor("uri", FieldKind.REFERENCE),
                    FieldDescriptor("title", FieldKind.REFERENCE),
                    FieldDescriptor("width", FieldKind.INT),
                    FieldDescriptor("height", FieldKind.INT),
                    FieldDescriptor("size", FieldKind.INT),
                ],
            )
        )
    if "Media" not in registry:
        registry.register(
            InstanceKlass(
                "Media",
                [
                    FieldDescriptor("uri", FieldKind.REFERENCE),
                    FieldDescriptor("title", FieldKind.REFERENCE),
                    FieldDescriptor("width", FieldKind.INT),
                    FieldDescriptor("height", FieldKind.INT),
                    FieldDescriptor("format", FieldKind.REFERENCE),
                    FieldDescriptor("duration", FieldKind.LONG),
                    FieldDescriptor("size", FieldKind.LONG),
                    FieldDescriptor("bitrate", FieldKind.INT),
                    FieldDescriptor("persons", FieldKind.REFERENCE),
                    FieldDescriptor("player", FieldKind.INT),
                    FieldDescriptor("copyright", FieldKind.REFERENCE),
                ],
            )
        )
    if "MediaContent" not in registry:
        registry.register(
            InstanceKlass(
                "MediaContent",
                [
                    FieldDescriptor("media", FieldKind.REFERENCE),
                    FieldDescriptor("images", FieldKind.REFERENCE),
                ],
            )
        )
    registry.array_klass(FieldKind.CHAR)
    registry.array_klass(FieldKind.REFERENCE)


def _heap_string(heap: Heap, text: str) -> HeapObject:
    """A Java-style string: a char array on the heap."""
    return new_string(heap, text)


def build_media_content(heap: Heap, image_count: int = 2) -> HeapObject:
    """The JSBS ``MediaContent`` benchmark object."""
    register_jsbs_klasses(heap.registry)
    rng = DeterministicRandom(seed=0x4A5B)

    media = heap.new_instance("Media")
    media.set("uri", _heap_string(heap, "http://javaone.com/keynote.mpg"))
    media.set("title", _heap_string(heap, "Javaone Keynote"))
    media.set("width", 640)
    media.set("height", 480)
    media.set("format", _heap_string(heap, "video/mpg4"))
    media.set("duration", 18_000_000)
    media.set("size", 58_982_400)
    media.set("bitrate", 262_144)
    media.set("player", 0)
    media.set("copyright", _heap_string(heap, "none"))
    persons = heap.new_array(FieldKind.REFERENCE, 2)
    persons.set_element(0, _heap_string(heap, "Bill Gates"))
    persons.set_element(1, _heap_string(heap, "Steve Jobs"))
    media.set("persons", persons)

    images = heap.new_array(FieldKind.REFERENCE, image_count)
    for index in range(image_count):
        image = heap.new_instance("Image")
        image.set(
            "uri",
            _heap_string(heap, f"http://javaone.com/keynote_{'large' if index else 'small'}.jpg"),
        )
        image.set("title", _heap_string(heap, f"Javaone Keynote {index}"))
        image.set("width", 1024 if index else 320)
        image.set("height", 768 if index else 240)
        image.set("size", rng.randint(1, 2))
        images.set_element(index, image)

    content = heap.new_instance("MediaContent")
    content.set("media", media)
    content.set("images", images)
    return content
