"""Microbenchmarks: Tree, List, Graph (paper Figure 9, Table II).

Table II's configurations, scaled down so the Python models run in seconds
(scale factors recorded per config and used to shrink the host caches by
the same ratio, keeping the footprint-vs-LLC regime of the paper):

    Tree   narrow(leaf: 2, node: 2,097,150) / wide(leaf: 8, node: 19,173,960)
    List   small(length: 524,288)           / large(length: 2,097,152)
    Graph  sparse(node: 4,096, edge: 1)     / dense(node: 4,096, edge: 4,095)

Shapes:

* **Tree** — every node has ``leaf`` child references plus a small payload;
  built level by level up to the node budget (Figure 9a).
* **List** — singly-linked nodes with a payload (Figure 9b).
* **Graph** — nodes with an adjacency *reference array* of ``edge`` targets
  chosen deterministically; edges point at random earlier/later nodes so
  the structure is a connected random digraph (Figure 9c). Dense graphs
  re-reference already-visited nodes heavily, which is where Cereal's
  reference packing wins on size (Table IV).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.common.errors import ConfigError
from repro.common.hashing import stable_hash
from repro.jvm.heap import Heap, HeapObject
from repro.jvm.klass import FieldDescriptor, FieldKind, InstanceKlass, KlassRegistry
from repro.workloads.datagen import DeterministicRandom

#: Scale factor relative to Table II (workload and host caches shrink alike).
DEFAULT_SCALE = 1024
_GRAPH_SCALE = 16  # graphs are denser; a milder shrink keeps enough edges


@dataclass(frozen=True)
class MicrobenchConfig:
    """One microbenchmark instance: shape, paper size, scaled size."""

    name: str  # e.g. "tree-narrow"
    shape: str  # "tree" | "list" | "graph"
    variant: str  # "narrow"/"wide"/"small"/"large"/"sparse"/"dense"
    paper_objects: int
    scale: int
    fanout: int = 0  # tree leaf count / graph edges per node

    @property
    def scaled_objects(self) -> int:
        return max(8, self.paper_objects // self.scale)


MICROBENCH_CONFIGS: Dict[str, MicrobenchConfig] = {
    "tree-narrow": MicrobenchConfig(
        "tree-narrow", "tree", "narrow", 2_097_150, DEFAULT_SCALE, fanout=2
    ),
    "tree-wide": MicrobenchConfig(
        "tree-wide", "tree", "wide", 19_173_960, DEFAULT_SCALE * 4, fanout=8
    ),
    "list-small": MicrobenchConfig(
        "list-small", "list", "small", 524_288, DEFAULT_SCALE
    ),
    "list-large": MicrobenchConfig(
        "list-large", "list", "large", 2_097_152, DEFAULT_SCALE
    ),
    "graph-sparse": MicrobenchConfig(
        "graph-sparse", "graph", "sparse", 4_096, _GRAPH_SCALE, fanout=1
    ),
    "graph-dense": MicrobenchConfig(
        "graph-dense", "graph", "dense", 4_096, _GRAPH_SCALE, fanout=255
    ),
}


# -- klasses --------------------------------------------------------------------


def register_micro_klasses(registry: KlassRegistry) -> None:
    """Install the microbenchmark classes into a klass registry."""
    if "TreeNode2" not in registry:
        registry.register(
            InstanceKlass(
                "TreeNode2",
                [
                    FieldDescriptor("payload", FieldKind.LONG),
                    FieldDescriptor("depth", FieldKind.INT),
                    FieldDescriptor("left", FieldKind.REFERENCE),
                    FieldDescriptor("right", FieldKind.REFERENCE),
                ],
            )
        )
    if "TreeNode8" not in registry:
        fields = [
            FieldDescriptor("payload", FieldKind.LONG),
            FieldDescriptor("depth", FieldKind.INT),
        ]
        fields.extend(
            FieldDescriptor(f"child{i}", FieldKind.REFERENCE) for i in range(8)
        )
        registry.register(InstanceKlass("TreeNode8", fields))
    if "ListNode" not in registry:
        registry.register(
            InstanceKlass(
                "ListNode",
                [
                    FieldDescriptor("value", FieldKind.LONG),
                    FieldDescriptor("payload", FieldKind.DOUBLE),
                    FieldDescriptor("next", FieldKind.REFERENCE),
                ],
            )
        )
    if "GraphNode" not in registry:
        registry.register(
            InstanceKlass(
                "GraphNode",
                [
                    FieldDescriptor("node_id", FieldKind.LONG),
                    FieldDescriptor("weight", FieldKind.DOUBLE),
                    FieldDescriptor("adjacency", FieldKind.REFERENCE),
                ],
            )
        )
    registry.array_klass(FieldKind.REFERENCE)


# -- builders ---------------------------------------------------------------------


def build_tree_bench(heap: Heap, config: MicrobenchConfig) -> HeapObject:
    """k-ary tree built level by level up to the scaled node budget."""
    if config.shape != "tree":
        raise ConfigError(f"{config.name} is not a tree config")
    register_micro_klasses(heap.registry)
    klass_name = f"TreeNode{config.fanout}"
    budget = config.scaled_objects
    rng = DeterministicRandom(seed=stable_hash(config.name) & 0xFFFF_FFFF | 1)

    def new_node(depth: int) -> HeapObject:
        node = heap.new_instance(klass_name)
        node.set("payload", rng.next_u64() >> 1)
        node.set("depth", depth)
        return node

    root = new_node(0)
    created = 1
    frontier = deque([root])
    child_fields = (
        ["left", "right"]
        if config.fanout == 2
        else [f"child{i}" for i in range(config.fanout)]
    )
    while frontier and created < budget:
        parent = frontier.popleft()
        depth = parent.get("depth") + 1
        for field_name in child_fields:
            if created >= budget:
                break
            child = new_node(depth)
            parent.set(field_name, child)
            frontier.append(child)
            created += 1
    return root


def build_list_bench(heap: Heap, config: MicrobenchConfig) -> HeapObject:
    """Singly-linked list of the scaled length."""
    if config.shape != "list":
        raise ConfigError(f"{config.name} is not a list config")
    register_micro_klasses(heap.registry)
    rng = DeterministicRandom(seed=stable_hash(config.name) & 0xFFFF_FFFF | 1)
    length = config.scaled_objects
    head = heap.new_instance("ListNode")
    head.set("value", 0)
    head.set("payload", rng.random())
    current = head
    for index in range(1, length):
        node = heap.new_instance("ListNode")
        node.set("value", index)
        node.set("payload", rng.random())
        current.set("next", node)
        current = node
    return head


def build_graph_bench(heap: Heap, config: MicrobenchConfig) -> HeapObject:
    """Connected random digraph: each node has ``fanout`` adjacency edges.

    Node 0 is the root; every node i > 0 receives one guaranteed incoming
    edge from an earlier node so the whole graph is reachable, matching the
    paper's setup where one serialize call covers all nodes.
    """
    if config.shape != "graph":
        raise ConfigError(f"{config.name} is not a graph config")
    register_micro_klasses(heap.registry)
    rng = DeterministicRandom(seed=stable_hash(config.name) & 0xFFFF_FFFF | 1)
    count = config.scaled_objects
    fanout = min(config.fanout, count - 1)

    nodes = []
    for index in range(count):
        node = heap.new_instance("GraphNode")
        node.set("node_id", index)
        node.set("weight", rng.random())
        nodes.append(node)

    # Guaranteed reachability edges: node i gets an edge from a random j < i.
    incoming: Dict[int, List[int]] = {i: [] for i in range(count)}
    for i in range(1, count):
        j = rng.randint(0, i - 1)
        incoming[j].append(i)

    for i, node in enumerate(nodes):
        required = incoming[i]
        extra = max(0, fanout - len(required))
        targets = list(required)
        for _ in range(extra):
            targets.append(rng.randint(0, count - 1))
        adjacency = heap.new_array(FieldKind.REFERENCE, len(targets))
        for slot, target in enumerate(targets):
            adjacency.set_element(slot, nodes[target])
        node.set("adjacency", adjacency)
    return nodes[0]


_BUILDERS: Dict[str, Callable[[Heap, MicrobenchConfig], HeapObject]] = {
    "tree": build_tree_bench,
    "list": build_list_bench,
    "graph": build_graph_bench,
}


def build_microbench(heap: Heap, name: str) -> HeapObject:
    """Build microbenchmark ``name`` (a key of MICROBENCH_CONFIGS)."""
    try:
        config = MICROBENCH_CONFIGS[name]
    except KeyError:
        raise ConfigError(
            f"unknown microbenchmark {name!r}; choose from "
            f"{sorted(MICROBENCH_CONFIGS)}"
        ) from None
    return _BUILDERS[config.shape](heap, config)
