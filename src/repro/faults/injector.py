"""The deterministic fault injector.

Every decision is a pure function of ``(policy.seed, channel, index)``
where ``channel`` names the decision point (e.g. ``"transfer.shuffle"``)
and ``index`` is a per-channel monotonic counter. Draws are produced by the
splitmix64 finalizer over those three inputs — no global RNG state, so
interleaving decisions across channels cannot perturb each other, and two
runs that perform the same operations in the same order inject byte-
identical fault schedules.

Fired decisions additionally land as instant events on the process-wide
tracer (track ``faults``), so a Chrome-trace export of a chaos run shows
exactly where in simulated time each fault hit. Quiet decisions (the
overwhelmingly common case) never touch the tracer.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.hashing import fnv1a64 as _fnv1a64
from repro.common.hashing import splitmix64
from repro.faults.policy import FaultPolicy
from repro.faults.report import FaultReport
from repro.obs.trace import get_tracer

_TWO64 = float(1 << 64)

#: Transfer fault kinds, in draw-partition order.
FAULT_CORRUPT = "corrupt"
FAULT_DROP = "drop"
FAULT_LATENCY = "latency"


class FaultInjector:
    """Seeded fault oracle shared by every resilience layer of one run."""

    def __init__(self, policy: Optional[FaultPolicy] = None):
        self.policy = policy if policy is not None else FaultPolicy()
        self.report = FaultReport()
        self._counters: Dict[str, int] = {}

    # -- the deterministic draw ------------------------------------------------------

    def draw(self, channel: str) -> float:
        """Uniform [0, 1) draw; advances only ``channel``'s counter."""
        index = self._counters.get(channel, 0)
        self._counters[channel] = index + 1
        mixed = splitmix64(
            splitmix64(self.policy.seed ^ _fnv1a64(channel)) ^ index
        )
        return mixed / _TWO64

    def operation_index(self, channel: str) -> int:
        """How many draws ``channel`` has consumed so far."""
        return self._counters.get(channel, 0)

    # -- decision points ---------------------------------------------------------------

    def transfer_fault(self, site: str) -> Optional[str]:
        """Outcome of one transfer attempt at ``site``.

        Returns ``"corrupt"``, ``"drop"``, ``"latency"``, or ``None`` —
        one draw per attempt, partitioned by the policy's probabilities.
        """
        policy = self.policy
        if policy.transfer_fault_prob <= 0.0:
            return None
        draw = self.draw(f"transfer.{site}")
        if draw < policy.corruption_prob:
            fault = FAULT_CORRUPT
        elif draw < policy.corruption_prob + policy.drop_prob:
            fault = FAULT_DROP
        elif draw < policy.transfer_fault_prob:
            fault = FAULT_LATENCY
        else:
            return None
        self._mark("fault.transfer", site=site, kind=fault)
        return fault

    def corrupt_bytes(self, data: bytes, site: str) -> bytes:
        """Deterministically damage ``data``: truncate or flip one byte."""
        if not data:
            return data
        channel = f"corrupt.{site}"
        if self.draw(channel) < self.policy.truncation_fraction:
            keep = min(int(self.draw(channel) * len(data)), len(data) - 1)
            return data[:keep]
        position = min(int(self.draw(channel) * len(data)), len(data) - 1)
        flip = 1 + min(int(self.draw(channel) * 255), 254)
        mutated = bytearray(data)
        mutated[position] ^= flip
        return bytes(mutated)

    def executor_lost(self) -> bool:
        """Does the executor holding the just-produced map output die?"""
        if self.policy.executor_loss_prob <= 0.0:
            return False
        lost = self.draw("executor") < self.policy.executor_loss_prob
        if lost:
            self._mark("fault.executor")
        return lost

    def accelerator_fault(self, kind: str) -> bool:
        """Does the accelerator overflow a fixed structure on this op?"""
        if self.policy.accelerator_fault_prob <= 0.0:
            return False
        fired = (
            self.draw(f"accelerator.{kind}")
            < self.policy.accelerator_fault_prob
        )
        if fired:
            self._mark("fault.accelerator", kind=kind)
        return fired

    def node_lost(self, node_id: str) -> bool:
        """Does serving node ``node_id`` drop out at this decision point?

        The cluster control loop asks once per live node per tick, each on
        its own channel, so adding or removing nodes never perturbs the
        fault schedule of the others.
        """
        if self.policy.node_loss_prob <= 0.0:
            return False
        fired = self.draw(f"node.{node_id}") < self.policy.node_loss_prob
        if fired:
            self._mark("fault.node", node=node_id)
        return fired

    def heap_exhausted(self, site: str) -> bool:
        """Does this deserialization hit an exhausted destination heap?"""
        if self.policy.heap_exhaustion_prob <= 0.0:
            return False
        fired = self.draw(f"heap.{site}") < self.policy.heap_exhaustion_prob
        if fired:
            self._mark("fault.heap", site=site)
        return fired

    def _mark(self, name: str, **attrs) -> None:
        """Drop an instant event on the faults track (no-op when disabled)."""
        get_tracer().instant(name, category="fault", track="faults", **attrs)

    def jitter(self, site: str) -> float:
        """Uniform draw feeding retry-backoff jitter (seeded like faults)."""
        return self.draw(f"backoff.{site}")
