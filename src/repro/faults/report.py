"""Per-layer fault accounting.

Every resilience layer records what the injector did to it and what it did
about it. A fault is *injected* when the injector fires, *detected* when
the layer noticed (checksum mismatch, missing transfer, caught
``CapacityError``), *recovered* when a retry / re-execution / fallback made
the operation succeed anyway, and a *fallback* when recovery switched to a
software serializer. ``injected - detected`` therefore counts silent
corruption, and ``detected - recovered`` counts faults that escalated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.obs.metrics import get_registry

#: Canonical layer names, in reporting order.
LAYERS = ("transfer", "executor", "accelerator", "heap")

_COUNTER_NAMES = ("injected", "detected", "recovered", "fallbacks")


@dataclass
class LayerFaultStats:
    """Counters for one resilience layer."""

    injected: int = 0
    detected: int = 0
    recovered: int = 0
    fallbacks: int = 0

    def merge(self, other: "LayerFaultStats") -> None:
        self.injected += other.injected
        self.detected += other.detected
        self.recovered += other.recovered
        self.fallbacks += other.fallbacks

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in _COUNTER_NAMES}


@dataclass
class FaultReport:
    """Injected / detected / recovered / fallback counts per layer."""

    layers: Dict[str, LayerFaultStats] = field(default_factory=dict)

    def layer(self, name: str) -> LayerFaultStats:
        if name not in self.layers:
            self.layers[name] = LayerFaultStats()
        return self.layers[name]

    # -- recording ----------------------------------------------------------------
    # Each record_* also bumps the process-wide ``faults.<counter>`` metric
    # labeled by layer, so registry snapshots see fault activity without
    # holding a reference to this (per-run) report.

    def record_injected(self, layer: str, count: int = 1) -> None:
        self.layer(layer).injected += count
        get_registry().counter("faults.injected", layer=layer).inc(count)

    def record_detected(self, layer: str, count: int = 1) -> None:
        self.layer(layer).detected += count
        get_registry().counter("faults.detected", layer=layer).inc(count)

    def record_recovered(self, layer: str, count: int = 1) -> None:
        self.layer(layer).recovered += count
        get_registry().counter("faults.recovered", layer=layer).inc(count)

    def record_fallback(self, layer: str, count: int = 1) -> None:
        self.layer(layer).fallbacks += count
        get_registry().counter("faults.fallbacks", layer=layer).inc(count)

    # -- aggregation ---------------------------------------------------------------

    @property
    def totals(self) -> LayerFaultStats:
        total = LayerFaultStats()
        for stats in self.layers.values():
            total.merge(stats)
        return total

    def merge(self, other: "FaultReport") -> None:
        for name, stats in other.layers.items():
            self.layer(name).merge(stats)

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        """Stable (sorted) nested dict, for comparisons and persistence."""
        return {
            name: self.layers[name].as_dict() for name in sorted(self.layers)
        }

    def to_text(self) -> str:
        """Deterministic plain-text rendering (byte-identical per seed)."""
        from repro.analysis.report import ReportTable

        table = ReportTable(
            "Fault report",
            ["Layer", "Injected", "Detected", "Recovered", "Fallbacks"],
        )
        ordered = [name for name in LAYERS if name in self.layers]
        ordered += [name for name in sorted(self.layers) if name not in LAYERS]
        for name in ordered:
            stats = self.layers[name]
            table.add_row(
                name,
                str(stats.injected),
                str(stats.detected),
                str(stats.recovered),
                str(stats.fallbacks),
            )
        totals = self.totals
        table.add_row(
            "TOTAL",
            str(totals.injected),
            str(totals.detected),
            str(totals.recovered),
            str(totals.fallbacks),
        )
        return table.render()
