"""Deterministic fault injection for the mini-Spark resilience layer.

The package has three pieces:

* :class:`~repro.faults.policy.FaultPolicy` — a frozen description of
  *what* can go wrong and how often (corruption, drops, latency spikes,
  executor loss, accelerator capacity faults, heap exhaustion);
* :class:`~repro.faults.injector.FaultInjector` — decides, purely as a
  function of ``(seed, channel, operation index)``, whether each specific
  operation faults, so two runs with the same seed inject *exactly* the
  same faults;
* :class:`~repro.faults.report.FaultReport` — per-layer counters of
  injected / detected / recovered / fallback events, exposed through
  :mod:`repro.analysis`.

The layers that consume the injector are
:class:`repro.spark.transfer.ResilientTransfer` (shuffle / broadcast /
collect re-fetches), :class:`repro.spark.engine.PartitionedDataset`
(lineage re-execution) and :class:`repro.spark.backend.CerealBackend`
(software-serializer fallback on :class:`~repro.common.errors.CapacityError`).
"""

from repro.faults.injector import FaultInjector
from repro.faults.policy import FaultPolicy
from repro.faults.report import FaultReport, LayerFaultStats

__all__ = ["FaultInjector", "FaultPolicy", "FaultReport", "LayerFaultStats"]
