"""Fault policies: what can fail, and with what probability.

A policy is immutable; the same policy object can drive many runs. The
three transfer-level probabilities (corruption, drop, latency spike) are
mutually exclusive outcomes of a single per-transfer draw, so their sum
must stay <= 1.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.common.errors import ConfigError

_PROBABILITY_FIELDS = (
    "corruption_prob",
    "drop_prob",
    "latency_spike_prob",
    "executor_loss_prob",
    "accelerator_fault_prob",
    "heap_exhaustion_prob",
    "node_loss_prob",
    "truncation_fraction",
)


@dataclass(frozen=True)
class FaultPolicy:
    """Seeded, per-fault-kind probabilities for one chaos configuration."""

    seed: int = 0
    #: Transfer arrives with flipped bytes (or truncated — see below).
    corruption_prob: float = 0.0
    #: Of the corruption faults, this fraction truncate instead of bit-flip.
    truncation_fraction: float = 0.25
    #: Transfer never arrives (network drop / peer died before sending).
    drop_prob: float = 0.0
    #: Transfer arrives intact but late (congested network, GC'd peer).
    latency_spike_prob: float = 0.0
    #: Extra delay charged for one latency spike.
    latency_spike_ns: float = 5e6
    #: A map-side executor dies after producing a shuffle bucket.
    executor_loss_prob: float = 0.0
    #: The accelerator overflows a fixed-capacity structure (CAM / MAI
    #: queue) mid-operation and raises ``CapacityError``.
    accelerator_fault_prob: float = 0.0
    #: The destination heap cannot hold the rebuilt graph without an
    #: emergency collection first.
    heap_exhaustion_prob: float = 0.0
    #: A whole serving node (accelerator shards + software lane) drops out
    #: of the cluster. Evaluated once per node per cluster control tick.
    node_loss_prob: float = 0.0

    def __post_init__(self) -> None:
        for name in _PROBABILITY_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if self.transfer_fault_prob > 1.0:
            raise ConfigError(
                "corruption_prob + drop_prob + latency_spike_prob must not "
                f"exceed 1, got {self.transfer_fault_prob}"
            )
        if self.latency_spike_ns < 0:
            raise ConfigError("latency_spike_ns must be non-negative")

    @property
    def transfer_fault_prob(self) -> float:
        """Combined probability that one transfer attempt misbehaves."""
        return self.corruption_prob + self.drop_prob + self.latency_spike_prob

    @property
    def any_faults(self) -> bool:
        return any(
            getattr(self, name) > 0.0
            for name in _PROBABILITY_FIELDS
            if name != "truncation_fraction"
        )

    @classmethod
    def chaos(cls, seed: int = 0, probability: float = 0.05) -> "FaultPolicy":
        """Uniform chaos: every fault kind fires with ``probability``.

        The three transfer outcomes split the transfer budget evenly so the
        *total* per-transfer fault rate equals ``probability``. Use with
        ``frame_streams=True`` so injected corruption is detectable.
        """
        share = probability / 3.0
        return cls(
            seed=seed,
            corruption_prob=share,
            drop_prob=share,
            latency_spike_prob=share,
            executor_loss_prob=probability,
            accelerator_fault_prob=probability,
            heap_exhaustion_prob=probability,
            node_loss_prob=probability,
        )

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for name in _PROBABILITY_FIELDS:
            value = getattr(self, name)
            if name != "truncation_fraction" and value > 0:
                parts.append(f"{name}={value:g}")
        return "FaultPolicy(" + ", ".join(parts) + ")"


#: Shared "nothing ever fails" policy (used as a default).
NO_FAULTS = FaultPolicy()

# Keep the fields() import referenced for introspection helpers/tests.
POLICY_FIELD_NAMES = tuple(f.name for f in fields(FaultPolicy))
