"""Cereal: a specialized architecture for object serialization (ISCA 2020).

Python reproduction of Jang et al.'s hardware S/D accelerator, spanning the
simulated JVM heap (:mod:`repro.jvm`), the serialization formats
(:mod:`repro.formats`), the accelerator cycle model (:mod:`repro.cereal`),
the host-CPU cost model (:mod:`repro.cpu`), the workloads
(:mod:`repro.workloads`), and the mini-Spark analytics substrate
(:mod:`repro.spark`). See README.md for a guided tour and EXPERIMENTS.md
for the paper-vs-measured record.
"""

__version__ = "1.0.0"
