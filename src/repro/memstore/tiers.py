"""Cache tiers and the per-partition cache entry record.

Spark's storage levels collapse, for the S/D-vs-GC tradeoff, into three
tiers with distinct cost signatures:

* ``deserialized`` (``MEMORY_ONLY``) — the object graph stays live
  on-heap. Reads are free, but every resident byte raises the heap
  occupancy that prices *all* GC work through the
  :class:`~repro.memstore.model.GcCostModel` curve.
* ``serialized`` (``OFF_HEAP_SER``) — only the compact stream bytes are
  retained, off-heap, invisible to the collector. Every read pays a full
  deserialization (through whatever format/plan/codegen path the backend
  is configured with) plus GC for the rebuilt transient graph.
* ``spilled`` — the stream bytes live on local disk. No memory pressure
  at all; reads add a disk read of the stream on top of the serialized
  tier's costs, and demotion into the tier pays the disk write.

Entries only ever *demote* down this ladder under pressure
(``deserialized -> serialized -> spilled``); the eviction policy picks
the victims (:mod:`repro.memstore.policy`) and the manager charges the
transitions (:mod:`repro.memstore.manager`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List

__all__ = [
    "CacheEntry",
    "DEMOTION",
    "TIERS",
    "TIER_AUTO",
    "TIER_DESERIALIZED",
    "TIER_SERIALIZED",
    "TIER_SPILLED",
]

TIER_DESERIALIZED = "deserialized"
TIER_SERIALIZED = "serialized"
TIER_SPILLED = "spilled"
#: Placement decided by the configured policy at admission time.
TIER_AUTO = "auto"

TIERS = (TIER_DESERIALIZED, TIER_SERIALIZED, TIER_SPILLED)

#: Where pressure pushes an entry next. Spilled entries have nowhere
#: cheaper to go — disk is the floor.
DEMOTION = {
    TIER_DESERIALIZED: TIER_SERIALIZED,
    TIER_SERIALIZED: TIER_SPILLED,
}


@dataclass
class CacheEntry:
    """One cached partition: its stream, records, and cost templates.

    The Python-level ``records`` and ``stream`` are the *functional*
    truth — they exist regardless of tier so reads stay correct and
    linear-time. The tier decides what the *model* charges: the
    ``serialize_op`` / ``read_op`` templates (captured once at admission)
    are re-posted to the time ledger whenever the tier semantics say that
    work happens again.
    """

    entry_id: int
    partition: int
    tier: str
    stream: Any  # SerializedStream (kept untyped: memstore sits below spark)
    records: List[Any]  # materialized HeapObjects, partition order
    serialize_op: Any  # SDOperation template: one full serialize
    read_op: Any  # SDOperation template: one full deserialize
    #: Logical-clock timestamp of the last read (LRU input).
    last_access: int = 0
    #: Completed reads through this entry (cost-aware policies use it as
    #: the estimate of future access frequency).
    reads: int = 0
    #: Demotions this entry has suffered, by (from, to).
    demotions: List[Any] = field(default_factory=list)

    @property
    def graph_bytes(self) -> int:
        """Heap footprint of the materialized graph (deserialized tier)."""
        return self.serialize_op.graph_bytes

    @property
    def stream_bytes(self) -> int:
        """Compact stream footprint (serialized / spilled tiers)."""
        return self.serialize_op.stream_bytes

    def bytes_in_tier(self) -> int:
        """The bytes this entry charges against its current tier's budget."""
        if self.tier == TIER_DESERIALIZED:
            return self.graph_bytes
        return self.stream_bytes
