"""Tiered executor memory management for the mini-Spark model.

The package owns the S/D-vs-GC cache-storage tradeoff end to end:

* :mod:`repro.memstore.model` — the heap-occupancy-driven GC cost curve
  that replaces the seed's flat ``_GC_NS_PER_BYTE``;
* :mod:`repro.memstore.tiers` — the three tiers (deserialized on-heap,
  serialized off-heap, spilled) and the per-partition entry record;
* :mod:`repro.memstore.policy` — pluggable eviction/placement policies
  (``lru`` / ``size`` / ``cost``);
* :mod:`repro.memstore.manager` — the byte-budgeted manager that charges
  every tier transition to the time ledger, metrics, and trace.

Layering: this package sits *below* :mod:`repro.spark` (the engine
imports it) and must never import spark modules.
"""

from repro.memstore.manager import ExecutorMemoryManager, MemstoreConfig
from repro.memstore.model import (
    BASE_GC_NS_PER_BYTE,
    DEFAULT_KNEE,
    DEFAULT_MAX_MULTIPLIER,
    GcCostModel,
)
from repro.memstore.policy import (
    POLICY_NAMES,
    CostAwarePolicy,
    EvictionPolicy,
    LRUPolicy,
    SizeAwarePolicy,
    make_policy,
)
from repro.memstore.tiers import (
    DEMOTION,
    TIER_AUTO,
    TIER_DESERIALIZED,
    TIER_SERIALIZED,
    TIER_SPILLED,
    TIERS,
    CacheEntry,
)

__all__ = [
    "BASE_GC_NS_PER_BYTE",
    "CacheEntry",
    "CostAwarePolicy",
    "DEFAULT_KNEE",
    "DEFAULT_MAX_MULTIPLIER",
    "DEMOTION",
    "EvictionPolicy",
    "ExecutorMemoryManager",
    "GcCostModel",
    "LRUPolicy",
    "MemstoreConfig",
    "POLICY_NAMES",
    "SizeAwarePolicy",
    "TIER_AUTO",
    "TIER_DESERIALIZED",
    "TIER_SERIALIZED",
    "TIER_SPILLED",
    "TIERS",
    "make_policy",
]
