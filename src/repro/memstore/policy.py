"""Pluggable eviction and placement policies for the memstore.

A policy answers two questions, both deterministically (ties broken by
``entry_id``, never by hash order or wall clock):

* **eviction** — when a tier is over budget, which resident entry
  demotes? (:meth:`EvictionPolicy.select_victim`)
* **placement** — when a dataset is cached with ``tier="auto"``, which
  tier does each partition start in? (:meth:`EvictionPolicy.place`)

Three policies ship:

* ``lru`` — victim is the least-recently-read entry. Spark's own
  ``MemoryStore`` behaviour; the baseline.
* ``size`` — victim is the entry holding the most bytes in the tier
  (LRU tiebreak). Frees budget in the fewest demotions.
* ``cost`` — victim is the entry whose demotion buys the most modelled
  relief per unit of modelled future cost: rebuild cost (the S/D the
  demoted tier will charge on every future read, scaled by the entry's
  observed read count) is weighed against the bytes of pressure the
  demotion releases. This is the policy the paper's tradeoff motivates:
  when S/D is cheap (plans/codegen/Cereal), demoting is nearly free and
  the policy behaves like ``size``; when S/D is expensive (java
  interpreter), hot entries are kept on-heap at almost any GC price.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.common.errors import ConfigError
from repro.memstore.tiers import (
    CacheEntry,
    TIER_DESERIALIZED,
    TIER_SERIALIZED,
    TIER_SPILLED,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.memstore.manager import ExecutorMemoryManager

__all__ = [
    "CostAwarePolicy",
    "EvictionPolicy",
    "LRUPolicy",
    "SizeAwarePolicy",
    "make_policy",
]


class EvictionPolicy:
    """Deterministic victim selection and auto placement."""

    name = "abstract"

    def select_victim(
        self, candidates: List[CacheEntry], manager: "ExecutorMemoryManager"
    ) -> Optional[CacheEntry]:
        raise NotImplementedError

    def place(
        self, entry: CacheEntry, manager: "ExecutorMemoryManager"
    ) -> str:
        """Initial tier for an ``auto``-placed entry (default: serialized,
        the storage level the paper's applications use)."""
        return TIER_SERIALIZED


class LRUPolicy(EvictionPolicy):
    """Evict the least-recently-read entry (admission counts as a read)."""

    name = "lru"

    def select_victim(self, candidates, manager):
        if not candidates:
            return None
        return min(candidates, key=lambda e: (e.last_access, e.entry_id))


class SizeAwarePolicy(EvictionPolicy):
    """Evict the largest entry in the tier; LRU breaks byte ties."""

    name = "size"

    def select_victim(self, candidates, manager):
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda e: (-e.bytes_in_tier(), e.last_access, e.entry_id),
        )


class CostAwarePolicy(EvictionPolicy):
    """Weigh modelled rebuild cost against modelled pressure relief.

    For every candidate the policy scores ``future_cost / relief_bytes``
    and evicts the minimum — the entry that is cheapest to rebuild per
    byte of budget it frees:

    * demoting ``deserialized -> serialized`` costs one serialize now
      plus, per future read (estimated by the reads observed so far), one
      deserialize and the rebuilt graph's base GC; it relieves
      ``graph_bytes`` of heap occupancy.
    * demoting ``serialized -> spilled`` costs one disk write now plus a
      disk read per future read; it relieves ``stream_bytes`` of
      off-heap budget.
    """

    name = "cost"

    def _future_cost_ns(
        self, entry: CacheEntry, manager: "ExecutorMemoryManager"
    ) -> float:
        expected_reads = entry.reads
        if entry.tier == TIER_DESERIALIZED:
            per_read = entry.read_op.time_ns + (
                entry.graph_bytes * manager.gc_model.base_ns_per_byte
            )
            return entry.serialize_op.time_ns + expected_reads * per_read
        # serialized -> spilled: disk traffic both ways.
        io_ns = entry.stream_bytes * manager.io_ns_per_byte
        return io_ns + expected_reads * io_ns

    def select_victim(self, candidates, manager):
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda e: (
                self._future_cost_ns(e, manager) / max(e.bytes_in_tier(), 1),
                e.last_access,
                e.entry_id,
            ),
        )

    def place(self, entry, manager):
        """On-heap only when the GC price of residency undercuts per-read
        S/D. The residency penalty proxy is the extra GC a rebuild-sized
        transient allocation would pay each iteration with this graph
        pinned, versus without it."""
        if not manager.heap_room(entry.graph_bytes):
            return TIER_SERIALIZED
        model = manager.gc_model
        live = manager.on_heap_bytes
        penalty_per_read = entry.graph_bytes * model.base_ns_per_byte * (
            model.multiplier(live + entry.graph_bytes) - 1.0
        )
        sd_per_read = entry.read_op.time_ns + (
            entry.graph_bytes * model.base_ns_per_byte
        )
        if penalty_per_read < sd_per_read:
            return TIER_DESERIALIZED
        return TIER_SERIALIZED


_POLICIES = {
    LRUPolicy.name: LRUPolicy,
    SizeAwarePolicy.name: SizeAwarePolicy,
    CostAwarePolicy.name: CostAwarePolicy,
}


def make_policy(name: str) -> EvictionPolicy:
    """Instantiate a policy by name (``lru`` / ``size`` / ``cost``)."""
    cls = _POLICIES.get(name)
    if cls is None:
        raise ConfigError(
            f"unknown memstore policy {name!r} (choose from {sorted(_POLICIES)})"
        )
    return cls()


#: Exported for docs/benches that enumerate the sweep axis.
POLICY_NAMES = tuple(sorted(_POLICIES))
