"""The executor memory manager: byte budgets, tiers, and transitions.

:class:`ExecutorMemoryManager` owns one executor's modelled memory
budget and every cached partition's tier placement. It is the single
place cache storage costs are charged: admission, reads, demotions, and
spills all go through it, each transition posting its S/D / GC / disk
cost to the shared :class:`~repro.spark.metrics.TimeBreakdown`, bumping
``memstore.*`` metrics, and (when tracing is on) recording a
``memstore.<kind>`` span whose bounds are the time ledger before and
after the charge — so the trace, the counters, and the ledger reconcile
exactly.

Budget model (one executor lane, mirroring Spark's unified memory
manager at this reproduction's scale):

* ``budget_bytes`` — the executor heap budget. The deserialized tier may
  pin at most ``storage_fraction`` of it (Spark's storage region); the
  pinned bytes drive the :class:`~repro.memstore.model.GcCostModel`
  occupancy that prices *all* GC in the run.
* ``offheap_budget_bytes`` — cap on serialized-tier stream bytes.
* spill is unbounded (local disk), charged per byte moved.

Overflow never fails: an entry that cannot fit a tier after the policy
has evicted everything eligible simply lands one tier down, exactly like
Spark degrading ``MEMORY_ONLY`` to recompute-or-disk.

This module deliberately sits *below* :mod:`repro.spark` in the layer
graph (it is imported by the engine), so it never imports spark modules;
operation templates are duck-typed and copied with
:func:`dataclasses.replace`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.memstore.model import (
    BASE_GC_NS_PER_BYTE,
    DEFAULT_KNEE,
    DEFAULT_MAX_MULTIPLIER,
    GcCostModel,
)
from repro.memstore.policy import EvictionPolicy, make_policy
from repro.memstore.tiers import (
    DEMOTION,
    TIER_AUTO,
    TIER_DESERIALIZED,
    TIER_SERIALIZED,
    TIER_SPILLED,
    TIERS,
    CacheEntry,
)
from repro.obs.metrics import get_registry

__all__ = ["ExecutorMemoryManager", "MemstoreConfig"]

#: Local-disk spill bandwidth (B/s); matches the engine's HDFS-style
#: sequential I/O constant so spill traffic prices like other disk work.
_SPILL_DISK_BANDWIDTH = 500e6


@dataclass(frozen=True)
class MemstoreConfig:
    """Budgets, policy, and GC-curve shape for one executor."""

    budget_bytes: int = 512 * 1024 * 1024
    #: Fraction of the heap budget the deserialized tier may pin
    #: (Spark's ``spark.memory.storageFraction`` analogue).
    storage_fraction: float = 0.6
    #: Serialized-tier cap; ``None`` means equal to ``budget_bytes``
    #: (compact streams rarely bind before the heap does).
    offheap_budget_bytes: Optional[int] = None
    policy: str = "lru"
    base_gc_ns_per_byte: float = BASE_GC_NS_PER_BYTE
    gc_knee: float = DEFAULT_KNEE
    gc_max_multiplier: float = DEFAULT_MAX_MULTIPLIER

    def __post_init__(self):
        if self.budget_bytes <= 0:
            raise ConfigError(
                f"budget_bytes must be positive, got {self.budget_bytes}"
            )
        if not 0.0 < self.storage_fraction <= 1.0:
            raise ConfigError(
                f"storage_fraction must be in (0, 1], got {self.storage_fraction}"
            )
        if (
            self.offheap_budget_bytes is not None
            and self.offheap_budget_bytes <= 0
        ):
            raise ConfigError(
                f"offheap_budget_bytes must be positive, "
                f"got {self.offheap_budget_bytes}"
            )
        make_policy(self.policy)  # validate the name eagerly

    def build_gc_model(self) -> GcCostModel:
        return GcCostModel(
            budget_bytes=self.budget_bytes,
            base_ns_per_byte=self.base_gc_ns_per_byte,
            knee=self.gc_knee,
            max_multiplier=self.gc_max_multiplier,
        )

    @property
    def heap_tier_budget_bytes(self) -> int:
        return int(self.budget_bytes * self.storage_fraction)

    @property
    def resolved_offheap_budget_bytes(self) -> int:
        if self.offheap_budget_bytes is not None:
            return self.offheap_budget_bytes
        return self.budget_bytes


class ExecutorMemoryManager:
    """Owns tier placement and charges every cache-storage transition."""

    def __init__(
        self,
        config: MemstoreConfig,
        breakdown,
        gc_model: Optional[GcCostModel] = None,
        tracer=None,
        injector=None,
        transfer=None,
        disk_bandwidth: float = _SPILL_DISK_BANDWIDTH,
    ):
        self.config = config
        self.breakdown = breakdown
        self.gc_model = gc_model if gc_model is not None else config.build_gc_model()
        self.policy: EvictionPolicy = make_policy(config.policy)
        self.tracer = tracer
        self.injector = injector
        self.transfer = transfer
        self.io_ns_per_byte = 1e9 / disk_bandwidth

        self.heap_tier_budget = config.heap_tier_budget_bytes
        self.offheap_budget = config.resolved_offheap_budget_bytes

        self.entries: Dict[int, CacheEntry] = {}
        self._next_id = 0
        self._clock = 0
        #: Graph bytes pinned by deserialized-tier entries — the live set
        #: the GC curve prices everything against.
        self.on_heap_bytes = 0
        self.offheap_bytes = 0
        self.spilled_bytes = 0
        #: Modelled ns this manager has posted to the ledger, by kind.
        self.charged_ns: Dict[str, float] = {
            "serialize": 0.0,
            "deserialize": 0.0,
            "gc": 0.0,
            "io": 0.0,
        }
        #: Every tier transition: (entry_id, from_tier, to_tier, reason).
        self.transitions: List[Tuple[int, str, str, str]] = []
        self.admitted: Dict[str, int] = {tier: 0 for tier in TIERS}
        self.reads: Dict[str, int] = {tier: 0 for tier in TIERS}
        self.lost = 0
        self._registry = get_registry()

    # -- bookkeeping helpers -----------------------------------------------------------

    def _counter(self, name: str, **labels):
        return self._registry.counter(name, **labels)

    def _set_gauges(self) -> None:
        self._registry.gauge("memstore.on_heap_bytes").set(self.on_heap_bytes)
        self._registry.gauge("memstore.offheap_bytes").set(self.offheap_bytes)
        self._registry.gauge("memstore.spilled_bytes").set(self.spilled_bytes)

    def _record(self, kind: str, start_ns: float, **attrs) -> None:
        """A ``memstore.<kind>`` span spanning the charge on the ledger clock."""
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return
        tracer.record_span(
            f"memstore.{kind}",
            start_ns,
            self.breakdown.total_ns,
            category="memstore",
            track="memstore",
            **attrs,
        )

    def _charge_op(self, template, kind: str) -> None:
        """Re-post a captured S/D operation template to the ledger."""
        op = dataclasses.replace(template)
        self.breakdown.add_operation(op)
        self.charged_ns[kind] += op.time_ns

    def _charge_rebuild_gc(self, graph_bytes: int) -> None:
        """GC for a graph rebuilt from a stream — the *one* rebuild path.

        The rebuilt objects are fresh allocations the collector must
        evacuate; they are priced at the current pinned-live-set rate.
        Engine-side growth marks are synced past the functional
        materialization (``MiniSparkContext._sync_gc_mark``), so this
        charge can never be duplicated by ``_account_gc``.
        """
        ns = self.gc_model.charge_ns(graph_bytes, self.on_heap_bytes)
        self.breakdown.gc_ns += ns
        self.charged_ns["gc"] += ns

    def _charge_io(self, nbytes: int) -> None:
        ns = nbytes * self.io_ns_per_byte
        self.breakdown.io_ns += ns
        self.charged_ns["io"] += ns

    # -- budget queries ----------------------------------------------------------------

    def heap_room(self, nbytes: int) -> bool:
        return self.on_heap_bytes + nbytes <= self.heap_tier_budget

    def offheap_room(self, nbytes: int) -> bool:
        return self.offheap_bytes + nbytes <= self.offheap_budget

    def entries_in_tier(self, tier: str) -> List[CacheEntry]:
        return [e for e in self.entries.values() if e.tier == tier]

    @property
    def charged_total_ns(self) -> float:
        return sum(self.charged_ns.values())

    # -- eviction ----------------------------------------------------------------------

    def _tier_pressure(self, tier: str, need: int) -> bool:
        if tier == TIER_DESERIALIZED:
            return self.on_heap_bytes + need > self.heap_tier_budget
        if tier == TIER_SERIALIZED:
            return self.offheap_bytes + need > self.offheap_budget
        return False  # spill is unbounded

    def _make_room(self, tier: str, need: int, exclude_id: int) -> bool:
        """Demote policy-chosen victims until ``need`` bytes fit ``tier``.

        Returns True when the tier has room afterwards; False means even
        an empty tier cannot hold ``need`` (the caller overflows down).
        """
        while self._tier_pressure(tier, need):
            candidates = [
                e for e in self.entries_in_tier(tier) if e.entry_id != exclude_id
            ]
            victim = self.policy.select_victim(candidates, self)
            if victim is None:
                return not self._tier_pressure(tier, need)
            self._demote(victim, reason="pressure")
        return True

    def _demote(self, entry: CacheEntry, reason: str) -> None:
        """Move ``entry`` one tier down, charging the transition."""
        from_tier = entry.tier
        to_tier = DEMOTION[from_tier]
        start_ns = self.breakdown.total_ns

        if from_tier == TIER_DESERIALIZED:
            self.on_heap_bytes -= entry.graph_bytes
            # The graph must be serialized *now* to be stored compactly.
            self._charge_op(entry.serialize_op, "serialize")
            if self._make_room(
                TIER_SERIALIZED, entry.stream_bytes, entry.entry_id
            ):
                self.offheap_bytes += entry.stream_bytes
            else:
                to_tier = TIER_SPILLED  # off-heap full even after evicting
        elif from_tier == TIER_SERIALIZED:
            self.offheap_bytes -= entry.stream_bytes
        else:  # pragma: no cover - spill is the floor
            raise ConfigError("cannot demote a spilled entry")

        if to_tier == TIER_SPILLED:
            self._charge_io(entry.stream_bytes)  # disk write
            self.spilled_bytes += entry.stream_bytes

        entry.tier = to_tier
        entry.demotions.append((from_tier, to_tier))
        self.transitions.append((entry.entry_id, from_tier, to_tier, reason))
        self._counter(
            "memstore.transitions", tier_from=from_tier, tier_to=to_tier
        ).inc()
        self._set_gauges()
        kind = "spill" if to_tier == TIER_SPILLED else "evict"
        self._record(
            kind,
            start_ns,
            tier_from=from_tier,
            tier_to=to_tier,
            partition=entry.partition,
            bytes=entry.bytes_in_tier(),
            reason=reason,
        )

    # -- admission ---------------------------------------------------------------------

    def admit(
        self,
        partition: int,
        stream,
        records: List[Any],
        serialize_op,
        read_op,
        tier: str = TIER_SERIALIZED,
    ) -> CacheEntry:
        """Place one partition in the store, charging tier-entry costs.

        * ``deserialized`` — no S/D charged (the records are already
          live); the graph bytes start counting against the heap budget.
        * ``serialized`` — one serialize charged; stream bytes count
          against the off-heap budget.
        * ``auto`` — the policy's :meth:`~EvictionPolicy.place` decides.

        Either placement may overflow downwards after eviction, ending as
        deep as ``spilled`` (serialize plus disk write charged).
        """
        self._clock += 1
        entry = CacheEntry(
            entry_id=self._next_id,
            partition=partition,
            tier=tier,
            stream=stream,
            records=records,
            serialize_op=serialize_op,
            read_op=read_op,
            last_access=self._clock,
        )
        self._next_id += 1
        if tier == TIER_AUTO:
            tier = self.policy.place(entry, self)
        if tier not in TIERS:
            raise ConfigError(
                f"unknown cache tier {tier!r} (choose from {TIERS} or "
                f"{TIER_AUTO!r})"
            )
        start_ns = self.breakdown.total_ns

        serialize_charged = False
        if tier == TIER_DESERIALIZED:
            if self._make_room(TIER_DESERIALIZED, entry.graph_bytes, entry.entry_id):
                self.on_heap_bytes += entry.graph_bytes
            else:
                tier = TIER_SERIALIZED  # graph alone exceeds the region
        if tier == TIER_SERIALIZED:
            self._charge_op(serialize_op, "serialize")
            serialize_charged = True
            if self._make_room(TIER_SERIALIZED, entry.stream_bytes, entry.entry_id):
                self.offheap_bytes += entry.stream_bytes
            else:
                tier = TIER_SPILLED
        if tier == TIER_SPILLED:
            if not serialize_charged:
                # Direct spill admission still serializes first.
                self._charge_op(serialize_op, "serialize")
            self._charge_io(entry.stream_bytes)
            self.spilled_bytes += entry.stream_bytes

        entry.tier = tier
        self.entries[entry.entry_id] = entry
        self.admitted[tier] += 1
        self._counter("memstore.admitted", tier=tier).inc()
        self._set_gauges()
        self._record(
            "admit",
            start_ns,
            tier_from="none",
            tier_to=tier,
            partition=partition,
            bytes=entry.bytes_in_tier(),
        )
        return entry

    # -- reads -------------------------------------------------------------------------

    def read_entry(self, entry: CacheEntry) -> List[Any]:
        """One access to a cached partition, charged by its current tier.

        With a fault injector attached, the access first rolls the
        executor-loss die: a lost executor takes its cached copy with it,
        and the entry is rebuilt from lineage — re-serialized from its
        source records (plus a fresh spill write for spilled entries) —
        before the read proceeds. Spilled reads additionally cross the
        resilient transfer under site ``"spill"`` so injected disk
        corruption triggers the standard verified-retry path.
        """
        self._clock += 1
        entry.last_access = self._clock
        entry.reads += 1
        tier = entry.tier
        start_ns = self.breakdown.total_ns

        if self.injector is not None and self.injector.executor_lost():
            report = self.injector.report
            report.record_injected("executor")
            report.record_detected("executor")
            # Lineage rebuild: the source records are re-serialized into a
            # fresh cached copy (and re-spilled, for on-disk entries).
            self._charge_op(entry.serialize_op, "serialize")
            if tier == TIER_SPILLED:
                self._charge_io(entry.stream_bytes)
            self.lost += 1
            self._counter("memstore.lost", tier=tier).inc()
            report.record_recovered("executor")

        if tier != TIER_DESERIALIZED:
            if tier == TIER_SPILLED:
                self._charge_io(entry.stream_bytes)  # disk read
                if self.transfer is not None and self.injector is not None:
                    self.transfer.deliver(entry.stream, "spill")
            self._charge_op(entry.read_op, "deserialize")
            self._charge_rebuild_gc(entry.graph_bytes)

        self.reads[tier] += 1
        self._counter("memstore.reads", tier=tier).inc()
        self._record(
            "read", start_ns, tier_from=tier, tier_to=tier,
            partition=entry.partition, bytes=entry.bytes_in_tier(),
        )
        return list(entry.records)

    def read_cached(self, entries: List[CacheEntry]) -> List[List[Any]]:
        """Read a whole cached dataset (one list per partition)."""
        return [self.read_entry(entry) for entry in entries]

    # -- views -------------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The manager's full state as one JSON-able dict."""
        by_tier = {tier: 0 for tier in TIERS}
        for entry in self.entries.values():
            by_tier[entry.tier] += 1
        evictions = sum(
            1 for _, _, to, _ in self.transitions if to == TIER_SERIALIZED
        )
        spills = sum(
            1 for _, _, to, _ in self.transitions if to == TIER_SPILLED
        )
        return {
            "policy": self.policy.name,
            "budget_bytes": self.config.budget_bytes,
            "heap_tier_budget_bytes": self.heap_tier_budget,
            "offheap_budget_bytes": self.offheap_budget,
            "entries": len(self.entries),
            "by_tier": by_tier,
            "on_heap_bytes": self.on_heap_bytes,
            "offheap_bytes": self.offheap_bytes,
            "spilled_bytes": self.spilled_bytes,
            "gc_occupancy": self.gc_model.occupancy(self.on_heap_bytes),
            "gc_multiplier": self.gc_model.multiplier(self.on_heap_bytes),
            "admitted": dict(self.admitted),
            "reads": dict(self.reads),
            "transitions": len(self.transitions),
            "evictions": evictions,
            "spills": spills,
            "lost": self.lost,
            "charged_ns": dict(self.charged_ns),
            "charged_total_ns": self.charged_total_ns,
        }
