"""Heap-occupancy-driven GC cost curve.

The seed model charged a flat ``8 ns`` of copying-collector work per byte
allocated, regardless of how full the executor heap was. That misses the
system-level tension the memstore exists to explore ("Garbage Collection
or Serialization? Between a Rock and a Hard Place!", PAPERS.md): a
generational collector's cost per evacuated byte is *not* constant — as
the live set approaches the heap budget, collections run more often, each
one copies a larger survivor fraction, and full-heap pauses start firing.
Cost per allocated byte rises super-linearly with occupancy.

:class:`GcCostModel` keeps the seed's flat rate as its floor and layers a
pressure multiplier on top:

* occupancy at or below ``knee`` — multiplier 1.0, byte-identical to the
  seed model (a mostly-empty heap collects young garbage cheaply);
* occupancy between ``knee`` and 1.0 — the multiplier rises
  quadratically to ``max_multiplier``;
* occupancy at or past the budget — clamped at ``max_multiplier`` (the
  collector is thrashing; the model stays finite and deterministic).

"Occupancy" here is *modelled live set over budget* — for the Spark model
that live set is the graph bytes pinned on-heap by deserialized-tier
cache entries (:class:`~repro.memstore.manager.ExecutorMemoryManager`),
because that is precisely what ``MEMORY_ONLY`` caching does to a real
executor: every cached partition survives every collection, amplifying
the cost of all other allocation. Transient allocations are nursery
churn; they are the bytes being charged *for*, at the rate the pinned
live set sets.
"""

from __future__ import annotations

from repro.common.errors import ConfigError

__all__ = ["BASE_GC_NS_PER_BYTE", "GcCostModel"]

#: The seed model's flat copying-collector cost per allocated byte at this
#: scale: each scaled allocation stands in for the full-scale app's nursery
#: churn (calibrated against Figure 2's GC share). This is the curve's
#: floor — at low occupancy the two models are byte-identical.
BASE_GC_NS_PER_BYTE = 8.0

#: Default occupancy where pressure starts to bite. Below this the young
#: generation absorbs everything and collections stay cheap.
DEFAULT_KNEE = 0.3

#: Default multiplier at 100% occupancy (and the clamp beyond it).
DEFAULT_MAX_MULTIPLIER = 24.0


class GcCostModel:
    """Cost-per-allocated-byte as a function of modelled heap occupancy."""

    __slots__ = ("budget_bytes", "base_ns_per_byte", "knee", "max_multiplier")

    def __init__(
        self,
        budget_bytes: int,
        base_ns_per_byte: float = BASE_GC_NS_PER_BYTE,
        knee: float = DEFAULT_KNEE,
        max_multiplier: float = DEFAULT_MAX_MULTIPLIER,
    ):
        if budget_bytes <= 0:
            raise ConfigError(
                f"gc budget_bytes must be positive, got {budget_bytes}"
            )
        if base_ns_per_byte <= 0:
            raise ConfigError(
                f"base_ns_per_byte must be positive, got {base_ns_per_byte}"
            )
        if not 0.0 <= knee < 1.0:
            raise ConfigError(f"knee must be in [0, 1), got {knee}")
        if max_multiplier < 1.0:
            raise ConfigError(
                f"max_multiplier must be >= 1, got {max_multiplier}"
            )
        self.budget_bytes = budget_bytes
        self.base_ns_per_byte = base_ns_per_byte
        self.knee = knee
        self.max_multiplier = max_multiplier

    def occupancy(self, live_bytes: float) -> float:
        """Modelled live set as a fraction of the budget (may exceed 1)."""
        return live_bytes / self.budget_bytes

    def multiplier(self, live_bytes: float) -> float:
        """Pressure multiplier at ``live_bytes`` of pinned live set.

        1.0 up to the knee, quadratic rise to ``max_multiplier`` at the
        budget, clamped beyond it. Monotone non-decreasing in
        ``live_bytes`` by construction.
        """
        occupancy = self.occupancy(live_bytes)
        if occupancy <= self.knee:
            return 1.0
        if occupancy >= 1.0:
            return self.max_multiplier
        x = (occupancy - self.knee) / (1.0 - self.knee)
        return 1.0 + (self.max_multiplier - 1.0) * x * x

    def ns_per_byte(self, live_bytes: float) -> float:
        return self.base_ns_per_byte * self.multiplier(live_bytes)

    def charge_ns(self, grown_bytes: float, live_bytes: float) -> float:
        """GC cost of allocating ``grown_bytes`` at the current pressure.

        Zero or negative growth charges exactly nothing — the accounting
        marks only ever move forward.
        """
        if grown_bytes <= 0:
            return 0.0
        return grown_bytes * self.ns_per_byte(live_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GcCostModel(budget={self.budget_bytes}, "
            f"base={self.base_ns_per_byte}, knee={self.knee}, "
            f"max={self.max_multiplier})"
        )
