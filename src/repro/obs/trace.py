"""Span tracing with dual clocks and a bounded ring buffer.

A :class:`Tracer` records *spans* (named intervals with parent/child
nesting, per-span attributes, and a track — the Chrome-trace "thread" the
span renders on) and *instant events* (zero-duration markers, e.g. fault
injections). Every span carries two clocks:

* **simulated nanoseconds** — the discrete-event clock of whatever layer
  is being traced (service event loop, device timeline, Spark time
  ledger). The tracer holds the current simulated time; integrations push
  it forward with :meth:`Tracer.advance` and spans default to it. Layers
  that already know exact interval bounds (the server's per-request
  records, the device simulator's unit timelines) record them
  retrospectively with :meth:`Tracer.record_span`.
* **wall nanoseconds** — ``time.perf_counter_ns()`` captured at span
  enter/exit, so real Python cost can be read next to modelled cost.

Exports (:mod:`repro.obs.export`) use the simulated clock, which makes a
seeded run's trace byte-deterministic; wall times ride along as optional
attributes.

The span and event stores are bounded ring buffers (oldest entries are
dropped first and counted), so an hours-long service run with tracing
left on degrades to a rolling window instead of OOMing the process.

The tracer is **disabled by default**: every recording call starts with
one attribute check and returns, which is the whole cost the production
fast paths pay (the ≤5% budget gated by ``bench_wallclock.py``).
"""

from __future__ import annotations

import functools
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = [
    "InstantEvent",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
]

DEFAULT_CAPACITY = 1 << 16


@dataclass
class Span:
    """One named interval on one track."""

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    track: str
    start_ns: float  # simulated clock
    end_ns: float = 0.0
    start_wall_ns: int = 0
    end_wall_ns: int = 0
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns

    @property
    def wall_duration_ns(self) -> int:
        return self.end_wall_ns - self.start_wall_ns


@dataclass
class InstantEvent:
    """A zero-duration marker (fault fired, retry scheduled, ...)."""

    name: str
    category: str
    track: str
    ts_ns: float  # simulated clock
    wall_ns: int
    attrs: Dict[str, object] = field(default_factory=dict)


class Tracer:
    """Bounded recorder of spans and instant events with nesting."""

    def __init__(self, enabled: bool = False, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.enabled = enabled
        self.capacity = capacity
        self._spans: "deque[Span]" = deque(maxlen=capacity)
        self._events: "deque[InstantEvent]" = deque(maxlen=capacity)
        self._stack: List[Span] = []
        self._next_id = 1
        self._sim_now = 0.0
        self.spans_recorded = 0
        self.events_recorded = 0

    # -- lifecycle ----------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        """Drop every recorded span/event and rewind the clocks."""
        self._spans.clear()
        self._events.clear()
        self._stack.clear()
        self._next_id = 1
        self._sim_now = 0.0
        self.spans_recorded = 0
        self.events_recorded = 0

    # -- the simulated clock ------------------------------------------------------

    @property
    def sim_now_ns(self) -> float:
        return self._sim_now

    def advance(self, sim_ns: float) -> None:
        """Push the simulated clock forward (never backward)."""
        if self.enabled and sim_ns > self._sim_now:
            self._sim_now = sim_ns

    # -- recording ----------------------------------------------------------------

    def _new_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    @contextmanager
    def span(self, name: str, category: str = "span", track: str = "main", **attrs):
        """Context manager: a span from the current sim time to exit time.

        Nesting follows the ``with`` structure: the innermost open span is
        the parent. The body receives the :class:`Span` (or ``None`` when
        tracing is disabled) so it can attach attributes as it learns
        them.
        """
        if not self.enabled:
            yield None
            return
        span = Span(
            span_id=self._new_id(),
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            category=category,
            track=track,
            start_ns=self._sim_now,
            start_wall_ns=time.perf_counter_ns(),
            attrs=dict(attrs),
        )
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end_wall_ns = time.perf_counter_ns()
            span.end_ns = max(self._sim_now, span.start_ns)
            self._append_span(span)

    def trace(self, name: str, category: str = "span", track: str = "main") -> Callable:
        """Decorator form of :meth:`span` (disabled mode adds one branch)."""

        def decorate(fn: Callable) -> Callable:
            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                if not self.enabled:
                    return fn(*args, **kwargs)
                with self.span(name, category=category, track=track):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    def record_span(
        self,
        name: str,
        start_ns: float,
        end_ns: float,
        category: str = "span",
        track: str = "main",
        parent: Optional[Span] = None,
        **attrs,
    ) -> Optional[Span]:
        """Record an interval whose bounds are already known (event loops,
        device timelines). Does not touch the nesting stack; pass
        ``parent`` explicitly to build retrospective hierarchies."""
        if not self.enabled:
            return None
        if end_ns < start_ns:
            raise ValueError(
                f"span {name!r} ends before it starts ({end_ns} < {start_ns})"
            )
        wall = time.perf_counter_ns()
        span = Span(
            span_id=self._new_id(),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            category=category,
            track=track,
            start_ns=start_ns,
            end_ns=end_ns,
            start_wall_ns=wall,
            end_wall_ns=wall,
            attrs=dict(attrs),
        )
        self._append_span(span)
        return span

    def instant(
        self,
        name: str,
        ts_ns: Optional[float] = None,
        category: str = "event",
        track: str = "main",
        **attrs,
    ) -> None:
        """Record a zero-duration marker (defaults to the current sim time)."""
        if not self.enabled:
            return
        self._events.append(
            InstantEvent(
                name=name,
                category=category,
                track=track,
                ts_ns=self._sim_now if ts_ns is None else ts_ns,
                wall_ns=time.perf_counter_ns(),
                attrs=dict(attrs),
            )
        )
        self.events_recorded += 1

    def _append_span(self, span: Span) -> None:
        self._spans.append(span)
        self.spans_recorded += 1

    # -- views --------------------------------------------------------------------

    def spans(self) -> List[Span]:
        return list(self._spans)

    def events(self) -> List[InstantEvent]:
        return list(self._events)

    @property
    def dropped_spans(self) -> int:
        """Spans evicted by the ring buffer (recorded minus retained)."""
        return self.spans_recorded - len(self._spans)

    @property
    def dropped_events(self) -> int:
        return self.events_recorded - len(self._events)

    def stats(self) -> Dict[str, int]:
        return {
            "spans_recorded": self.spans_recorded,
            "spans_retained": len(self._spans),
            "spans_dropped": self.dropped_spans,
            "events_recorded": self.events_recorded,
            "events_retained": len(self._events),
            "events_dropped": self.dropped_events,
            "capacity": self.capacity,
        }


#: The process-wide tracer; disabled until a bench/test turns it on.
_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide tracer; returns the previous one (tests)."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous
