"""Trace exporters: Chrome trace-event JSON and a flat text summary.

:func:`to_chrome_trace` renders a :class:`~repro.obs.trace.Tracer` as a
Chrome trace-event document — open it at ``chrome://tracing`` or
https://ui.perfetto.dev to scrub through a service run's request spans,
shard unit timelines, and fault markers. The mapping:

* span → one complete event (``ph: "X"``) with ``ts``/``dur`` in
  microseconds of *simulated* time;
* instant event → ``ph: "i"`` with thread scope;
* every distinct track → one ``tid`` plus a ``thread_name`` metadata
  event, so Perfetto labels rows "requests", "shard0", "spark", ...

Exports are deterministic for a seeded run: events sort on
``(ts, tid, name)`` and wall-clock fields are only included when
``include_wall=True`` (they land under ``args`` and naturally differ
run-to-run).

:func:`validate_chrome_trace` is the structural gate the tests and CI
run over every exported file: required keys per phase, integer pid/tid,
non-negative monotonic timestamps, JSON-serializability.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.trace import Tracer

__all__ = [
    "text_summary",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]

_PID = 1
_VALID_PHASES = ("X", "i", "M")


def _track_ids(tracer: Tracer) -> Dict[str, int]:
    tracks = {span.track for span in tracer.spans()}
    tracks.update(event.track for event in tracer.events())
    return {track: index for index, track in enumerate(sorted(tracks))}


def to_chrome_trace(
    tracer: Tracer,
    include_wall: bool = False,
    metadata: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The tracer's contents as a Chrome trace-event document (a dict)."""
    tids = _track_ids(tracer)
    events: List[Dict[str, object]] = []
    for span in tracer.spans():
        args: Dict[str, object] = dict(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if include_wall:
            args["wall_dur_ns"] = span.wall_duration_ns
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "pid": _PID,
                "tid": tids[span.track],
                "ts": span.start_ns / 1e3,
                "dur": span.duration_ns / 1e3,
                "args": args,
            }
        )
    for event in tracer.events():
        events.append(
            {
                "name": event.name,
                "cat": event.category,
                "ph": "i",
                "s": "t",  # thread-scoped marker
                "pid": _PID,
                "tid": tids[event.track],
                "ts": event.ts_ns / 1e3,
                "args": dict(event.attrs),
            }
        )
    events.sort(key=lambda e: (e["ts"], e["tid"], e["name"]))
    # Thread-name metadata first, so viewers label rows before drawing.
    named: List[Dict[str, object]] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": tid,
            "args": {"name": track},
        }
        for track, tid in sorted(tids.items(), key=lambda kv: kv[1])
    ]
    document: Dict[str, object] = {
        "traceEvents": named + events,
        "displayTimeUnit": "ns",
        "metadata": dict(metadata or {}),
    }
    document["metadata"].setdefault("clock", "simulated-ns")
    document["metadata"].setdefault("dropped_spans", tracer.dropped_spans)
    document["metadata"].setdefault("dropped_events", tracer.dropped_events)
    return document


def write_chrome_trace(
    tracer: Tracer,
    path: str,
    include_wall: bool = False,
    metadata: Optional[Dict[str, object]] = None,
) -> str:
    """Validate and write the trace JSON to ``path``; returns ``path``."""
    document = to_chrome_trace(tracer, include_wall=include_wall, metadata=metadata)
    validate_chrome_trace(document)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def validate_chrome_trace(document: Dict[str, object]) -> Dict[str, int]:
    """Assert ``document`` is well-formed Chrome trace JSON.

    Raises :class:`ValueError` naming the first malformed event; returns
    per-phase counts on success so callers can gate on non-emptiness.
    """
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("trace document must be a dict with 'traceEvents'")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    try:
        json.dumps(document)
    except (TypeError, ValueError) as error:
        raise ValueError(f"trace document is not JSON-serializable: {error}")
    counts = {phase: 0 for phase in _VALID_PHASES}
    last_ts = -1.0
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} is not an object")
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            raise ValueError(f"{where} has unknown phase {phase!r}")
        counts[phase] += 1
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"{where} is missing a non-empty 'name'")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"{where} field {key!r} must be an int")
        if phase == "M":
            continue  # metadata events carry no timestamp
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"{where} 'ts' must be a non-negative number")
        if ts < last_ts:
            raise ValueError(
                f"{where} breaks monotonic ts order ({ts} < {last_ts})"
            )
        last_ts = float(ts)
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where} 'dur' must be a non-negative number")
    return counts


def text_summary(tracer: Tracer, top: int = 12) -> str:
    """A flat per-(category, name) digest of the trace, for logs."""
    groups: Dict[tuple, List[float]] = {}
    for span in tracer.spans():
        groups.setdefault((span.category, span.name), []).append(span.duration_ns)
    event_counts: Dict[tuple, int] = {}
    for event in tracer.events():
        key = (event.category, event.name)
        event_counts[key] = event_counts.get(key, 0) + 1
    lines = [
        f"trace summary: {tracer.spans_recorded} spans "
        f"({tracer.dropped_spans} dropped), "
        f"{tracer.events_recorded} instants "
        f"({tracer.dropped_events} dropped)"
    ]
    ranked = sorted(
        groups.items(), key=lambda item: -sum(item[1])
    )[:top]
    for (category, name), durations in ranked:
        total = sum(durations)
        lines.append(
            f"  {category}/{name}: n={len(durations)} "
            f"total={total / 1e3:,.1f}us mean={total / len(durations) / 1e3:,.2f}us "
            f"max={max(durations) / 1e3:,.2f}us"
        )
    for (category, name), count in sorted(event_counts.items()):
        lines.append(f"  {category}/{name}: {count} instant(s)")
    return "\n".join(lines)
