"""``repro.obs`` — unified tracing + metrics for every layer.

The paper's analysis lives or dies on *attribution*: decomposing S/D time
into per-stage costs (walk, pack, MAI, DMA) and separating it from GC,
queueing, and retry time. This package is the substrate that produces
that attribution everywhere, for free, in every bench and test:

* :mod:`repro.obs.metrics` — a process-wide registry of labeled
  counters, gauges, and histograms (log-scale buckets + exact
  small-sample quantiles) with ``snapshot()``/``delta()``. The
  plan-cache, layout-cache, and buffer-pool ``stats()`` views all read
  from it now, and the one shared quantile definition
  (:func:`~repro.obs.metrics.exact_quantile`) backs both
  ``repro.analysis.percentile`` and the service SLO summaries.
* :mod:`repro.obs.trace` — a span tracer with dual clocks (simulated ns
  + wall ns), context-manager/decorator/retrospective APIs, parent/child
  nesting, instant events, and bounded ring buffers. The service event
  loop, device simulator, mini-Spark engine, and fault injector all emit
  into it when enabled; disabled (the default) every hook is a single
  attribute check.
* :mod:`repro.obs.export` — Chrome trace-event JSON (open in
  ``chrome://tracing`` / Perfetto) plus a flat text summary, with a
  structural validator the tests and CI run over every exported file.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exact_quantile,
    get_registry,
    set_registry,
)
from repro.obs.trace import (
    InstantEvent,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
)
from repro.obs.export import (
    text_summary,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "exact_quantile",
    "get_registry",
    "set_registry",
    "InstantEvent",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "text_summary",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
