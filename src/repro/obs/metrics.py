"""Process-wide metrics: labeled counters, gauges, and histograms.

The reproduction previously grew one bespoke stats dict per subsystem —
``plan_cache_stats()``, ``layout_cache.stats()``, ``pool_stats()``, the
hand-rolled SLO percentile math — each with its own reset semantics and
schema. This module is the one registry they all record into now:

* :class:`Counter` — monotonically increasing count (``inc``), e.g. cache
  hits, requests by outcome, fault injections by layer.
* :class:`Gauge` — a settable level (``set`` / ``set_max``), e.g. the
  buffer pool's high-water mark or resident cache entries.
* :class:`Histogram` — a value distribution with fixed log2-scale buckets
  plus an exact small-sample reservoir, so quantiles are *exact* until the
  sample count exceeds the reservoir and bucket-interpolated beyond it.

Metrics are keyed on ``(name, sorted labels)``; fetching the same key
twice returns the same object, so modules can cache handles at import
time. :meth:`MetricsRegistry.snapshot` renders the whole registry as one
flat JSON-able dict and :meth:`MetricsRegistry.delta` diffs two snapshots,
which is what the benchmark emitter uses to report per-run (rather than
per-process) movement.

Cost model: counters and gauges stay live even when the registry is
disabled — they are single int/float updates, exactly what the bespoke
stats dicts they replaced already paid, and the ``stats()`` views and CI
cache-health gates depend on them. ``disable()`` is the no-op fast path
for the *expensive* instruments: histogram observation (sorting reservoir
upkeep) returns immediately, and the span tracer in
:mod:`repro.obs.trace` carries its own independent switch.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "exact_quantile",
    "get_registry",
    "set_registry",
]

#: log2 buckets: bucket ``i`` holds values in ``[2**(i-1), 2**i)`` (bucket
#: 0 holds everything below 1). 64 buckets cover any ns-scale latency.
_NUM_BUCKETS = 64


def exact_quantile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of pre-sorted ``ordered`` (q in [0, 100]).

    This is the *one* quantile definition in the reproduction: the SLO
    summaries, :func:`repro.analysis.report.percentile`, and every
    histogram's exact path all route here, so "p99" means the same number
    in every report. Edge cases are exact by construction: an empty series
    raises a clear :class:`ValueError`, one sample returns that sample,
    and ``q == 0`` / ``q == 100`` return the true min / max.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"quantile q must be in [0, 100], got {q}")
    if not ordered:
        raise ValueError("cannot take a quantile of no samples")
    if len(ordered) == 1 or q == 0.0:
        return ordered[0]
    if q == 100.0:
        return ordered[-1]
    rank = (len(ordered) - 1) * (q / 100.0)
    low = math.floor(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def _bucket_index(value: float) -> int:
    """The log2 bucket for ``value`` (values < 1 land in bucket 0)."""
    if value < 1.0:
        return 0
    return min(_NUM_BUCKETS - 1, int(value).bit_length())


LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_key(name: str, labels: LabelKey) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A settable level (last-write-wins, plus a high-water helper)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        """Record a high-water mark: keep the larger of old and new."""
        if value > self.value:
            self.value = value

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Log2-bucketed distribution with an exact small-sample reservoir.

    The first ``exact_limit`` observations are retained verbatim, so
    small-sample quantiles (the common case for per-run SLO summaries) are
    exact — identical to :func:`exact_quantile` over the raw series. Past
    the reservoir, quantiles interpolate linearly inside the covering log2
    bucket, which bounds the error by the bucket width while keeping
    memory fixed for arbitrarily long service runs.
    """

    __slots__ = (
        "name", "labels", "count", "total", "min", "max",
        "_buckets", "_samples", "_sorted", "exact_limit", "_registry",
    )

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        exact_limit: int = 4096,
        registry: Optional["MetricsRegistry"] = None,
    ):
        if exact_limit < 0:
            raise ValueError("exact_limit must be non-negative")
        self.name = name
        self.labels = labels
        self.exact_limit = exact_limit
        self._registry = registry
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._buckets = [0] * _NUM_BUCKETS
        self._samples: List[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        if self._registry is not None and not self._registry.enabled:
            return  # the disabled no-op fast path
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._buckets[_bucket_index(value)] += 1
        if len(self._samples) < self.exact_limit:
            self._samples.append(value)
            self._sorted = False

    @property
    def exact(self) -> bool:
        """True while every observation is still in the reservoir."""
        return self.count == len(self._samples)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def _ordered_samples(self) -> List[float]:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        return self._samples

    def quantile(self, q: float) -> float:
        """The q-th percentile (q in [0, 100]); exact when possible."""
        if self.count == 0:
            raise ValueError(
                f"histogram {self.name!r} has no samples to take a quantile of"
            )
        if self.exact:
            return exact_quantile(self._ordered_samples(), q)
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"quantile q must be in [0, 100], got {q}")
        if q == 0.0:
            return self.min
        if q == 100.0:
            return self.max
        # Bucket path: walk the cumulative counts, interpolate within the
        # covering bucket's [low, high) bounds.
        rank = (self.count - 1) * (q / 100.0)
        seen = 0
        for index, bucket_count in enumerate(self._buckets):
            if bucket_count == 0:
                continue
            if seen + bucket_count > rank:
                low = 0.0 if index == 0 else float(1 << (index - 1))
                high = float(1 << index)
                low = max(low, self.min)
                high = min(high, self.max)
                if bucket_count == 1 or high <= low:
                    return low
                fraction = (rank - seen) / (bucket_count - 1)
                return low + (high - low) * min(1.0, fraction)
            seen += bucket_count
        return self.max

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s observations into this histogram, in place.

        This is how per-node latency distributions aggregate into
        cluster-wide quantiles: counts, totals, min/max, and log2 buckets
        add element-wise, and the exact reservoirs concatenate. As long as
        the combined sample count still fits this histogram's
        ``exact_limit``, the merged quantiles remain *exact* — identical
        to :func:`exact_quantile` over the union of the raw series. Past
        the limit the merge degrades to the bucket-interpolated path, the
        same behaviour a single long-running histogram has.

        Merging never mutates ``other``; returns ``self`` for chaining.
        """
        if other.count == 0:
            return self
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        for index, bucket_count in enumerate(other._buckets):
            if bucket_count:
                self._buckets[index] += bucket_count
        room = self.exact_limit - len(self._samples)
        if room > 0:
            self._samples.extend(other._samples[:room])
            self._sorted = False
        return self

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._buckets = [0] * _NUM_BUCKETS
        self._samples = []
        self._sorted = True

    def summary(self) -> Dict[str, float]:
        """count/mean/min/max plus the SLO quantiles, as plain floats."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(50.0),
            "p95": self.quantile(95.0),
            "p99": self.quantile(99.0),
            "p999": self.quantile(99.9),
            "exact": self.exact,
        }


class MetricsRegistry:
    """Get-or-create home for every metric of one process (or test)."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: Dict[Tuple[str, LabelKey], object] = {}

    # -- lifecycle ---------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        """Stop histogram observation (counters/gauges stay live)."""
        self.enabled = False

    # -- get-or-create -----------------------------------------------------------

    def _fetch(self, cls, name: str, labels: Mapping[str, object], **kwargs):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._fetch(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._fetch(Gauge, name, labels)

    def histogram(self, name: str, exact_limit: int = 4096, **labels) -> Histogram:
        return self._fetch(
            Histogram, name, labels, exact_limit=exact_limit, registry=self
        )

    # -- views ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """The whole registry as one flat, JSON-able, sorted dict."""
        out: Dict[str, object] = {}
        for (name, labels), metric in self._metrics.items():
            key = _render_key(name, labels)
            if isinstance(metric, Counter):
                out[key] = metric.value
            elif isinstance(metric, Gauge):
                out[key] = metric.value
            else:
                out[key] = metric.summary()  # type: ignore[union-attr]
        return dict(sorted(out.items()))

    def delta(self, previous: Mapping[str, object]) -> Dict[str, object]:
        """Movement since ``previous`` (an earlier :meth:`snapshot`).

        Counters and gauges subtract; histogram summaries report the count
        delta plus the *current* distribution (quantiles are not
        subtractable).
        """
        current = self.snapshot()
        out: Dict[str, object] = {}
        for key, value in current.items():
            prior = previous.get(key)
            if isinstance(value, dict):
                changed = dict(value)
                if isinstance(prior, dict):
                    changed["count_delta"] = value.get("count", 0) - prior.get(
                        "count", 0
                    )
                else:
                    changed["count_delta"] = value.get("count", 0)
                out[key] = changed
            elif isinstance(prior, (int, float)):
                out[key] = value - prior
            else:
                out[key] = value
        return out

    def merge_snapshot(self, other: "MetricsRegistry") -> None:
        """Fold another registry's current state into this one.

        The cluster layer gives every server node a private registry and
        aggregates them through here: counters add, gauges keep the
        high-water mark, histograms :meth:`Histogram.merge` (so
        cluster-wide quantiles stay exact while the combined sample count
        fits the reservoir). Metrics absent from this registry are created
        with the same name/labels; a name registered under a different
        metric type raises :class:`TypeError` exactly like ``_fetch``
        does. ``other`` is read, never mutated.
        """
        for (name, labels), metric in other._metrics.items():
            if isinstance(metric, Counter):
                mine = self._fetch(Counter, name, dict(labels))
                mine.value += metric.value
            elif isinstance(metric, Gauge):
                mine = self._fetch(Gauge, name, dict(labels))
                mine.set_max(metric.value)
            else:
                mine = self._fetch(
                    Histogram,
                    name,
                    dict(labels),
                    exact_limit=metric.exact_limit,
                    registry=self,
                )
                mine.merge(metric)

    def reset(self) -> None:
        """Zero every metric in place (handles cached by modules survive)."""
        for metric in self._metrics.values():
            metric.reset()  # type: ignore[union-attr]

    def __len__(self) -> int:
        return len(self._metrics)


#: The process-wide registry every instrumented layer records into.
_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _DEFAULT


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests); returns the previous one.

    Module-level metric handles created from the old registry keep
    recording into it, so prefer :meth:`MetricsRegistry.reset` for
    isolation; this hook exists for overhead experiments that need a
    genuinely cold registry.
    """
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = registry
    return previous
