"""Memory access traces.

A :class:`MemoryTrace` records the exact sequence of reads and writes a
functional execution performs. The CPU model replays a trace through the
cache hierarchy to cost the software serializers; the accelerator model uses
its own internal accounting, but traces are also useful in tests to assert
access patterns (e.g. the DU's sequential reads).

Traces can grow large, so a trace can run in *summary* mode where only
aggregate statistics (byte counts per kind, unique lines) are maintained.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional, Set


class AccessKind(enum.Enum):
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class MemoryAccess:
    """One traced access: kind, start address, and length in bytes."""

    kind: AccessKind
    address: int
    length: int

    def cache_lines(self, line_bytes: int = 64) -> range:
        """Indices of the cache lines this access touches."""
        first = self.address // line_bytes
        last = (self.address + self.length - 1) // line_bytes
        return range(first, last + 1)


class MemoryTrace:
    """Ordered record of memory accesses with aggregate statistics."""

    def __init__(self, keep_accesses: bool = True, line_bytes: int = 64):
        self.keep_accesses = keep_accesses
        self.line_bytes = line_bytes
        self.accesses: List[MemoryAccess] = []
        self.read_bytes = 0
        self.write_bytes = 0
        self.read_count = 0
        self.write_count = 0
        self._touched_lines: Set[int] = set()

    # -- recording -------------------------------------------------------------

    def record_read(self, address: int, length: int) -> None:
        self.read_bytes += length
        self.read_count += 1
        self._record(AccessKind.READ, address, length)

    def record_write(self, address: int, length: int) -> None:
        self.write_bytes += length
        self.write_count += 1
        self._record(AccessKind.WRITE, address, length)

    def _record(self, kind: AccessKind, address: int, length: int) -> None:
        if length > 0:
            first = address // self.line_bytes
            last = (address + length - 1) // self.line_bytes
            self._touched_lines.update(range(first, last + 1))
        if self.keep_accesses:
            self.accesses.append(MemoryAccess(kind, address, length))

    # -- statistics --------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    @property
    def total_count(self) -> int:
        return self.read_count + self.write_count

    @property
    def unique_line_count(self) -> int:
        """Number of distinct cache lines touched (footprint / locality proxy)."""
        return len(self._touched_lines)

    def __len__(self) -> int:
        return len(self.accesses)

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self.accesses)

    def clear(self) -> None:
        self.accesses.clear()
        self.read_bytes = 0
        self.write_bytes = 0
        self.read_count = 0
        self.write_count = 0
        self._touched_lines.clear()

    # -- derived views -------------------------------------------------------------

    def line_accesses(self) -> Iterator[MemoryAccess]:
        """Split each access into per-cache-line accesses.

        Cache and DRAM models operate at line granularity; this expands a
        multi-line access (e.g. a 64 B buffered store) into one access per
        line so each model stage sees uniform units.
        """
        for access in self.accesses:
            for line in access.cache_lines(self.line_bytes):
                line_start = line * self.line_bytes
                start = max(access.address, line_start)
                end = min(access.address + access.length, line_start + self.line_bytes)
                yield MemoryAccess(access.kind, start, end - start)
