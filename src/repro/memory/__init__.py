"""Simulated physical memory: byte-addressable space and DDR4 timing model."""

from repro.memory.space import MemorySpace
from repro.memory.trace import AccessKind, MemoryAccess, MemoryTrace
from repro.memory.dram import DRAMModel, DRAMStats

__all__ = [
    "MemorySpace",
    "AccessKind",
    "MemoryAccess",
    "MemoryTrace",
    "DRAMModel",
    "DRAMStats",
]
