"""A sparse byte-addressable memory space.

The simulated JVM heap, serialized output buffers, and the accelerator all
read and write this space. It is backed by fixed-size pages allocated lazily,
so a 128 GB address space (Table I) costs memory only for the bytes actually
touched.

Word accessors use little-endian byte order, matching x86 hosts where HotSpot
lays out the object heaps that Cereal serializes.
"""

from __future__ import annotations

import struct
from typing import Dict, Optional

from repro.common.errors import HeapError

_PAGE_BYTES = 64 * 1024

# Precompiled struct formats for the word-vector accessors; keyed by word
# count so repeated bulk reads of same-shaped objects pay zero parse cost.
_WORD_STRUCTS: Dict[int, struct.Struct] = {}


def _word_struct(count: int) -> struct.Struct:
    cached = _WORD_STRUCTS.get(count)
    if cached is None:
        cached = struct.Struct(f"<{count}Q")
        _WORD_STRUCTS[count] = cached
    return cached


class MemorySpace:
    """Sparse little-endian memory with optional access tracing.

    Parameters
    ----------
    size_bytes:
        Total addressable size. Accesses outside ``[0, size_bytes)`` raise
        :class:`~repro.common.errors.HeapError`.
    trace:
        Optional :class:`~repro.memory.trace.MemoryTrace`; when set, every
        read/write is recorded (used by the CPU cache model and the
        accelerator bandwidth accounting).
    """

    def __init__(self, size_bytes: int, trace: Optional["MemoryTrace"] = None):
        if size_bytes <= 0:
            raise HeapError(f"size_bytes must be positive, got {size_bytes}")
        self.size_bytes = size_bytes
        self.trace = trace
        self._pages: Dict[int, bytearray] = {}

    # -- bounds & paging -----------------------------------------------------

    def _check_range(self, address: int, length: int) -> None:
        if length < 0:
            raise HeapError(f"negative access length {length}")
        if address < 0 or address + length > self.size_bytes:
            raise HeapError(
                f"access [{address:#x}, {address + length:#x}) outside "
                f"memory of size {self.size_bytes:#x}"
            )

    def _page(self, page_index: int) -> bytearray:
        page = self._pages.get(page_index)
        if page is None:
            page = bytearray(_PAGE_BYTES)
            self._pages[page_index] = page
        return page

    @property
    def resident_bytes(self) -> int:
        """Bytes of backing storage actually allocated."""
        return len(self._pages) * _PAGE_BYTES

    # -- raw byte access -----------------------------------------------------

    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``address``."""
        self._check_range(address, length)
        if self.trace is not None:
            self.trace.record_read(address, length)
        page_index, offset = divmod(address, _PAGE_BYTES)
        if offset + length <= _PAGE_BYTES:
            # Fast path: the range lives in one page — a single slice.
            page = self._pages.get(page_index)
            if page is None:
                return bytes(length)
            return bytes(page[offset : offset + length])
        out = bytearray(length)
        copied = 0
        while copied < length:
            addr = address + copied
            page_index, offset = divmod(addr, _PAGE_BYTES)
            run = min(length - copied, _PAGE_BYTES - offset)
            page = self._pages.get(page_index)
            if page is not None:
                out[copied : copied + run] = page[offset : offset + run]
            copied += run
        return bytes(out)

    def view(self, address: int, length: int) -> memoryview:
        """Zero-copy ``memoryview`` over ``length`` bytes at ``address``.

        When the range lives inside one resident page the view aliases the
        page's ``bytearray`` directly — no bytes are copied. Slicing the
        view (``view[a:b]``) and ``struct.Struct.unpack_from`` both stay
        zero-copy, which is what the codegen serialize kernels rely on for
        their raw-image reads. The view is only valid while the heap is
        not written; serialize paths never mutate the source heap, and
        pages are fixed-size so they are never reallocated. Ranges that
        cross a page boundary or touch an unallocated page fall back to a
        copied snapshot (still returned as a ``memoryview`` so callers are
        uniform). The access is bounds-checked and traced exactly like
        :meth:`read`.
        """
        self._check_range(address, length)
        if self.trace is not None:
            self.trace.record_read(address, length)
        page_index, offset = divmod(address, _PAGE_BYTES)
        if offset + length <= _PAGE_BYTES:
            page = self._pages.get(page_index)
            if page is not None:
                return memoryview(page)[offset : offset + length]
            return memoryview(bytes(length))
        out = bytearray(length)
        copied = 0
        while copied < length:
            addr = address + copied
            page_index, offset = divmod(addr, _PAGE_BYTES)
            run = min(length - copied, _PAGE_BYTES - offset)
            page = self._pages.get(page_index)
            if page is not None:
                out[copied : copied + run] = page[offset : offset + run]
            copied += run
        return memoryview(bytes(out))

    def write(self, address: int, data: bytes) -> None:
        """Write ``data`` starting at ``address``."""
        self._check_range(address, len(data))
        if self.trace is not None:
            self.trace.record_write(address, len(data))
        length = len(data)
        page_index, offset = divmod(address, _PAGE_BYTES)
        if offset + length <= _PAGE_BYTES:
            self._page(page_index)[offset : offset + length] = data
            return
        copied = 0
        while copied < length:
            addr = address + copied
            page_index, offset = divmod(addr, _PAGE_BYTES)
            run = min(length - copied, _PAGE_BYTES - offset)
            self._page(page_index)[offset : offset + run] = data[
                copied : copied + run
            ]
            copied += run

    def fill(self, address: int, length: int, value: int = 0) -> None:
        """Fill a range with one byte value (used for zeroing fresh objects)."""
        if not 0 <= value <= 0xFF:
            raise HeapError(f"fill value must be a byte, got {value}")
        self.write(address, bytes([value]) * length)

    # -- typed little-endian accessors ----------------------------------------

    def read_u8(self, address: int) -> int:
        return self.read(address, 1)[0]

    def write_u8(self, address: int, value: int) -> None:
        self.write(address, struct.pack("<B", value))

    def read_u16(self, address: int) -> int:
        return struct.unpack("<H", self.read(address, 2))[0]

    def write_u16(self, address: int, value: int) -> None:
        self.write(address, struct.pack("<H", value))

    def read_u32(self, address: int) -> int:
        return struct.unpack("<I", self.read(address, 4))[0]

    def write_u32(self, address: int, value: int) -> None:
        self.write(address, struct.pack("<I", value))

    def read_u64(self, address: int) -> int:
        return struct.unpack("<Q", self.read(address, 8))[0]

    def write_u64(self, address: int, value: int) -> None:
        self.write(address, struct.pack("<Q", value))

    def read_i32(self, address: int) -> int:
        return struct.unpack("<i", self.read(address, 4))[0]

    def write_i32(self, address: int, value: int) -> None:
        self.write(address, struct.pack("<i", value))

    def read_i64(self, address: int) -> int:
        return struct.unpack("<q", self.read(address, 8))[0]

    def write_i64(self, address: int, value: int) -> None:
        self.write(address, struct.pack("<q", value))

    def read_f64(self, address: int) -> float:
        return struct.unpack("<d", self.read(address, 8))[0]

    def write_f64(self, address: int, value: float) -> None:
        self.write(address, struct.pack("<d", value))

    def read_f32(self, address: int) -> float:
        return struct.unpack("<f", self.read(address, 4))[0]

    def write_f32(self, address: int, value: float) -> None:
        self.write(address, struct.pack("<f", value))

    # -- bulk helpers ----------------------------------------------------------

    def read_words(self, address: int, count: int) -> tuple:
        """Read ``count`` consecutive u64 words as one traced access.

        The bulk equivalent of ``count`` calls to :meth:`read_u64`: one
        bounds check, one trace record spanning the whole range, one
        precompiled ``struct`` unpack. Hot paths (object-image walks) use
        this so per-slot cost is a tuple index instead of a memory call.
        """
        return _word_struct(count).unpack(self.read(address, count * 8))

    def write_words(self, address: int, words) -> None:
        """Write consecutive u64 words as one traced access."""
        self.write(address, _word_struct(len(words)).pack(*words))

    def copy(self, src: int, dst: int, length: int) -> None:
        """Memcpy within the space (reads then writes, both traced)."""
        self.write(dst, self.read(src, length))
