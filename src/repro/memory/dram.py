"""DDR4 memory timing model (Table I).

The model captures the two first-order DRAM properties the paper's results
depend on:

* **Zero-load latency** — every access pays a fixed 40 ns pipe latency.
* **Per-channel bandwidth** — each of the four channels sustains 19.2 GB/s;
  a 64 B line therefore occupies its channel for ``64 / 19.2e9`` seconds.

Addresses are interleaved across channels at line granularity, as in real
controllers, so sequential streams use all channels while a pathological
stride could hammer one. Each channel is modelled as a single server with a
"next free" time; an access's completion time is

    max(issue_time, channel_free) + occupancy + zero_load_latency

which reproduces both the unloaded latency and the bandwidth ceiling that
the accelerator saturates (Figures 11 and 15).

One deliberate simplification: each channel tracks a single ``next free``
time, so an access issued with an *earlier* timestamp than a previously
scheduled one queues behind it rather than slotting into an earlier gap.
For the accelerator this acts as a simple shared-bus contention model
between concurrently active requesters (the DU's three read streams and
its write-back traffic); the resulting per-DU block rate (~25 ns/block)
matches what the paper's Figure 10 deserialization speedups imply.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.config import DRAMConfig
from repro.common.errors import SimulationError


@dataclass
class DRAMStats:
    """Aggregate counters for one simulation run."""

    read_bytes: int = 0
    write_bytes: int = 0
    accesses: int = 0
    busy_time_ns: float = 0.0  # sum of channel occupancy
    last_completion_ns: float = 0.0

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    def bandwidth_utilization(self, elapsed_ns: float, config: DRAMConfig) -> float:
        """Fraction of peak bandwidth used over ``elapsed_ns``."""
        if elapsed_ns <= 0:
            return 0.0
        achieved = self.total_bytes / (elapsed_ns * 1e-9)
        return achieved / config.peak_bandwidth_bytes_per_sec


class _IntervalChannel:
    """A channel schedule that admits out-of-order issue (first fit).

    Used by the device simulator, where several units' operations are
    simulated one after another but overlap in *simulated* time: an access
    issued "in the past" relative to already-scheduled traffic slots into
    the earliest sufficiently large gap instead of queuing at the tail.
    """

    def __init__(self) -> None:
        self._starts: List[float] = []
        self._intervals: List[Tuple[float, float]] = []

    def schedule(self, issue_ns: float, occupancy_ns: float) -> float:
        """Reserve ``occupancy_ns`` at/after ``issue_ns``; returns start."""
        candidate = issue_ns
        index = bisect.bisect_left(self._starts, candidate)
        # The previous interval may still cover the candidate time.
        if index > 0 and self._intervals[index - 1][1] > candidate:
            candidate = self._intervals[index - 1][1]
        while index < len(self._intervals):
            start, end = self._intervals[index]
            if start - candidate >= occupancy_ns:
                break
            candidate = max(candidate, end)
            index += 1
        self._starts.insert(index, candidate)
        self._intervals.insert(index, (candidate, candidate + occupancy_ns))
        return candidate


class DRAMModel:
    """Channel-interleaved, bandwidth-limited DRAM with fixed base latency.

    ``out_of_order=True`` replaces the scalar per-channel "next free" time
    with an interval schedule so accesses issued with earlier timestamps
    than already-scheduled traffic can use earlier channel gaps — required
    when independently-timed operations share one memory system (see
    :mod:`repro.cereal.device_sim`).
    """

    def __init__(
        self, config: DRAMConfig | None = None, out_of_order: bool = False
    ):
        self.config = config or DRAMConfig()
        self.out_of_order = out_of_order
        self._channel_free_ns: List[float] = [0.0] * self.config.channels
        self._interval_channels: Optional[List[_IntervalChannel]] = (
            [_IntervalChannel() for _ in range(self.config.channels)]
            if out_of_order
            else None
        )
        self.stats = DRAMStats()

    def reset(self) -> None:
        self._channel_free_ns = [0.0] * self.config.channels
        if self.out_of_order:
            self._interval_channels = [
                _IntervalChannel() for _ in range(self.config.channels)
            ]
        self.stats = DRAMStats()

    # -- address mapping ---------------------------------------------------------

    def channel_of(self, address: int) -> int:
        """Line-interleaved channel mapping."""
        line = address // self.config.access_granularity_bytes
        return line % self.config.channels

    def occupancy_ns(self, length: int) -> float:
        """Channel busy time to move ``length`` bytes."""
        return length / self.config.channel_bandwidth_bytes_per_sec * 1e9

    # -- timing ---------------------------------------------------------------------

    def access(
        self, issue_ns: float, address: int, length: int, is_write: bool
    ) -> float:
        """Issue one access; returns its completion time in nanoseconds.

        ``length`` is typically one access granule (64 B); longer accesses are
        allowed and simply occupy the channel proportionally longer.
        """
        if length <= 0:
            raise SimulationError(f"access length must be positive, got {length}")
        if issue_ns < 0:
            raise SimulationError(f"issue time must be non-negative, got {issue_ns}")
        channel = self.channel_of(address)
        occupancy = self.occupancy_ns(length)
        if self._interval_channels is not None:
            start = self._interval_channels[channel].schedule(issue_ns, occupancy)
        else:
            start = max(issue_ns, self._channel_free_ns[channel])
            self._channel_free_ns[channel] = start + occupancy
        completion = start + occupancy + self.config.zero_load_latency_ns

        self.stats.accesses += 1
        self.stats.busy_time_ns += occupancy
        if is_write:
            self.stats.write_bytes += length
        else:
            self.stats.read_bytes += length
        self.stats.last_completion_ns = max(self.stats.last_completion_ns, completion)
        return completion

    # -- analytical helpers ------------------------------------------------------------

    def stream_time_ns(self, total_bytes: int, outstanding: int = 16) -> float:
        """Closed-form time to move ``total_bytes`` with ``outstanding`` requests.

        Used by analytical cost models (e.g. the CPU serializer model) that do
        not simulate individual accesses. With ``outstanding`` overlapped
        requests, effective throughput is limited either by bandwidth or by
        latency divided by the overlap factor:

            per_line = max(occupancy_all_channels, zero_load / outstanding)
        """
        if total_bytes <= 0:
            return 0.0
        if outstanding <= 0:
            raise SimulationError("outstanding must be positive")
        line = self.config.access_granularity_bytes
        lines = (total_bytes + line - 1) // line
        bandwidth_limited = line / self.config.peak_bandwidth_bytes_per_sec * 1e9
        latency_limited = self.config.zero_load_latency_ns / outstanding
        per_line = max(bandwidth_limited, latency_limited)
        return lines * per_line + self.config.zero_load_latency_ns
