"""Memoized per-klass layout metadata for the serializer hot paths.

Every serializer in the reproduction needs the same facts about an object's
shape — which field slots hold references, the layout bitmap, the total
slot count — and the seed recomputed them from the klass descriptor for
*every object serialized*. But the answers depend only on the klass, the
heap's header geometry, and (for arrays) the length: they are immutable
once a klass is registered. This module computes them once per distinct
``(klass, header_slots, length)`` shape and hands back a frozen
:class:`KlassLayout`, so the per-object cost in ``javaser``/``kryo``/
``cereal_format`` drops to one dict probe.

The layout bitmap is carried as a ``(word, width)`` pair — bit ``slot`` is
``(word >> (width - 1 - slot)) & 1``, MSB-first like the rest of the bit
formats — which feeds :func:`repro.formats.packing.pack_bitmap_words`
without materializing a per-bit list.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.jvm.klass import Klass
from repro.obs.metrics import get_registry

# Regenerable cache; the cap only guards against pathological workloads
# that allocate arrays of unboundedly many distinct lengths.
_MAX_ENTRIES = 1 << 16
_CACHE: Dict[Tuple[Klass, int, int], "KlassLayout"] = {}

# Hit/miss/eviction counters for benchmarks and SLO reports, recorded in
# the process-wide metrics registry (``layout_cache.*``). An "eviction"
# is a full clear at the entry cap (the cache is regenerable, so
# wholesale invalidation is cheaper than tracking recency).
_HITS = get_registry().counter("layout_cache.hits")
_MISSES = get_registry().counter("layout_cache.misses")
_EVICTIONS = get_registry().counter("layout_cache.evictions")
_ENTRIES = get_registry().gauge("layout_cache.entries")


@dataclass(frozen=True)
class KlassLayout:
    """Immutable layout facts for one ``(klass, header_slots, length)`` shape."""

    header_slots: int
    field_slots: int
    total_slots: int
    reference_slots: Tuple[int, ...]
    reference_slot_set: FrozenSet[int]
    bitmap_word: int
    bitmap_width: int
    image_struct: struct.Struct

    def bitmap_bits(self) -> List[int]:
        """The layout bitmap as a bit list (legacy consumers, tests)."""
        word, width = self.bitmap_word, self.bitmap_width
        return [(word >> (width - 1 - i)) & 1 for i in range(width)]


def layout_of(klass: Klass, header_slots: int, length: int = 0) -> KlassLayout:
    """The memoized layout for ``klass`` under a given header geometry."""
    key = (klass, header_slots, length)
    layout = _CACHE.get(key)
    if layout is not None:
        _HITS.value += 1  # direct bump: this is the per-object hot path
        return layout
    _MISSES.inc()

    field_slots = klass.instance_slots(length)
    total_slots = header_slots + field_slots
    reference_slots = tuple(klass.reference_slot_indices(length))
    bitmap_word = 0
    for slot in reference_slots:
        bitmap_word |= 1 << (total_slots - 1 - (header_slots + slot))
    layout = KlassLayout(
        header_slots=header_slots,
        field_slots=field_slots,
        total_slots=total_slots,
        reference_slots=reference_slots,
        reference_slot_set=frozenset(reference_slots),
        bitmap_word=bitmap_word,
        bitmap_width=total_slots,
        image_struct=struct.Struct(f"<{total_slots}Q"),
    )
    if len(_CACHE) >= _MAX_ENTRIES:
        _CACHE.clear()
        _EVICTIONS.inc()
    _CACHE[key] = layout
    _ENTRIES.set(len(_CACHE))
    return layout


def clear_layout_cache(reset_stats: bool = False) -> None:
    """Drop all memoized layouts (tests, klass-mutation scenarios)."""
    _CACHE.clear()
    _ENTRIES.set(0)
    if reset_stats:
        _HITS.reset()
        _MISSES.reset()
        _EVICTIONS.reset()


def cache_size() -> int:
    return len(_CACHE)


def stats() -> Dict[str, object]:
    """Hit/miss/eviction counters plus derived hit rate.

    A thin view over the ``layout_cache.*`` metrics in the process-wide
    registry (:mod:`repro.obs.metrics`)."""
    hits, misses = _HITS.value, _MISSES.value
    probes = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "evictions": _EVICTIONS.value,
        "entries": len(_CACHE),
        "hit_rate": round(hits / probes, 4) if probes else 0.0,
    }
