"""Java-style strings on the simulated heap.

HotSpot backs ``java.lang.String`` with a char array; for serialization
purposes the array *is* the string's payload, so workloads here model
strings directly as char arrays (stored packed at 2 B per element, see
:class:`~repro.jvm.klass.ArrayKlass`). These helpers create and read them.
"""

from __future__ import annotations

from repro.common.errors import HeapError
from repro.jvm.heap import Heap, HeapObject
from repro.jvm.klass import ArrayKlass, FieldKind


def new_string(heap: Heap, text: str) -> HeapObject:
    """Allocate a char array holding ``text`` (BMP code points only)."""
    array = heap.new_array(FieldKind.CHAR, len(text))
    for index, char in enumerate(text):
        code = ord(char)
        if code > 0xFFFF:
            raise HeapError(
                f"character U+{code:X} needs a surrogate pair; the string "
                f"model supports BMP code points only"
            )
        array.set_element(index, code)
    return array


def read_string(array: HeapObject) -> str:
    """Read a char array back as a Python string."""
    klass = array.klass
    if not isinstance(klass, ArrayKlass) or klass.element_kind is not FieldKind.CHAR:
        raise HeapError(f"{klass.name} is not a char array")
    return "".join(chr(array.get_element(i)) for i in range(array.length))


def string_bytes(array: HeapObject) -> int:
    """On-heap footprint of the string (header + length slot + chars)."""
    return array.size_bytes
