"""Reflection cost shims.

Java's built-in serializer extracts fields through ``java.lang.reflect``
(``Class.getField(String name)`` and friends), which performs string lookups
with no type information — a well-known overhead source (paper Section II).
Kryo instead uses ReflectASM-style generated accessors that index fields
directly.

Functionally both read the same slot on our simulated heap; what differs is
the *work done to find it*. These shims perform the real slot access and
simultaneously account that work in a :class:`ReflectionCost`, which the CPU
cost model later converts into instructions and cache accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.jvm.heap import FieldValue, HeapObject
from repro.jvm.klass import InstanceKlass


@dataclass
class ReflectionCost:
    """Operation counters accumulated by the reflection shims."""

    method_invocations: int = 0
    string_comparisons: int = 0
    characters_compared: int = 0
    hash_lookups: int = 0
    indexed_accesses: int = 0
    field_reads: int = 0
    field_writes: int = 0

    def merge(self, other: "ReflectionCost") -> None:
        self.method_invocations += other.method_invocations
        self.string_comparisons += other.string_comparisons
        self.characters_compared += other.characters_compared
        self.hash_lookups += other.hash_lookups
        self.indexed_accesses += other.indexed_accesses
        self.field_reads += other.field_reads
        self.field_writes += other.field_writes

    def estimated_instructions(self) -> int:
        """Rough x86 instruction estimate for the accounted reflection work.

        Constants follow typical costs: a reflective call is tens of
        instructions of dispatch/boxing; each compared character is a couple
        of instructions; hash probes and indexed accesses are cheap.
        """
        return (
            self.method_invocations * 40
            + self.string_comparisons * 6
            + self.characters_compared * 2
            + self.hash_lookups * 12
            + self.indexed_accesses * 4
            + self.field_reads * 3
            + self.field_writes * 3
        )


class JavaReflection:
    """``java.lang.reflect``-style access: name strings, linear field scans."""

    def __init__(self) -> None:
        self.cost = ReflectionCost()

    def _lookup(self, klass: InstanceKlass, name: str) -> int:
        """Model ``getField(String)``: scan declared fields comparing names."""
        self.cost.method_invocations += 1
        for index, descriptor in enumerate(klass.fields):
            self.cost.string_comparisons += 1
            # Compare up to the first differing character, as strcmp would.
            common = 0
            for a, b in zip(descriptor.name, name):
                common += 1
                if a != b:
                    break
            self.cost.characters_compared += max(1, common)
            if descriptor.name == name:
                return index
        # Field genuinely missing: surface the heap error from field_index.
        return klass.field_index(name)

    def get_field(self, obj: HeapObject, name: str) -> FieldValue:
        klass = obj.klass
        assert isinstance(klass, InstanceKlass)
        self._lookup(klass, name)
        self.cost.field_reads += 1
        return obj.get(name)

    def set_field(self, obj: HeapObject, name: str, value: FieldValue) -> None:
        klass = obj.klass
        assert isinstance(klass, InstanceKlass)
        self._lookup(klass, name)
        self.cost.field_writes += 1
        obj.set(name, value)


class ReflectAsmAccess:
    """ReflectASM-style access: precompiled per-class index tables."""

    def __init__(self) -> None:
        self.cost = ReflectionCost()

    def get_field_by_index(self, obj: HeapObject, index: int) -> FieldValue:
        klass = obj.klass
        assert isinstance(klass, InstanceKlass)
        self.cost.indexed_accesses += 1
        self.cost.field_reads += 1
        return obj._read_slot(index, klass.fields[index].kind)

    def set_field_by_index(
        self, obj: HeapObject, index: int, value: FieldValue
    ) -> None:
        klass = obj.klass
        assert isinstance(klass, InstanceKlass)
        self.cost.indexed_accesses += 1
        self.cost.field_writes += 1
        obj._write_slot(index, klass.fields[index].kind, value)
