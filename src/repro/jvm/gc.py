"""Garbage-collection-adjacent utilities.

The paper does not accelerate GC, but two GC interactions matter to Cereal
(Section V-E):

* the per-object serialization counter and unit-ID fields in the extended
  header are *cleared during garbage collection* so the 16-bit counter never
  wraps into a stale "visited" state;
* if a counter is about to overflow, the runtime can force a collection
  (``System.gc()``).

:func:`clear_serialization_metadata` models that clearing pass as a linear
heap walk, and returns the number of objects touched so callers can account
its (small) cost.
"""

from __future__ import annotations

from typing import Iterator

from repro.jvm.heap import Heap, HeapObject


def walk_heap(heap: Heap) -> Iterator[HeapObject]:
    """Linear walk over every allocated object, in address order."""
    return heap.objects()


def clear_serialization_metadata(heap: Heap) -> int:
    """Zero every object's Cereal header-extension word; returns count."""
    cleared = 0
    for obj in walk_heap(heap):
        obj.clear_serialization_metadata()
        cleared += 1
    return cleared


def max_serialization_counter(heap: Heap) -> int:
    """Highest visited-counter value on the heap (overflow monitoring)."""
    highest = 0
    for obj in walk_heap(heap):
        highest = max(highest, obj.serialization_counter)
    return highest
