"""Klass descriptors and the klass registry (simulated metaspace).

A *klass* is HotSpot's type descriptor: it records the object layout —
which 8 B slots hold references — and the total object size (paper
Section II). The Cereal serialization unit fetches this metadata through the
klass pointer in every object header to build the layout bitmap.

Two kinds of klass exist:

* :class:`InstanceKlass` — ordinary classes with a fixed field list. Every
  field occupies one 8 B slot (the paper's layout bitmap maps one bit per
  8 B, so slot granularity is the architected unit).
* :class:`ArrayKlass` — arrays. Their size is per-instance: the slot after
  the header stores the length, followed by one slot per element.

The :class:`KlassRegistry` assigns each klass a metaspace address (the value
stored in object headers) and can resolve addresses back to descriptors,
standing in for the JVM metaspace.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import HeapError

SLOT_BYTES = 8


class FieldKind(enum.Enum):
    """Java field types. Every kind occupies one 8 B slot in our layout."""

    BOOLEAN = "boolean"
    BYTE = "byte"
    CHAR = "char"
    SHORT = "short"
    INT = "int"
    FLOAT = "float"
    LONG = "long"
    DOUBLE = "double"
    REFERENCE = "reference"

    @property
    def is_reference(self) -> bool:
        return self is FieldKind.REFERENCE

    @property
    def java_width_bytes(self) -> int:
        """The width the *Java* type would occupy (used by compact formats).

        Our heap stores every field in an 8 B slot, but serializers like Kryo
        write primitives at their natural width; this drives serialized-size
        accounting.
        """
        widths = {
            FieldKind.BOOLEAN: 1,
            FieldKind.BYTE: 1,
            FieldKind.CHAR: 2,
            FieldKind.SHORT: 2,
            FieldKind.INT: 4,
            FieldKind.FLOAT: 4,
            FieldKind.LONG: 8,
            FieldKind.DOUBLE: 8,
            FieldKind.REFERENCE: 8,
        }
        return widths[self]


@dataclass(frozen=True)
class FieldDescriptor:
    """One declared field: its name and kind."""

    name: str
    kind: FieldKind

    def __post_init__(self) -> None:
        if not self.name:
            raise HeapError("field name must be non-empty")


class Klass:
    """Common base for type descriptors."""

    def __init__(self, name: str, serializable: bool = True):
        if not name:
            raise HeapError("klass name must be non-empty")
        self.name = name
        self.serializable = serializable
        self.metaspace_address: Optional[int] = None

    # Subclasses implement the layout protocol used by heap and serializers.

    @property
    def is_array(self) -> bool:
        raise NotImplementedError

    def instance_slots(self, length: int = 0) -> int:
        """Number of field slots (excluding header) for an instance."""
        raise NotImplementedError

    def reference_slot_indices(self, length: int = 0) -> List[int]:
        """Field-slot indices (0-based, after the header) holding references."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class InstanceKlass(Klass):
    """A normal class: named fields, each in one 8 B slot, declaration order."""

    def __init__(
        self,
        name: str,
        fields: Sequence[FieldDescriptor] = (),
        serializable: bool = True,
    ):
        super().__init__(name, serializable)
        self.fields: Tuple[FieldDescriptor, ...] = tuple(fields)
        seen = set()
        for descriptor in self.fields:
            if descriptor.name in seen:
                raise HeapError(f"duplicate field name {descriptor.name!r} in {name}")
            seen.add(descriptor.name)
        self._index_by_name: Dict[str, int] = {
            descriptor.name: index for index, descriptor in enumerate(self.fields)
        }

    @property
    def is_array(self) -> bool:
        return False

    def instance_slots(self, length: int = 0) -> int:
        return len(self.fields)

    def reference_slot_indices(self, length: int = 0) -> List[int]:
        return [
            index
            for index, descriptor in enumerate(self.fields)
            if descriptor.kind.is_reference
        ]

    def field_index(self, name: str) -> int:
        """Slot index of field ``name`` (raises for unknown names)."""
        try:
            return self._index_by_name[name]
        except KeyError:
            raise HeapError(f"class {self.name} has no field {name!r}") from None

    def field_kind(self, name: str) -> FieldKind:
        return self.fields[self.field_index(name)].kind

    @property
    def reference_field_names(self) -> List[str]:
        return [d.name for d in self.fields if d.kind.is_reference]

    @property
    def primitive_field_names(self) -> List[str]:
        return [d.name for d in self.fields if not d.kind.is_reference]


class ArrayKlass(Klass):
    """An array class: one length slot, then the packed element storage.

    As in HotSpot, primitive elements are stored at their natural width
    (a ``char[30]`` occupies 60 B of element storage, not 30 slots); the
    storage is rounded up to whole 8 B slots so the layout bitmap's
    slot-granular view (one bit per 8 B, paper Section IV-A) still covers
    the object exactly. Reference elements occupy one slot each, as the
    bitmap must mark each reference individually.
    """

    def __init__(self, element_kind: FieldKind, serializable: bool = True):
        super().__init__(f"{element_kind.value}[]", serializable)
        self.element_kind = element_kind
        self.element_width = element_kind.java_width_bytes

    @property
    def is_array(self) -> bool:
        return True

    def instance_slots(self, length: int = 0) -> int:
        if length < 0:
            raise HeapError(f"array length must be non-negative, got {length}")
        if self.element_kind.is_reference:
            return 1 + length  # length slot + one slot per reference
        element_bytes = length * self.element_width
        return 1 + (element_bytes + SLOT_BYTES - 1) // SLOT_BYTES

    def reference_slot_indices(self, length: int = 0) -> List[int]:
        if not self.element_kind.is_reference:
            return []
        return list(range(1, 1 + length))


class KlassRegistry:
    """Simulated metaspace: assigns klass addresses and resolves them back.

    Klass addresses live in a region disjoint from the heap (high addresses)
    so a klass pointer can never be confused with an object reference.
    """

    METASPACE_BASE = 0x7F00_0000_0000
    _KLASS_STRIDE = 0x1000

    def __init__(self) -> None:
        self._klasses: List[Klass] = []
        self._by_address: Dict[int, Klass] = {}
        self._by_name: Dict[str, Klass] = {}

    def register(self, klass: Klass) -> Klass:
        """Assign a metaspace address; re-registering the same name is an error."""
        if klass.name in self._by_name:
            existing = self._by_name[klass.name]
            if existing is klass:
                return klass
            raise HeapError(f"klass name {klass.name!r} already registered")
        address = self.METASPACE_BASE + len(self._klasses) * self._KLASS_STRIDE
        klass.metaspace_address = address
        self._klasses.append(klass)
        self._by_address[address] = klass
        self._by_name[klass.name] = klass
        return klass

    def resolve(self, address: int) -> Klass:
        """Look up a klass by its metaspace address (the klass pointer)."""
        try:
            return self._by_address[address]
        except KeyError:
            raise HeapError(f"no klass at metaspace address {address:#x}") from None

    def by_name(self, name: str) -> Klass:
        try:
            return self._by_name[name]
        except KeyError:
            raise HeapError(f"no klass named {name!r}") from None

    def array_klass(self, element_kind: FieldKind) -> ArrayKlass:
        """Fetch (or create) the canonical array klass for ``element_kind``."""
        name = f"{element_kind.value}[]"
        if name in self._by_name:
            klass = self._by_name[name]
            assert isinstance(klass, ArrayKlass)
            return klass
        klass = ArrayKlass(element_kind)
        self.register(klass)
        return klass

    def __len__(self) -> int:
        return len(self._klasses)

    def __iter__(self):
        return iter(self._klasses)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name
