"""HotSpot mark word encoding.

Paper Section II: *"The mark word includes an identity hash code (31 bits),
a synchronization state (3 bits), GC state bits (6 bits), and 25 unused
bits."* We pack those fields into one 64-bit little-endian word:

    bits [0, 3)   synchronization state
    bits [3, 9)   GC state
    bits [9, 40)  identity hash (31 bits)
    bits [40, 64) unused / available

(The paper's field widths sum to 65 with the unused bits; we keep the three
architected fields at their stated widths and give the remainder to the
unused region.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import HeapError

_SYNC_SHIFT = 0
_SYNC_BITS = 3
_GC_SHIFT = 3
_GC_BITS = 6
_HASH_SHIFT = 9
_HASH_BITS = 31

_SYNC_MASK = (1 << _SYNC_BITS) - 1
_GC_MASK = (1 << _GC_BITS) - 1
_HASH_MASK = (1 << _HASH_BITS) - 1


@dataclass(frozen=True)
class MarkWord:
    """Decoded mark word fields."""

    identity_hash: int = 0
    sync_state: int = 0
    gc_state: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.identity_hash <= _HASH_MASK:
            raise HeapError(f"identity_hash out of 31-bit range: {self.identity_hash}")
        if not 0 <= self.sync_state <= _SYNC_MASK:
            raise HeapError(f"sync_state out of 3-bit range: {self.sync_state}")
        if not 0 <= self.gc_state <= _GC_MASK:
            raise HeapError(f"gc_state out of 6-bit range: {self.gc_state}")

    def encode(self) -> int:
        """Pack the fields into a 64-bit integer."""
        return (
            (self.sync_state << _SYNC_SHIFT)
            | (self.gc_state << _GC_SHIFT)
            | (self.identity_hash << _HASH_SHIFT)
        )

    @classmethod
    def decode(cls, word: int) -> "MarkWord":
        """Unpack a 64-bit integer into mark word fields."""
        if not 0 <= word < (1 << 64):
            raise HeapError(f"mark word out of 64-bit range: {word:#x}")
        return cls(
            identity_hash=(word >> _HASH_SHIFT) & _HASH_MASK,
            sync_state=(word >> _SYNC_SHIFT) & _SYNC_MASK,
            gc_state=(word >> _GC_SHIFT) & _GC_MASK,
        )

    def with_hash(self, identity_hash: int) -> "MarkWord":
        return MarkWord(identity_hash, self.sync_state, self.gc_state)


def identity_hash_for(address: int, salt: int = 0x9E3779B9) -> int:
    """Deterministic 31-bit identity hash derived from the allocation address.

    HotSpot lazily computes identity hashes from a thread-local RNG; we need
    determinism across runs, so we mix the address with a golden-ratio salt.
    """
    x = (address * 0x2545F4914F6CDD1D + salt) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 29
    return x & _HASH_MASK
