"""The simulated JVM heap and object handles.

Objects are laid out exactly as the paper describes (Section II plus the
Section V-E header extension):

    offset 0   mark word            (8 B)
    offset 8   klass pointer        (8 B)
    offset 16  Cereal extension     (8 B, only when the heap enables it)
    then       fields, one 8 B slot each (arrays: length slot + elements)

The Cereal extension word packs the serialization metadata of Section V-E:

    bits [0, 16)   serialization counter (visited tracking)
    bits [16, 24)  serialization unit ID (shared-object reservation)
    bits [24, 56)  relative address of the already-serialized object
    bits [56, 64)  flags (reserved)

References are stored as absolute 64-bit heap addresses; ``0`` is null.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.common.errors import HeapError
from repro.jvm.layout_cache import KlassLayout, layout_of
from repro.jvm.klass import (
    ArrayKlass,
    FieldKind,
    InstanceKlass,
    Klass,
    KlassRegistry,
    SLOT_BYTES,
)
from repro.jvm.markword import MarkWord, identity_hash_for
from repro.memory.space import MemorySpace
from repro.memory.trace import MemoryTrace

HEAP_BASE = 0x0001_0000
NULL_ADDRESS = 0

_COUNTER_MASK = 0xFFFF
_UNIT_SHIFT = 16
_UNIT_MASK = 0xFF
_RELADDR_SHIFT = 24
_RELADDR_MASK = 0xFFFF_FFFF

FieldValue = Union[int, float, bool, "HeapObject", None]

# struct codes matching the scalar element accessors bit-for-bit: reads are
# sign-aware (BYTE/SHORT decode as two's complement), writes mask to the
# stored width first, exactly like set_element.
_ELEMENT_READ_CODES = {
    FieldKind.BOOLEAN: "B",
    FieldKind.BYTE: "b",
    FieldKind.CHAR: "H",
    FieldKind.SHORT: "h",
    FieldKind.INT: "i",
    FieldKind.FLOAT: "f",
    FieldKind.LONG: "q",
    FieldKind.DOUBLE: "d",
}
_ELEMENT_WRITE_CODES = {
    FieldKind.BOOLEAN: "B",
    FieldKind.BYTE: "B",
    FieldKind.CHAR: "H",
    FieldKind.SHORT: "H",
    FieldKind.INT: "i",
    FieldKind.FLOAT: "f",
    FieldKind.LONG: "q",
    FieldKind.DOUBLE: "d",
}


class Heap:
    """A bump-pointer heap of HotSpot-layout objects in a `MemorySpace`."""

    def __init__(
        self,
        size_bytes: int = 256 * 1024 * 1024,
        registry: Optional[KlassRegistry] = None,
        cereal_extension: bool = True,
        trace: Optional[MemoryTrace] = None,
    ):
        self.registry = registry if registry is not None else KlassRegistry()
        self.cereal_extension = cereal_extension
        self.memory = MemorySpace(HEAP_BASE + size_bytes, trace=trace)
        self._alloc_ptr = HEAP_BASE
        self._objects: Dict[int, HeapObject] = {}
        self._alloc_order: List[int] = []
        self._serialization_epoch = 0
        self.forced_gc_count = 0

    # -- serialization epochs (Section V-E visited tracking) ------------------------

    def next_serialization_epoch(self, counter_bits: int = 16) -> int:
        """Allocate the next visited-tracking epoch for a serialization.

        The per-object counter field is ``counter_bits`` wide; when the
        epoch would overflow it, the runtime forces a collection that
        clears every object's serialization metadata (the paper's
        ``System.gc()`` escape hatch) and restarts from 1.
        """
        limit = (1 << counter_bits) - 1
        self._serialization_epoch += 1
        if self._serialization_epoch > limit:
            if self.cereal_extension:
                for obj in self.objects():
                    obj.clear_serialization_metadata()
            self.forced_gc_count += 1
            self._serialization_epoch = 1
        return self._serialization_epoch

    # -- layout constants ----------------------------------------------------------

    @property
    def header_bytes(self) -> int:
        return 24 if self.cereal_extension else 16

    @property
    def header_slots(self) -> int:
        return self.header_bytes // SLOT_BYTES

    # -- allocation ------------------------------------------------------------------

    def allocate(self, klass: Klass, length: int = 0) -> "HeapObject":
        """Allocate and zero-initialize an object of ``klass``.

        ``length`` is required (and only meaningful) for array klasses.
        """
        if klass.metaspace_address is None:
            self.registry.register(klass)
        if klass.is_array:
            if length < 0:
                raise HeapError(f"array length must be non-negative, got {length}")
        elif length:
            raise HeapError("length is only valid for array klasses")

        slots = klass.instance_slots(length)
        size = self.header_bytes + slots * SLOT_BYTES
        address = self._alloc_ptr
        if address + size > self.memory.size_bytes:
            raise HeapError(
                f"heap exhausted allocating {size} bytes at {address:#x}"
            )
        self._alloc_ptr += size

        self.memory.fill(address, size, 0)
        mark = MarkWord(identity_hash=identity_hash_for(address))
        self.memory.write_u64(address, mark.encode())
        assert klass.metaspace_address is not None
        self.memory.write_u64(address + 8, klass.metaspace_address)

        obj = HeapObject(self, address, klass, length)
        if klass.is_array:
            # Array length lives in the first field slot.
            self.memory.write_u64(address + self.header_bytes, length)
        self._objects[address] = obj
        self._alloc_order.append(address)
        return obj

    def new_instance(self, klass_name: str) -> "HeapObject":
        """Allocate an instance of an already-registered class by name."""
        return self.allocate(self.registry.by_name(klass_name))

    def new_array(self, element_kind: FieldKind, length: int) -> "HeapObject":
        """Allocate an array of ``length`` elements of ``element_kind``."""
        return self.allocate(self.registry.array_klass(element_kind), length)

    def reserve(self, num_bytes: int) -> int:
        """Reserve a raw region for a copy-based deserializer (Skyway/Cereal).

        The caller writes complete object images (headers included) into the
        region and then registers each object with :meth:`register_object`.
        Returns the region's base address.
        """
        if num_bytes <= 0:
            raise HeapError(f"reserve needs a positive size, got {num_bytes}")
        address = self._alloc_ptr
        if address + num_bytes > self.memory.size_bytes:
            raise HeapError(f"heap exhausted reserving {num_bytes} bytes")
        self._alloc_ptr += num_bytes
        return address

    def register_object(
        self, address: int, klass: Klass, length: int = 0
    ) -> "HeapObject":
        """Adopt an object image written into a reserved region."""
        if address in self._objects:
            raise HeapError(f"object already registered at {address:#x}")
        if klass.metaspace_address is None:
            self.registry.register(klass)
        obj = HeapObject(self, address, klass, length)
        self._objects[address] = obj
        self._alloc_order.append(address)
        return obj

    # -- object resolution -------------------------------------------------------------

    def object_at(self, address: int) -> "HeapObject":
        """Resolve a heap address to its object handle."""
        try:
            return self._objects[address]
        except KeyError:
            raise HeapError(f"no object at address {address:#x}") from None

    def deref(self, address: int) -> Optional["HeapObject"]:
        """Like :meth:`object_at` but maps the null address to ``None``."""
        if address == NULL_ADDRESS:
            return None
        return self.object_at(address)

    def objects(self) -> Iterator["HeapObject"]:
        """All live objects in allocation order (heap-walk order)."""
        for address in self._alloc_order:
            yield self._objects[address]

    @property
    def used_bytes(self) -> int:
        return self._alloc_ptr - HEAP_BASE

    @property
    def object_count(self) -> int:
        return len(self._objects)

    # -- decode transactions -----------------------------------------------------------

    def checkpoint(self) -> "HeapCheckpoint":
        """Snapshot the allocation frontier for a decode transaction.

        A bump-pointer heap makes rollback cheap: everything a failed
        decode touched lives in the span ``[checkpoint ptr, current ptr)``
        and at the tail of the allocation order, so no per-object undo log
        is needed.
        """
        return HeapCheckpoint(
            alloc_ptr=self._alloc_ptr, alloc_count=len(self._alloc_order)
        )

    def rollback(self, token: "HeapCheckpoint") -> None:
        """Discard every allocation made after ``token`` was taken.

        Restores the allocation pointer, drops the registered objects, and
        zero-fills the abandoned span so a later allocation over the same
        range starts from cleared memory — leaving no observable trace of
        the failed decode.
        """
        if token.alloc_ptr > self._alloc_ptr or token.alloc_count > len(
            self._alloc_order
        ):
            raise HeapError(
                "stale heap checkpoint: allocation frontier is behind it"
            )
        for address in self._alloc_order[token.alloc_count :]:
            del self._objects[address]
        del self._alloc_order[token.alloc_count :]
        span = self._alloc_ptr - token.alloc_ptr
        if span:
            self.memory.fill(token.alloc_ptr, span, 0)
        self._alloc_ptr = token.alloc_ptr


class HeapCheckpoint:
    """Opaque token marking a heap allocation frontier (see ``checkpoint``)."""

    __slots__ = ("alloc_ptr", "alloc_count")

    def __init__(self, alloc_ptr: int, alloc_count: int):
        self.alloc_ptr = alloc_ptr
        self.alloc_count = alloc_count


class HeapObject:
    """Handle to one object on the simulated heap.

    All accessors read and write the backing :class:`MemorySpace`; the handle
    itself stores only the address, klass, and (for arrays) the length — just
    like a real reference.
    """

    __slots__ = ("heap", "address", "klass", "length")

    def __init__(self, heap: Heap, address: int, klass: Klass, length: int = 0):
        self.heap = heap
        self.address = address
        self.klass = klass
        self.length = length

    # -- geometry ---------------------------------------------------------------------

    @property
    def field_slots(self) -> int:
        return self.klass.instance_slots(self.length)

    @property
    def total_slots(self) -> int:
        return self.heap.header_slots + self.field_slots

    @property
    def size_bytes(self) -> int:
        return self.total_slots * SLOT_BYTES

    @property
    def fields_base(self) -> int:
        return self.address + self.heap.header_bytes

    def slot_address(self, slot_index: int) -> int:
        """Heap address of field slot ``slot_index`` (0-based after header)."""
        if not 0 <= slot_index < self.field_slots:
            raise HeapError(
                f"slot {slot_index} out of range for {self.klass.name} "
                f"with {self.field_slots} slots"
            )
        return self.fields_base + slot_index * SLOT_BYTES

    # -- header -----------------------------------------------------------------------

    @property
    def mark_word(self) -> MarkWord:
        return MarkWord.decode(self.heap.memory.read_u64(self.address))

    @mark_word.setter
    def mark_word(self, value: MarkWord) -> None:
        self.heap.memory.write_u64(self.address, value.encode())

    @property
    def identity_hash(self) -> int:
        return self.mark_word.identity_hash

    @property
    def klass_pointer(self) -> int:
        return self.heap.memory.read_u64(self.address + 8)

    # -- Cereal header extension (Section V-E) -------------------------------------------

    def _extension_address(self) -> int:
        if not self.heap.cereal_extension:
            raise HeapError("heap was created without the Cereal header extension")
        return self.address + 16

    @property
    def serialization_counter(self) -> int:
        word = self.heap.memory.read_u64(self._extension_address())
        return word & _COUNTER_MASK

    @serialization_counter.setter
    def serialization_counter(self, value: int) -> None:
        if not 0 <= value <= _COUNTER_MASK:
            raise HeapError(f"serialization counter out of 16-bit range: {value}")
        addr = self._extension_address()
        word = self.heap.memory.read_u64(addr)
        self.heap.memory.write_u64(addr, (word & ~_COUNTER_MASK) | value)

    @property
    def serialization_unit_id(self) -> int:
        word = self.heap.memory.read_u64(self._extension_address())
        return (word >> _UNIT_SHIFT) & _UNIT_MASK

    @serialization_unit_id.setter
    def serialization_unit_id(self, value: int) -> None:
        if not 0 <= value <= _UNIT_MASK:
            raise HeapError(f"unit ID out of 8-bit range: {value}")
        addr = self._extension_address()
        word = self.heap.memory.read_u64(addr)
        word = (word & ~(_UNIT_MASK << _UNIT_SHIFT)) | (value << _UNIT_SHIFT)
        self.heap.memory.write_u64(addr, word)

    @property
    def serialized_relative_address(self) -> int:
        word = self.heap.memory.read_u64(self._extension_address())
        return (word >> _RELADDR_SHIFT) & _RELADDR_MASK

    @serialized_relative_address.setter
    def serialized_relative_address(self, value: int) -> None:
        if not 0 <= value <= _RELADDR_MASK:
            raise HeapError(f"relative address out of 32-bit range: {value}")
        addr = self._extension_address()
        word = self.heap.memory.read_u64(addr)
        word = (word & ~(_RELADDR_MASK << _RELADDR_SHIFT)) | (value << _RELADDR_SHIFT)
        self.heap.memory.write_u64(addr, word)

    def clear_serialization_metadata(self) -> None:
        """GC-time reset of the extension word (Section V-E)."""
        self.heap.memory.write_u64(self._extension_address(), 0)

    # -- typed slot access ------------------------------------------------------------------

    def _read_slot(self, slot_index: int, kind: FieldKind) -> FieldValue:
        address = self.slot_address(slot_index)
        memory = self.heap.memory
        if kind is FieldKind.REFERENCE:
            return self.heap.deref(memory.read_u64(address))
        if kind is FieldKind.DOUBLE or kind is FieldKind.FLOAT:
            return memory.read_f64(address)
        if kind is FieldKind.BOOLEAN:
            return bool(memory.read_u64(address))
        if kind is FieldKind.CHAR:
            return memory.read_u64(address) & 0xFFFF
        return memory.read_i64(address)

    def _write_slot(self, slot_index: int, kind: FieldKind, value: FieldValue) -> None:
        address = self.slot_address(slot_index)
        memory = self.heap.memory
        if kind is FieldKind.REFERENCE:
            if value is None:
                memory.write_u64(address, NULL_ADDRESS)
            elif isinstance(value, HeapObject):
                memory.write_u64(address, value.address)
            else:
                raise HeapError(
                    f"reference slot needs HeapObject or None, got {type(value).__name__}"
                )
        elif kind is FieldKind.DOUBLE or kind is FieldKind.FLOAT:
            memory.write_f64(address, float(value))  # type: ignore[arg-type]
        elif kind is FieldKind.BOOLEAN:
            memory.write_u64(address, 1 if value else 0)
        elif kind is FieldKind.CHAR:
            memory.write_u64(address, int(value) & 0xFFFF)  # type: ignore[arg-type]
        else:
            memory.write_i64(address, int(value))  # type: ignore[arg-type]

    # -- named field access (instances) --------------------------------------------------------

    def _instance_klass(self) -> InstanceKlass:
        if not isinstance(self.klass, InstanceKlass):
            raise HeapError(f"{self.klass.name} is not an instance class")
        return self.klass

    def get(self, field_name: str) -> FieldValue:
        klass = self._instance_klass()
        index = klass.field_index(field_name)
        return self._read_slot(index, klass.fields[index].kind)

    def set(self, field_name: str, value: FieldValue) -> None:
        klass = self._instance_klass()
        index = klass.field_index(field_name)
        self._write_slot(index, klass.fields[index].kind, value)

    # -- element access (arrays) -------------------------------------------------------------

    def _array_klass(self) -> ArrayKlass:
        if not isinstance(self.klass, ArrayKlass):
            raise HeapError(f"{self.klass.name} is not an array class")
        return self.klass

    def _element_address(self, klass: ArrayKlass, index: int) -> int:
        """Address of a packed primitive element (natural-width storage)."""
        return self.fields_base + SLOT_BYTES + index * klass.element_width

    def get_elements(self) -> List[FieldValue]:
        """All array elements in index order, via one bulk memory read.

        Value-equivalent to ``[self.get_element(i) for i in
        range(self.length)]`` but costs one traced memory access and one
        ``struct`` unpack for the whole array instead of a memory call per
        element — the fast path under the serializers' primitive-array
        loops.
        """
        klass = self._array_klass()
        kind = klass.element_kind
        if kind is FieldKind.REFERENCE:
            return [self._read_slot(1 + i, kind) for i in range(self.length)]
        if self.length == 0:
            return []
        raw = self.heap.memory.read(
            self._element_address(klass, 0), self.length * klass.element_width
        )
        values = list(
            struct.unpack(f"<{self.length}{_ELEMENT_READ_CODES[kind]}", raw)
        )
        if kind is FieldKind.BOOLEAN:
            return [bool(value) for value in values]
        return values

    def set_elements(self, values: Sequence[FieldValue]) -> None:
        """Write every array element via one bulk memory write."""
        klass = self._array_klass()
        if len(values) != self.length:
            raise HeapError(
                f"expected {self.length} elements, got {len(values)}"
            )
        kind = klass.element_kind
        if kind is FieldKind.REFERENCE:
            for index, value in enumerate(values):
                self._write_slot(1 + index, kind, value)
            return
        if self.length == 0:
            return
        if kind is FieldKind.BOOLEAN:
            raw_values = [1 if value else 0 for value in values]
        elif kind is FieldKind.BYTE:
            raw_values = [int(value) & 0xFF for value in values]  # type: ignore[arg-type]
        elif kind in (FieldKind.CHAR, FieldKind.SHORT):
            raw_values = [int(value) & 0xFFFF for value in values]  # type: ignore[arg-type]
        elif kind in (FieldKind.FLOAT, FieldKind.DOUBLE):
            raw_values = [float(value) for value in values]  # type: ignore[arg-type]
        else:
            raw_values = [int(value) for value in values]  # type: ignore[arg-type]
        self.heap.memory.write(
            self._element_address(klass, 0),
            struct.pack(
                f"<{self.length}{_ELEMENT_WRITE_CODES[kind]}", *raw_values
            ),
        )

    def get_element(self, index: int) -> FieldValue:
        klass = self._array_klass()
        if not 0 <= index < self.length:
            raise HeapError(f"array index {index} out of range [0, {self.length})")
        kind = klass.element_kind
        if kind is FieldKind.REFERENCE:
            return self._read_slot(1 + index, kind)
        address = self._element_address(klass, index)
        memory = self.heap.memory
        if kind is FieldKind.BOOLEAN:
            return bool(memory.read_u8(address))
        if kind is FieldKind.BYTE:
            raw = memory.read_u8(address)
            return raw - 256 if raw >= 128 else raw
        if kind is FieldKind.CHAR:
            return memory.read_u16(address)
        if kind is FieldKind.SHORT:
            raw = memory.read_u16(address)
            return raw - 65536 if raw >= 32768 else raw
        if kind is FieldKind.INT:
            return memory.read_i32(address)
        if kind is FieldKind.FLOAT:
            return memory.read_f32(address)
        if kind is FieldKind.DOUBLE:
            return memory.read_f64(address)
        return memory.read_i64(address)  # LONG

    def set_element(self, index: int, value: FieldValue) -> None:
        klass = self._array_klass()
        if not 0 <= index < self.length:
            raise HeapError(f"array index {index} out of range [0, {self.length})")
        kind = klass.element_kind
        if kind is FieldKind.REFERENCE:
            self._write_slot(1 + index, kind, value)
            return
        address = self._element_address(klass, index)
        memory = self.heap.memory
        if kind is FieldKind.BOOLEAN:
            memory.write_u8(address, 1 if value else 0)
        elif kind is FieldKind.BYTE:
            memory.write_u8(address, int(value) & 0xFF)  # type: ignore[arg-type]
        elif kind in (FieldKind.CHAR, FieldKind.SHORT):
            memory.write_u16(address, int(value) & 0xFFFF)  # type: ignore[arg-type]
        elif kind is FieldKind.INT:
            memory.write_i32(address, int(value))  # type: ignore[arg-type]
        elif kind is FieldKind.FLOAT:
            memory.write_f32(address, float(value))  # type: ignore[arg-type]
        elif kind is FieldKind.DOUBLE:
            memory.write_f64(address, float(value))  # type: ignore[arg-type]
        else:  # LONG
            memory.write_i64(address, int(value))  # type: ignore[arg-type]

    # -- reference enumeration (what serializers traverse) ------------------------------------

    def layout(self) -> KlassLayout:
        """The memoized :class:`KlassLayout` for this object's shape."""
        return layout_of(self.klass, self.heap.header_slots, self.length)

    def reference_slots(self) -> List[int]:
        """Field-slot indices holding references (from the klass layout)."""
        return list(self.layout().reference_slots)

    def referenced_objects(self) -> List[Optional["HeapObject"]]:
        """Children in slot order, ``None`` for null references."""
        memory = self.heap.memory
        out: List[Optional[HeapObject]] = []
        for slot in self.reference_slots():
            out.append(self.heap.deref(memory.read_u64(self.slot_address(slot))))
        return out

    # -- layout bitmap (paper Figure 4) ----------------------------------------------------------

    def layout_bitmap(self) -> List[int]:
        """One bit per 8 B slot of the whole object, header included.

        A set bit marks a reference slot; header slots and value slots are
        zero. The object's size is recoverable as ``len(bitmap) * 8``.
        """
        return self.layout().bitmap_bits()

    def layout_bitmap_word(self) -> "tuple[int, int]":
        """The layout bitmap as an MSB-first ``(word, width)`` pair."""
        layout = self.layout()
        return layout.bitmap_word, layout.bitmap_width

    def image_words(self) -> tuple:
        """Every 8 B word of the object image (header included), bulk-read."""
        return self.heap.memory.read_words(self.address, self.total_slots)

    def raw_bytes(self) -> bytes:
        """The object's raw memory image (header + all slots)."""
        return self.heap.memory.read(self.address, self.size_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        suffix = f"[{self.length}]" if self.klass.is_array else ""
        return f"<{self.klass.name}{suffix} @ {self.address:#x}>"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HeapObject)
            and other.heap is self.heap
            and other.address == self.address
        )

    def __hash__(self) -> int:
        return hash((id(self.heap), self.address))
