"""Object graph traversal.

Serialization requires a recursive traversal of the object graph from the
top-level object (paper Section I). Every serializer in this repository —
and the Cereal hardware model — uses the same canonical traversal order so
their outputs are comparable: depth-first, visiting an object before its
children, children in field-declaration (slot) order, each object visited
once even when shared or part of a cycle.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterator, List, Set, Tuple

from repro.jvm.heap import HeapObject
from repro.jvm.layout_cache import KlassLayout, layout_of


def traverse_object_graph(root: HeapObject) -> Iterator[HeapObject]:
    """Yield every object reachable from ``root`` in canonical DFS order.

    Uses an explicit stack so deep structures (long lists) do not hit the
    Python recursion limit. Children are pushed in reverse slot order so
    they pop in declaration order, matching a recursive serializer.

    Already-visited children are pushed and skipped at pop time rather
    than filtered at push time: duplicates on the stack are *required* for
    correct DFS order (a later-pushed duplicate must pop first), so the
    push-time membership test and the intermediate filtered child list the
    seed built per object were pure allocation churn with no effect on the
    yield sequence.
    """
    visited: Set[int] = set()
    add_visited = visited.add
    stack: List[HeapObject] = [root]
    push = stack.append
    while stack:
        obj = stack.pop()
        address = obj.address
        if address in visited:
            continue
        add_visited(address)
        yield obj
        children = obj.referenced_objects()
        for index in range(len(children) - 1, -1, -1):
            child = children[index]
            if child is not None:
                push(child)


def traverse_object_graph_bfs(root: HeapObject) -> Iterator[HeapObject]:
    """Yield reachable objects in breadth-first order.

    This is the order the Cereal hardware serializes in: the header manager
    consumes a queue of references produced by the object handler, so an
    object's children are appended behind all previously-discovered objects
    (paper Section V-B).
    """
    visited: Set[int] = {root.address}
    queue = deque([root])
    while queue:
        obj = queue.popleft()
        yield obj
        for child in obj.referenced_objects():
            if child is not None and child.address not in visited:
                visited.add(child.address)
                queue.append(child)


def traverse_slot_runs(
    root: HeapObject, order: str = "dfs"
) -> Iterator[Tuple[HeapObject, KlassLayout]]:
    """Yield ``(object, layout)`` slot-run tuples in traversal order.

    The fast path under the compiled-plan serializers: one memoized layout
    probe per object hands a consumer everything shape-dependent (slot
    counts, reference-slot runs, the bitmap word), and children are
    discovered by reading the reference slots straight out of simulated
    memory — no per-object klass-metadata re-derivation, no intermediate
    child-handle lists. Traversal order (and the memory-read pattern over
    reference slots) matches :func:`traverse_object_graph` /
    :func:`traverse_object_graph_bfs` exactly.
    """
    heap = root.heap
    memory = heap.memory
    read_u64 = memory.read_u64
    object_at = heap.object_at
    header_slots = heap.header_slots
    header_bytes = header_slots * 8

    if order == "dfs":
        visited: Set[int] = set()
        add_visited = visited.add
        stack: List[HeapObject] = [root]
        push = stack.append
        while stack:
            obj = stack.pop()
            address = obj.address
            if address in visited:
                continue
            add_visited(address)
            layout = layout_of(obj.klass, header_slots, obj.length)
            yield obj, layout
            reference_slots = layout.reference_slots
            if reference_slots:
                fields_base = address + header_bytes
                child_addresses = [
                    read_u64(fields_base + slot * 8) for slot in reference_slots
                ]
                for index in range(len(child_addresses) - 1, -1, -1):
                    child_address = child_addresses[index]
                    if child_address:
                        push(object_at(child_address))
    elif order == "bfs":
        seen: Set[int] = {root.address}
        add_seen = seen.add
        queue = deque([root])
        while queue:
            obj = queue.popleft()
            layout = layout_of(obj.klass, header_slots, obj.length)
            yield obj, layout
            fields_base = obj.address + header_bytes
            for slot in layout.reference_slots:
                child_address = read_u64(fields_base + slot * 8)
                if child_address and child_address not in seen:
                    add_seen(child_address)
                    queue.append(object_at(child_address))
    else:
        raise ValueError(f"unknown traversal order {order!r}")


@dataclass
class SlotRunGraph:
    """Materialized slot-run traversal: objects, layouts, relative map.

    The plan-path equivalent of :class:`ObjectGraph` — one pass collects
    everything the Cereal plan kernel needs (objects paired with their
    memoized layouts, relative addresses, the total image size) without
    re-deriving klass metadata per object.
    """

    root: HeapObject
    objects: List[HeapObject]
    layouts: List[KlassLayout]
    relative_address: Dict[int, int]
    total_bytes: int

    @classmethod
    def from_root(cls, root: HeapObject, order: str = "dfs") -> "SlotRunGraph":
        objects: List[HeapObject] = []
        layouts: List[KlassLayout] = []
        relative: Dict[int, int] = {}
        offset = 0
        for obj, layout in traverse_slot_runs(root, order=order):
            objects.append(obj)
            layouts.append(layout)
            relative[obj.address] = offset
            offset += layout.total_slots * 8
        return cls(
            root=root,
            objects=objects,
            layouts=layouts,
            relative_address=relative,
            total_bytes=offset,
        )

    @property
    def object_count(self) -> int:
        return len(self.objects)


@dataclass
class ObjectGraph:
    """Materialized reachable set with precomputed layout facts.

    Serializers that need the full graph up front (e.g. to size output
    buffers, or the Cereal format's total-size word) build one of these.
    The traversal ``order`` is ``"dfs"`` (recursive software serializers) or
    ``"bfs"`` (the Cereal hardware pipeline).
    """

    root: HeapObject
    objects: List[HeapObject]
    relative_address: Dict[int, int]  # heap address -> offset in deserialized image

    @classmethod
    def from_root(cls, root: HeapObject, order: str = "dfs") -> "ObjectGraph":
        if order == "dfs":
            objects = list(traverse_object_graph(root))
        elif order == "bfs":
            objects = list(traverse_object_graph_bfs(root))
        else:
            raise ValueError(f"unknown traversal order {order!r}")
        relative: Dict[int, int] = {}
        offset = 0
        for obj in objects:
            relative[obj.address] = offset
            offset += obj.size_bytes
        return cls(root=root, objects=objects, relative_address=relative)

    @property
    def total_bytes(self) -> int:
        """Sum of object sizes: the size of the deserialized image."""
        return sum(obj.size_bytes for obj in self.objects)

    @property
    def object_count(self) -> int:
        return len(self.objects)

    @property
    def reference_count(self) -> int:
        """Total non-null references across the graph (incl. duplicates)."""
        return sum(
            sum(1 for child in obj.referenced_objects() if child is not None)
            for obj in self.objects
        )

    def __iter__(self) -> Iterator[HeapObject]:
        return iter(self.objects)


@dataclass(frozen=True)
class GraphStats:
    """Shape statistics used by workload generators and reports."""

    object_count: int
    total_bytes: int
    reference_count: int
    null_reference_count: int
    max_out_degree: int
    value_slots: int
    reference_slots: int

    @property
    def references_per_object(self) -> float:
        if self.object_count == 0:
            return 0.0
        return self.reference_count / self.object_count


def object_graph_stats(root: HeapObject) -> GraphStats:
    """Compute :class:`GraphStats` for the graph reachable from ``root``."""
    object_count = 0
    total_bytes = 0
    reference_count = 0
    null_count = 0
    max_out = 0
    value_slots = 0
    reference_slots = 0
    for obj in traverse_object_graph(root):
        object_count += 1
        total_bytes += obj.size_bytes
        children = obj.referenced_objects()
        non_null = sum(1 for child in children if child is not None)
        reference_count += non_null
        null_count += len(children) - non_null
        max_out = max(max_out, non_null)
        ref_slots = len(obj.reference_slots())
        reference_slots += ref_slots
        value_slots += obj.total_slots - ref_slots
    return GraphStats(
        object_count=object_count,
        total_bytes=total_bytes,
        reference_count=reference_count,
        null_reference_count=null_count,
        max_out_degree=max_out,
        value_slots=value_slots,
        reference_slots=reference_slots,
    )
