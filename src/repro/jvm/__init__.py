"""Simulated HotSpot JVM heap.

This package models exactly the parts of HotSpot that the Cereal paper's
hardware interacts with (paper Section II, "Java Object Layout"):

* objects with a 16 B header — an 8 B *mark word* and an 8 B *klass pointer*;
* an optional extra 8 B *Cereal header extension* carrying the serialization
  metadata described in Section V-E (visited counter, unit ID, relative
  address);
* 8 B-aligned fields, so one bit of a layout bitmap describes one 8 B slot;
* klass descriptors ("type descriptors") holding the object layout — the
  offsets of every reference — and total object size;
* a klass registry standing in for the JVM metaspace, addressable by klass
  pointer.
"""

from repro.jvm.markword import MarkWord
from repro.jvm.klass import (
    ArrayKlass,
    FieldDescriptor,
    FieldKind,
    InstanceKlass,
    Klass,
    KlassRegistry,
)
from repro.jvm.heap import Heap, HeapObject
from repro.jvm.graph import (
    ObjectGraph,
    object_graph_stats,
    traverse_object_graph,
    traverse_object_graph_bfs,
)
from repro.jvm.gc import clear_serialization_metadata, walk_heap
from repro.jvm.strings import new_string, read_string

__all__ = [
    "MarkWord",
    "FieldKind",
    "FieldDescriptor",
    "Klass",
    "InstanceKlass",
    "ArrayKlass",
    "KlassRegistry",
    "Heap",
    "HeapObject",
    "ObjectGraph",
    "traverse_object_graph",
    "traverse_object_graph_bfs",
    "object_graph_stats",
    "clear_serialization_metadata",
    "walk_heap",
    "new_string",
    "read_string",
]
