"""The cluster event loop: many servers, one virtual clock.

:class:`SerializationCluster` owns the discrete-event heap and drives N
:class:`~repro.cluster.node.ServerNode`s through the incremental server
API (:meth:`register` / :meth:`on_arrival` / :meth:`on_deadline` /
:meth:`flush_remaining`), so per-node semantics are *identical* to the
standalone :class:`~repro.service.server.SerializationServer` — same
admission, coalescing, routing, and fault-degrade behaviour — while the
cluster layer adds what a single box cannot have:

* **placement** — consistent-hash + locality routing over the UP nodes
  (:mod:`repro.cluster.routing`);
* **failover** — a node-loss fault (:meth:`FaultInjector.node_lost`)
  kills a node mid-flight; its unfinished work (in-flight batches plus
  coalescer-pending requests) is reaped and re-executed on replicas
  after a detection delay. Latency spans original arrival to *final*
  finish, so retries land inside the SLO percentiles instead of hiding
  behind them;
* **reactive autoscaling** — the cluster publishes ``cluster.*`` gauges
  into the :mod:`repro.obs` registry every control tick, and the
  :class:`~repro.cluster.autoscale.Autoscaler` reads exactly those to
  add (STARTING → UP after a provision delay) or drain nodes;
* **cluster observability** — per-node lifetime spans parent the batch
  and request spans on that node's tracks, so one Chrome trace shows the
  whole fleet; per-node metric registries are merged into the run
  registry at teardown via ``merge_snapshot``.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field as dataclass_field
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.common.bufpool import pool_stats
from repro.common.errors import ConfigError
from repro.faults.injector import FaultInjector
from repro.formats.codegen import codegen_cache_stats
from repro.formats.plans import plan_cache_stats
from repro.formats.secure import decode_stats
from repro.jvm.layout_cache import stats as layout_cache_stats
from repro.obs.metrics import (
    MetricsRegistry,
    exact_quantile,
    get_registry,
)
from repro.obs.trace import Tracer, get_tracer
from repro.cluster.autoscale import (
    Autoscaler,
    AutoscalerConfig,
    GAUGE_P99_NS,
    GAUGE_QUEUE_DEPTH,
    GAUGE_STARTING_NODES,
    GAUGE_UP_NODES,
    SCALE_DOWN,
    SCALE_UP,
)
from repro.cluster.node import (
    NODE_DOWN,
    NODE_DRAINING,
    NODE_STARTING,
    ServerNode,
)
from repro.cluster.routing import ClusterRouter
from repro.service.server import ServiceConfig
from repro.service.slo import (
    BACKEND_NONE,
    OUTCOME_REJECTED,
    OUTCOME_SHED,
    RequestRecord,
    SLOReport,
)
from repro.service.workload import ServiceCatalog, ServiceRequest

DEFAULT_ZONES = ("zone-a", "zone-b")


@dataclass(frozen=True)
class ClusterConfig:
    """Fleet geometry and the cluster control loop's knobs."""

    #: Initial fleet size (all UP at t=0; the autoscaler moves it later).
    num_nodes: int = 2
    #: Zones assigned to nodes round-robin; locality routing prefers a
    #: replica in the request's zone.
    zones: Tuple[str, ...] = DEFAULT_ZONES
    #: Preference-list length: primary + (replication_factor - 1) backups.
    replication_factor: int = 2
    vnodes: int = 64
    locality_aware: bool = True
    #: Per-node server deployment (shards, batching, admission, ...).
    service: ServiceConfig = dataclass_field(default_factory=ServiceConfig)
    #: Cadence of the cluster control loop (gauge refresh, node-loss
    #: draws, autoscaler evaluation, drain completion).
    control_interval_ns: float = 100_000.0
    #: Node-loss detection + re-route lag: reaped requests land on their
    #: replica this long after the failure.
    failover_delay_ns: float = 50_000.0
    #: Completions feeding the windowed ``cluster.p99_ns`` gauge.
    p99_window: int = 256
    #: None = static fleet (no scaling).
    autoscaler: Optional[AutoscalerConfig] = None

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigError("num_nodes must be positive")
        if not self.zones:
            raise ConfigError("zones must be non-empty")
        if self.replication_factor <= 0:
            raise ConfigError("replication_factor must be positive")
        if self.control_interval_ns <= 0:
            raise ConfigError("control_interval_ns must be positive")
        if self.failover_delay_ns < 0:
            raise ConfigError("failover_delay_ns must be non-negative")
        if self.p99_window <= 0:
            raise ConfigError("p99_window must be positive")


@dataclass
class ClusterReport:
    """One cluster run: the SLO view plus fleet-level accounting."""

    slo: SLOReport
    nodes: List[Dict]
    autoscale_actions: List[Dict]
    failovers: int
    retried_requests: int
    lost_after_failover: int
    shard_seconds: float
    locality_hits: int
    locality_misses: int

    def as_dict(self) -> Dict:
        return {
            "slo": self.slo.as_dict(),
            "cluster": {
                "nodes": self.nodes,
                "autoscale_actions": self.autoscale_actions,
                "failovers": self.failovers,
                "retried_requests": self.retried_requests,
                "lost_after_failover": self.lost_after_failover,
                "shard_seconds": self.shard_seconds,
                "locality": {
                    "hits": self.locality_hits,
                    "misses": self.locality_misses,
                },
            },
        }


class SerializationCluster:
    """Discrete-event simulation of the multi-node serving fleet."""

    def __init__(
        self,
        catalog: ServiceCatalog,
        config: Optional[ClusterConfig] = None,
        injector: Optional[FaultInjector] = None,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.catalog = catalog
        self.config = config or ClusterConfig()
        self.injector = injector
        self.tracer = tracer if tracer is not None else get_tracer()
        self.registry = registry if registry is not None else get_registry()
        self.router = ClusterRouter(
            replication_factor=self.config.replication_factor,
            vnodes=self.config.vnodes,
            locality_aware=self.config.locality_aware,
        )
        self.autoscaler = (
            Autoscaler(self.config.autoscaler)
            if self.config.autoscaler is not None
            else None
        )
        self._nodes: Dict[str, ServerNode] = {}
        self._order: List[str] = []  # creation order (deterministic walks)
        self._node_spans: Dict[str, object] = {}
        self._next_node_index = 0
        self._records: Dict[int, RequestRecord] = {}
        self._requests: Dict[int, ServiceRequest] = {}
        # (finish_ns, request_id, node_id) of future completions; entries
        # go stale when a failover re-executes the request elsewhere.
        self._completions: List[Tuple[float, int, str]] = []
        self._latency_window: Deque[float] = deque(
            maxlen=self.config.p99_window
        )
        self.failovers = 0
        self.lost_after_failover = 0
        self._peak_queue_depth = 0
        self._horizon_ns = 0.0
        self._events: List[Tuple[float, int, str, object]] = []
        self._tiebreak = -1
        self._noncontrol_events = 0

    # -- fleet management --------------------------------------------------------------

    def _zone_for_index(self, index: int) -> str:
        return self.config.zones[index % len(self.config.zones)]

    def _new_node(self, provisioned_ns: float) -> ServerNode:
        node_id = f"node{self._next_node_index}"
        zone = self._zone_for_index(self._next_node_index)
        self._next_node_index += 1
        node = ServerNode(
            node_id,
            zone,
            self.catalog,
            self.config.service,
            provisioned_ns=provisioned_ns,
            injector=self.injector,
            tracer=self.tracer,
        )
        self._nodes[node_id] = node
        self._order.append(node_id)
        return node

    def _activate(self, node: ServerNode, now_ns: float) -> None:
        node.activate(now_ns)
        self.router.add_node(node.node_id, node.zone)
        # The node lifetime span parents every batch and request span the
        # node emits; recorded open (end == start) and patched at stop.
        span = self.tracer.record_span(
            "node.up",
            now_ns,
            now_ns,
            category="node",
            track=f"{node.node_id}.node",
            node=node.node_id,
            zone=node.zone,
        )
        if span is not None:
            self._node_spans[node.node_id] = span
            node.server.trace_parent = span

    def _close_node_span(self, node: ServerNode, now_ns: float) -> None:
        span = self._node_spans.get(node.node_id)
        if span is not None and now_ns > span.end_ns:
            span.end_ns = now_ns

    def _routable(self) -> List[ServerNode]:
        return [
            self._nodes[node_id]
            for node_id in self._order
            if self._nodes[node_id].routable
        ]

    def _starting(self) -> List[ServerNode]:
        return [
            self._nodes[node_id]
            for node_id in self._order
            if self._nodes[node_id].state == NODE_STARTING
        ]

    # -- event helpers -----------------------------------------------------------------

    def _push(self, when_ns: float, etype: str, payload: object) -> None:
        self._tiebreak += 1
        heapq.heappush(
            self._events, (when_ns, self._tiebreak, etype, payload)
        )
        if etype != "control":
            self._noncontrol_events += 1

    def _note_completions(
        self, node_id: str, completions: List[Tuple[float, int]]
    ) -> None:
        for finish, request_id in completions:
            heapq.heappush(self._completions, (finish, request_id, node_id))

    def _drain_completions(self, now_ns: float) -> None:
        """Fold finished requests into the latency window and the served
        node's private metrics; stale entries (the request was reaped and
        re-executed elsewhere) are skipped."""
        while self._completions and self._completions[0][0] <= now_ns:
            finish, request_id, node_id = heapq.heappop(self._completions)
            record = self._records[request_id]
            if (
                not record.completed
                or record.finish_ns != finish
                or record.node != node_id
            ):
                continue  # superseded by a failover re-execution
            self._latency_window.append(record.latency_ns)
            node = self._nodes.get(node_id)
            if node is not None:
                node.served_requests += 1
                node.registry.counter(
                    "node.requests_completed", node=node_id
                ).inc()
                node.registry.histogram(
                    "node.latency_ns",
                    node=node_id,
                    exact_limit=self.config.p99_window,
                ).observe(record.latency_ns)

    # -- request handling --------------------------------------------------------------

    def _routing_key(self, request: ServiceRequest) -> str:
        return request.key or f"req{request.request_id}"

    def _shed_unroutable(self, record: RequestRecord, now_ns: float) -> None:
        record.outcome = OUTCOME_SHED
        record.backend = BACKEND_NONE
        record.dispatch_ns = now_ns
        record.finish_ns = now_ns

    def _deliver(
        self, node: ServerNode, request: ServiceRequest, now_ns: float
    ) -> None:
        """Hand one request to a node; wire resulting events back in."""
        arrival = node.server.on_arrival(request, now_ns)
        self._note_completions(node.node_id, arrival.completions)
        if arrival.deadline is not None:
            deadline_ns, kind, seq = arrival.deadline
            self._push(
                deadline_ns, "deadline", (node.node_id, kind, seq)
            )

    def _handle_arrival(
        self, request: ServiceRequest, now_ns: float
    ) -> None:
        record = self._records[request.request_id]
        target = self.router.route(
            self._routing_key(request), zone=request.zone
        )
        if target is None:
            self._shed_unroutable(record, now_ns)
            return
        node = self._nodes[target]
        node.server.adopt(record)
        self._deliver(node, request, now_ns)

    def _handle_retry(
        self, request: ServiceRequest, now_ns: float
    ) -> None:
        """Re-execute a request reaped from a failed node.

        Walks the (post-failure) preference list: a replica that sheds
        the retry under its own admission pressure escalates to the next
        one. Only when every routable replica sheds is the request lost —
        the condition the failover bench gates at zero.
        """
        record = self._records[request.request_id]
        record.retries += 1
        tried: Set[str] = set()
        while True:
            target = self.router.route(
                self._routing_key(request),
                zone=request.zone,
                exclude=tuple(tried),
            )
            if target is None:
                self._shed_unroutable(record, now_ns)
                self.lost_after_failover += 1
                return
            node = self._nodes[target]
            node.server.adopt(record)
            self._deliver(node, request, now_ns)
            if record.outcome != OUTCOME_SHED:
                return
            tried.add(target)

    def _handle_deadline(
        self, node_id: str, kind: str, seq: int, now_ns: float
    ) -> None:
        node = self._nodes[node_id]
        if node.state == NODE_DOWN:
            return  # the group died with the node; failover owns its work
        completions = node.server.on_deadline(kind, seq, now_ns)
        self._note_completions(node_id, completions)

    # -- failover ----------------------------------------------------------------------

    def _fail_node(self, node: ServerNode, now_ns: float) -> None:
        self.failovers += 1
        self.router.remove_node(node.node_id)
        node.fail(now_ns)
        self._close_node_span(node, now_ns)
        # Reap everything the node had accepted but not finished: requests
        # executing (future finish times) and requests still coalescing.
        lost_ids = node.server.reap_inflight(now_ns)
        pending = node.server.coalescer.pending_requests()
        node.server.coalescer.clear_pending()
        lost = [self._requests[request_id] for request_id in lost_ids]
        lost.extend(pending)
        if self.injector is not None:
            report = self.injector.report
            report.record_injected("node")
            report.record_detected("node")
            report.record_recovered("node")
            report.record_fallback("node", count=len(lost))
        self.tracer.instant(
            "node.failover",
            ts_ns=now_ns,
            category="fault",
            track="cluster",
            node=node.node_id,
            reaped=len(lost),
        )
        retry_at = now_ns + self.config.failover_delay_ns
        for request in sorted(lost, key=lambda r: r.request_id):
            self._push(retry_at, "retry", request)

    # -- the control loop --------------------------------------------------------------

    def _publish_gauges(self, now_ns: float) -> None:
        routable = self._routable()
        queue_depth = sum(
            node.server.admission.outstanding for node in routable
        )
        self._peak_queue_depth = max(self._peak_queue_depth, queue_depth)
        p99 = 0.0
        if self._latency_window:
            p99 = exact_quantile(sorted(self._latency_window), 99.0)
        self.registry.gauge(GAUGE_QUEUE_DEPTH).set(queue_depth)
        self.registry.gauge(GAUGE_P99_NS).set(p99)
        self.registry.gauge(GAUGE_UP_NODES).set(len(routable))
        self.registry.gauge(GAUGE_STARTING_NODES).set(len(self._starting()))
        for node in routable:
            node.registry.gauge(
                "node.outstanding", node=node.node_id
            ).set_max(node.server.admission.outstanding)

    def _apply_autoscaler(self, now_ns: float) -> None:
        if self.autoscaler is None:
            return
        action = self.autoscaler.decide(self.registry, now_ns)
        if action == SCALE_UP:
            node = self._new_node(provisioned_ns=now_ns)
            self._push(
                now_ns + self.config.autoscaler.provision_delay_ns,
                "activate",
                node.node_id,
            )
            self.tracer.instant(
                "autoscale.up",
                ts_ns=now_ns,
                category="autoscale",
                track="cluster",
                node=node.node_id,
            )
        elif action == SCALE_DOWN:
            routable = self._routable()
            victim = min(
                routable,
                key=lambda n: (n.server.admission.outstanding, n.node_id),
            )
            self.router.remove_node(victim.node_id)
            victim.start_drain()
            self.tracer.instant(
                "autoscale.down",
                ts_ns=now_ns,
                category="autoscale",
                track="cluster",
                node=victim.node_id,
            )

    def _handle_control(self, now_ns: float) -> None:
        self._drain_completions(now_ns)
        # Node-loss draws: one per routable node per tick, on its own
        # fault channel, so fleets of different sizes never perturb each
        # other's schedules.
        if self.injector is not None:
            for node in list(self._routable()):
                if self.injector.node_lost(node.node_id):
                    self._fail_node(node, now_ns)
        # Draining nodes retire once their queues empty.
        for node_id in self._order:
            node = self._nodes[node_id]
            if node.state == NODE_DRAINING and node.idle(now_ns):
                node.finish(now_ns)
                self._close_node_span(node, now_ns)
        self._publish_gauges(now_ns)
        self._apply_autoscaler(now_ns)

    def _quiescent(self, now_ns: float) -> bool:
        if self._noncontrol_events > 0:
            return False
        if self._starting():
            return False
        for node_id in self._order:
            node = self._nodes[node_id]
            if node.state != NODE_DOWN and not node.idle(now_ns):
                return False
        return True

    # -- the event loop ----------------------------------------------------------------

    def run(self, requests: Sequence[ServiceRequest]) -> ClusterReport:
        """Simulate the full request sequence across the fleet."""
        self._records = {}
        self._requests = {}
        for request in requests:
            self._records[request.request_id] = RequestRecord(
                request_id=request.request_id,
                kind=request.kind,
                size_class=request.entry.name,
                arrival_ns=request.arrival_ns,
                tenant=request.tenant,
                priority=request.priority,
            )
            self._requests[request.request_id] = request
        if len(self._records) != len(requests):
            raise ConfigError("request_ids must be unique within one run")

        self._events: List[Tuple[float, int, str, object]] = []
        self._tiebreak = -1
        self._noncontrol_events = 0
        for request in requests:
            self._push(request.arrival_ns, "arrival", request)

        # The initial fleet is provisioned before the run: UP at t=0.
        for _ in range(self.config.num_nodes):
            node = self._new_node(provisioned_ns=0.0)
            self._activate(node, 0.0)
        if requests:
            first = min(r.arrival_ns for r in requests)
            self._push(
                first + self.config.control_interval_ns, "control", None
            )

        tracer = self.tracer
        while self._events:
            now_ns, _, etype, payload = heapq.heappop(self._events)
            if etype != "control":
                self._noncontrol_events -= 1
            tracer.advance(now_ns)
            self._horizon_ns = max(self._horizon_ns, now_ns)
            if etype == "arrival":
                self._handle_arrival(payload, now_ns)
            elif etype == "retry":
                self._handle_retry(payload, now_ns)
            elif etype == "deadline":
                node_id, kind, seq = payload
                self._handle_deadline(node_id, kind, seq, now_ns)
            elif etype == "activate":
                self._activate(self._nodes[payload], now_ns)
            else:  # control
                self._handle_control(now_ns)
                if not self._quiescent(now_ns):
                    self._push(
                        now_ns + self.config.control_interval_ns,
                        "control",
                        None,
                    )
        return self._finalize(self._horizon_ns, requests)

    # -- teardown ----------------------------------------------------------------------

    def _finalize(
        self, now_ns: float, requests: Sequence[ServiceRequest]
    ) -> ClusterReport:
        # Safety drain (mirrors the standalone server): dispatch any group
        # still open — zero-wait configs flush inline and never open one.
        for node_id in self._order:
            node = self._nodes[node_id]
            if node.state == NODE_DOWN:
                continue
            completions = node.server.flush_remaining(now_ns)
            self._note_completions(node_id, completions)
        end = now_ns
        if self._completions:
            end = max(end, max(f for f, _, _ in self._completions))
        self._drain_completions(end)
        for node_id in self._order:
            node = self._nodes[node_id]
            node.finish(end)
            self._close_node_span(node, end)
            self.registry.merge_snapshot(node.registry)
        if self.tracer.enabled:
            self._emit_request_spans(requests)

        records = [self._records[r.request_id] for r in requests]
        nodes = [
            self._nodes[node_id].summary(end) for node_id in self._order
        ]
        slo = SLOReport(
            records=records,
            fault_report=self.injector.report if self.injector else None,
            degraded_batches=sum(
                self._nodes[n].server.degraded_batches for n in self._order
            ),
            mean_batch_size=self._mean_batch_size(),
            peak_outstanding=self._peak_queue_depth,
            verified_requests=sum(
                self._nodes[n].server.verified_requests for n in self._order
            ),
            runtime_caches={
                "plan_cache": plan_cache_stats(),
                "codegen_cache": codegen_cache_stats(),
                "layout_cache": layout_cache_stats(),
                "buffer_pool": pool_stats(),
                "secure_decode": decode_stats(),
                **(
                    {"streaming": self._streaming_stats()}
                    if any(
                        self._nodes[n].server.streamer is not None
                        for n in self._order
                    )
                    else {}
                ),
            },
        )
        return ClusterReport(
            slo=slo,
            nodes=nodes,
            autoscale_actions=(
                list(self.autoscaler.actions) if self.autoscaler else []
            ),
            failovers=self.failovers,
            retried_requests=slo.retried_requests,
            lost_after_failover=self.lost_after_failover,
            shard_seconds=sum(
                self._nodes[n].shard_seconds(end) for n in self._order
            ),
            locality_hits=self.router.locality_hits,
            locality_misses=self.router.locality_misses,
        )

    def _streaming_stats(self) -> Dict:
        """Cluster-wide egress streaming totals (counts summed, buffer
        high-water marks maxed, the TTFB speedup recomputed from sums)."""
        merged: Dict = {}
        for node_id in self._order:
            streamer = self._nodes[node_id].server.streamer
            if streamer is None:
                continue
            for key, value in streamer.stats().items():
                if key in ("buffer_hwm_bytes", "whole_buffer_hwm_bytes"):
                    merged[key] = max(merged.get(key, 0), value)
                elif key not in ("mean_ttfb_speedup", "service_ttfb_speedup"):
                    merged[key] = merged.get(key, 0) + value
        merged["mean_ttfb_speedup"] = (
            merged["whole_ttfb_sum_ns"] / merged["ttfb_sum_ns"]
            if merged.get("ttfb_sum_ns")
            else 0.0
        )
        merged["service_ttfb_speedup"] = (
            merged["whole_service_ttfb_sum_ns"] / merged["service_ttfb_sum_ns"]
            if merged.get("service_ttfb_sum_ns")
            else 0.0
        )
        return merged

    def _mean_batch_size(self) -> float:
        closed = sum(
            self._nodes[n].server.coalescer.batches_closed
            for n in self._order
        )
        batched = sum(
            self._nodes[n].server.coalescer.requests_batched
            for n in self._order
        )
        return batched / closed if closed else 0.0

    def _emit_request_spans(
        self, requests: Sequence[ServiceRequest]
    ) -> None:
        """One retrospective span tree per request, on its serving node's
        ``requests`` track, parented under that node's lifetime span (the
        cluster-trace analogue of the standalone server's emission)."""
        tracer = self.tracer
        for request in requests:
            record = self._records[request.request_id]
            track = (
                f"{record.node}.requests" if record.node else "cluster"
            )
            if not record.completed:
                name = (
                    "request.rejected"
                    if record.outcome == OUTCOME_REJECTED
                    else "request.shed"
                )
                tracer.instant(
                    name,
                    ts_ns=record.arrival_ns,
                    category="request",
                    track=track,
                    request_id=record.request_id,
                )
                continue
            parent = tracer.record_span(
                "request",
                record.arrival_ns,
                record.finish_ns,
                category="request",
                track=track,
                parent=self._node_spans.get(record.node),
                request_id=record.request_id,
                kind=record.kind,
                size_class=record.size_class,
                outcome=record.outcome,
                backend=record.backend,
                node=record.node,
                retries=record.retries,
                tenant=record.tenant,
            )
            tracer.record_span(
                "request.queue",
                record.arrival_ns,
                record.dispatch_ns,
                category="request",
                track=track,
                parent=parent,
                request_id=record.request_id,
            )
            tracer.record_span(
                "request.execute",
                record.dispatch_ns,
                record.finish_ns,
                category="request",
                track=track,
                parent=parent,
                request_id=record.request_id,
                backend=record.backend,
            )
            if record.streamed and record.chunk_timeline:
                for seq, start_ns, done_ns in record.chunk_timeline:
                    tracer.record_span(
                        "response.chunk",
                        start_ns,
                        done_ns,
                        category="chunk",
                        track=track,
                        parent=parent,
                        request_id=record.request_id,
                        chunk=seq,
                    )
