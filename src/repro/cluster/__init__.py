"""Multi-node serving: replication, locality routing, reactive scaling.

The serving stack so far ends at one box —
:class:`~repro.service.server.SerializationServer` with its shards and
software lane. Real deployments of a serialization tier run *fleets*:
requests hash onto nodes, hot keys concentrate load, nodes fail
mid-flight, and capacity follows demand. This package adds that layer
without forking the server — each
:class:`~repro.cluster.node.ServerNode` wraps an unmodified server,
driven through its incremental event API on one shared virtual clock:

* :mod:`repro.cluster.routing` — consistent-hash ring (virtual nodes),
  replica preference lists on distinct physical nodes, locality-aware
  dispatch;
* :mod:`repro.cluster.node` — node lifecycle (STARTING → UP → DRAINING
  → DOWN), shard-second cost accounting, per-node metric registries;
* :mod:`repro.cluster.autoscale` — the reactive controller reading
  ``cluster.*`` gauges out of the :mod:`repro.obs` registry;
* :mod:`repro.cluster.cluster` — the fleet event loop: placement,
  failover with retry re-execution, the control tick, and the
  :class:`~repro.cluster.cluster.ClusterReport`.

``benchmarks/bench_cluster.py`` sweeps static vs autoscaled fleets under
a flash crowd and injected node loss, and emits ``BENCH_cluster.json``.
"""

from repro.cluster.autoscale import (
    Autoscaler,
    AutoscalerConfig,
    GAUGE_P99_NS,
    GAUGE_QUEUE_DEPTH,
    GAUGE_STARTING_NODES,
    GAUGE_UP_NODES,
    SCALE_DOWN,
    SCALE_UP,
)
from repro.cluster.cluster import (
    ClusterConfig,
    ClusterReport,
    SerializationCluster,
)
from repro.cluster.node import (
    NODE_DOWN,
    NODE_DRAINING,
    NODE_STARTING,
    NODE_UP,
    ServerNode,
)
from repro.cluster.routing import (
    ClusterRouter,
    ConsistentHashRing,
    stable_hash,
)

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "GAUGE_P99_NS",
    "GAUGE_QUEUE_DEPTH",
    "GAUGE_STARTING_NODES",
    "GAUGE_UP_NODES",
    "SCALE_DOWN",
    "SCALE_UP",
    "ClusterConfig",
    "ClusterReport",
    "SerializationCluster",
    "NODE_DOWN",
    "NODE_DRAINING",
    "NODE_STARTING",
    "NODE_UP",
    "ServerNode",
    "ClusterRouter",
    "ConsistentHashRing",
    "stable_hash",
]
