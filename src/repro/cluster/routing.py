"""Consistent-hash placement with replication and locality preference.

Keys map onto a ring of virtual nodes (many per physical node, so load
spreads evenly); the *preference list* of a key is the first R distinct
physical nodes walking clockwise from the key's point. That walk gives
the two properties the cluster leans on:

* **stability** — adding or removing one node remaps only the keys whose
  ring arcs that node owned (~1/N of the key space), so a scale event or
  failover does not reshuffle the whole cluster;
* **replica separation** — the preference list skips virtual nodes of
  physical nodes already chosen, so a key's primary and replicas are
  always distinct machines.

Hashing is FNV-1a finished with splitmix64 — a stable, unsalted function
of the string alone, so placements are identical across runs and
processes (Python's built-in ``hash`` is salted per process and would
break determinism).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ConfigError
from repro.common.hashing import stable_hash

__all__ = ["ClusterRouter", "ConsistentHashRing", "stable_hash"]


class ConsistentHashRing:
    """The classic virtual-node consistent-hash ring."""

    def __init__(self, vnodes: int = 64):
        if vnodes <= 0:
            raise ConfigError("vnodes must be positive")
        self.vnodes = vnodes
        self._points: List[int] = []  # sorted ring positions
        self._owner: Dict[int, str] = {}  # position -> physical node
        self._nodes: Dict[str, List[int]] = {}  # node -> its positions

    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def add_node(self, node_id: str) -> None:
        if not node_id:
            raise ConfigError("node_id must be non-empty")
        if node_id in self._nodes:
            raise ConfigError(f"node {node_id!r} is already on the ring")
        points = []
        for replica in range(self.vnodes):
            point = stable_hash(f"{node_id}#{replica}")
            # A 64-bit collision across vnode labels is effectively
            # impossible, but dropping the duplicate keeps the ring sane.
            if point in self._owner:
                continue
            self._owner[point] = node_id
            bisect.insort(self._points, point)
            points.append(point)
        self._nodes[node_id] = points

    def remove_node(self, node_id: str) -> None:
        points = self._nodes.pop(node_id, None)
        if points is None:
            raise ConfigError(f"node {node_id!r} is not on the ring")
        for point in points:
            del self._owner[point]
            index = bisect.bisect_left(self._points, point)
            self._points.pop(index)

    def node_for(self, key: str) -> Optional[str]:
        """The primary owner of ``key`` (None on an empty ring)."""
        preference = self.preference(key, 1)
        return preference[0] if preference else None

    def preference(self, key: str, count: int) -> List[str]:
        """The first ``count`` *distinct physical nodes* clockwise from
        the key's ring point — primary first, then failover replicas."""
        if not self._points or count <= 0:
            return []
        start = bisect.bisect_right(self._points, stable_hash(key))
        chosen: List[str] = []
        seen = set()
        for offset in range(len(self._points)):
            point = self._points[(start + offset) % len(self._points)]
            owner = self._owner[point]
            if owner in seen:
                continue
            seen.add(owner)
            chosen.append(owner)
            if len(chosen) >= count:
                break
        return chosen


class ClusterRouter:
    """Key → serving-node dispatch over the ring, locality-aware.

    The router owns the ring membership (only UP nodes are on it) and a
    zone map. Dispatch walks the key's preference list of
    ``replication_factor`` nodes: with locality on and a request zone
    given, the first replica in that zone wins; otherwise the primary
    does. Because failed/draining nodes leave the ring, failover routing
    is just the same walk on the shrunken ring.
    """

    def __init__(
        self,
        replication_factor: int = 2,
        vnodes: int = 64,
        locality_aware: bool = True,
    ):
        if replication_factor <= 0:
            raise ConfigError("replication_factor must be positive")
        self.ring = ConsistentHashRing(vnodes=vnodes)
        self.replication_factor = replication_factor
        self.locality_aware = locality_aware
        self._zones: Dict[str, str] = {}
        self.locality_hits = 0
        self.locality_misses = 0

    def add_node(self, node_id: str, zone: str = "") -> None:
        self.ring.add_node(node_id)
        self._zones[node_id] = zone

    def remove_node(self, node_id: str) -> None:
        self.ring.remove_node(node_id)
        self._zones.pop(node_id, None)

    def zone_of(self, node_id: str) -> str:
        return self._zones.get(node_id, "")

    def replicas_for(self, key: str) -> List[str]:
        """The key's current preference list (primary first)."""
        return self.ring.preference(key, self.replication_factor)

    def route(
        self, key: str, zone: str = "", exclude: Sequence[str] = ()
    ) -> Optional[str]:
        """Pick the serving node for ``key`` (None if no node is up).

        ``exclude`` drops nodes that already failed this request (retry
        escalation walks further down the preference list).
        """
        candidates = [
            node for node in self.replicas_for(key) if node not in exclude
        ]
        if not candidates:
            return None
        if self.locality_aware and zone:
            for node in candidates:
                if self._zones.get(node, "") == zone:
                    self.locality_hits += 1
                    return node
            self.locality_misses += 1
        return candidates[0]
