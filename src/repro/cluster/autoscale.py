"""Reactive autoscaling from observed load, not offered load.

The autoscaler is deliberately blind to the workload generator: it reads
only what a production controller could read — the ``cluster.*`` gauges
the cluster publishes into the :mod:`repro.obs` metrics registry each
control tick (queue depth summed over routable nodes, windowed p99 over
recent completions, node counts). Decisions:

* **scale up** when per-node queue depth exceeds ``queue_high_per_node``
  or the windowed p99 exceeds ``p99_high_ns`` (when set). Booting a node
  takes ``provision_delay_ns`` of simulated time, during which the node
  accrues cost but serves nothing — reactive scaling therefore always
  trails a flash crowd's leading edge, and the bench quantifies by how
  much.
* **scale down** when per-node queue depth falls below
  ``queue_low_per_node`` (and p99 is below the ceiling): one node is
  drained — it finishes queued work, then retires.

A cooldown separates consecutive actions so one burst cannot slam the
cluster through its whole node budget, and ``min_nodes``/``max_nodes``
bound the fleet. Pending (STARTING) nodes count toward capacity so the
controller does not double-provision while a node boots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import ConfigError
from repro.obs.metrics import MetricsRegistry

SCALE_UP = "scale-up"
SCALE_DOWN = "scale-down"

#: Gauge names the cluster publishes and the autoscaler reads.
GAUGE_QUEUE_DEPTH = "cluster.queue_depth"
GAUGE_P99_NS = "cluster.p99_ns"
GAUGE_UP_NODES = "cluster.up_nodes"
GAUGE_STARTING_NODES = "cluster.starting_nodes"


@dataclass(frozen=True)
class AutoscalerConfig:
    """Control-loop thresholds and actuation limits."""

    min_nodes: int = 1
    max_nodes: int = 8
    #: Scale up when (queue depth / routable nodes) exceeds this.
    queue_high_per_node: float = 48.0
    #: Scale down when (queue depth / routable nodes) is below this.
    queue_low_per_node: float = 4.0
    #: Optional latency trigger: scale up when the windowed p99 exceeds
    #: this many nanoseconds (0 disables the latency path).
    p99_high_ns: float = 0.0
    #: Minimum simulated time between consecutive scaling actions.
    cooldown_ns: float = 2_000_000.0
    #: STARTING -> UP boot lag for nodes this controller provisions.
    provision_delay_ns: float = 1_000_000.0

    def __post_init__(self) -> None:
        if self.min_nodes <= 0:
            raise ConfigError("min_nodes must be positive")
        if self.max_nodes < self.min_nodes:
            raise ConfigError("max_nodes must be >= min_nodes")
        if self.queue_high_per_node <= self.queue_low_per_node:
            raise ConfigError(
                "queue_high_per_node must exceed queue_low_per_node"
            )
        if self.queue_low_per_node < 0 or self.p99_high_ns < 0:
            raise ConfigError("thresholds must be non-negative")
        if self.cooldown_ns < 0 or self.provision_delay_ns < 0:
            raise ConfigError("delays must be non-negative")


class Autoscaler:
    """One reactive controller instance (state: last action time + log)."""

    def __init__(self, config: AutoscalerConfig):
        self.config = config
        self._last_action_ns: Optional[float] = None
        self.actions: List[Dict[str, object]] = []

    def _log(
        self, action: str, now_ns: float, queue_per_node: float, p99_ns: float
    ) -> None:
        self._last_action_ns = now_ns
        self.actions.append(
            {
                "action": action,
                "ts_ns": now_ns,
                "queue_per_node": queue_per_node,
                "p99_ns": p99_ns,
            }
        )

    def decide(self, registry: MetricsRegistry, now_ns: float) -> str:
        """One control-tick evaluation; returns "", SCALE_UP or SCALE_DOWN.

        Reads cluster state exclusively from ``registry`` gauges — the
        same snapshot any dashboard of the run sees.
        """
        config = self.config
        if (
            self._last_action_ns is not None
            and now_ns - self._last_action_ns < config.cooldown_ns
        ):
            return ""
        up = int(registry.gauge(GAUGE_UP_NODES).value)
        starting = int(registry.gauge(GAUGE_STARTING_NODES).value)
        if up <= 0:
            return ""
        queue_depth = registry.gauge(GAUGE_QUEUE_DEPTH).value
        p99_ns = registry.gauge(GAUGE_P99_NS).value
        queue_per_node = queue_depth / up
        provisioned = up + starting
        hot = queue_per_node > config.queue_high_per_node or (
            config.p99_high_ns > 0 and p99_ns > config.p99_high_ns
        )
        if hot and provisioned < config.max_nodes:
            self._log(SCALE_UP, now_ns, queue_per_node, p99_ns)
            return SCALE_UP
        cold = queue_per_node < config.queue_low_per_node and (
            config.p99_high_ns == 0 or p99_ns <= config.p99_high_ns
        )
        if cold and starting == 0 and up > config.min_nodes:
            self._log(SCALE_DOWN, now_ns, queue_per_node, p99_ns)
            return SCALE_DOWN
        return ""
