"""One serving node: a :class:`SerializationServer` plus lifecycle state.

The node wraps today's single-machine server unchanged — same shards,
software lane, coalescer, and admission controller — and adds what the
cluster layer needs around it: a lifecycle state machine, provisioned
shard-second accounting (the cost axis every static-vs-autoscaled
comparison normalizes on), and a private metrics registry the cluster
folds into the global one at end of run via
:meth:`repro.obs.metrics.MetricsRegistry.merge_snapshot`.

State machine::

    STARTING --activate--> UP --start_drain--> DRAINING --finish--> DOWN
                            \\--fail------------------------------> DOWN

``STARTING`` models provisioning lag: the autoscaler pays for the node
(shard-seconds accrue from provisioning) but cannot route to it until
the delay elapses — exactly the window that makes reactive scaling lose
to the flash crowd's leading edge.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.errors import ConfigError
from repro.faults.injector import FaultInjector
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.service.server import SerializationServer, ServiceConfig
from repro.service.workload import ServiceCatalog

NODE_STARTING = "starting"
NODE_UP = "up"
NODE_DRAINING = "draining"
NODE_DOWN = "down"

_TRANSITIONS = {
    NODE_STARTING: (NODE_UP, NODE_DOWN),
    NODE_UP: (NODE_DRAINING, NODE_DOWN),
    NODE_DRAINING: (NODE_DOWN,),
    NODE_DOWN: (),
}


class ServerNode:
    """Lifecycle wrapper around one per-node serialization server."""

    def __init__(
        self,
        node_id: str,
        zone: str,
        catalog: ServiceCatalog,
        config: ServiceConfig,
        provisioned_ns: float,
        injector: Optional[FaultInjector] = None,
        tracer: Optional[Tracer] = None,
    ):
        if not node_id:
            raise ConfigError("node_id must be non-empty")
        self.node_id = node_id
        self.zone = zone
        self.server = SerializationServer(
            catalog,
            config,
            injector=injector,
            tracer=tracer,
            node_id=node_id,
        )
        self.state = NODE_STARTING
        self.provisioned_ns = provisioned_ns
        self.up_ns: Optional[float] = None
        self.stopped_ns: Optional[float] = None
        self.failed = False
        self.served_requests = 0
        #: Node-local metrics; merged into the run registry at teardown.
        self.registry = MetricsRegistry(enabled=True)

    def __repr__(self) -> str:
        return f"ServerNode({self.node_id!r}, {self.state})"

    # -- state machine -----------------------------------------------------------------

    def _transition(self, target: str) -> None:
        if target not in _TRANSITIONS[self.state]:
            raise ConfigError(
                f"node {self.node_id}: illegal transition "
                f"{self.state} -> {target}"
            )
        self.state = target

    def activate(self, now_ns: float) -> None:
        """Provisioning finished: the node may take traffic."""
        self._transition(NODE_UP)
        self.up_ns = now_ns

    def start_drain(self) -> None:
        """Stop taking new work; finish what is queued, then retire."""
        self._transition(NODE_DRAINING)

    def fail(self, now_ns: float) -> None:
        """The node dropped out mid-flight (injected node-loss fault)."""
        self._transition(NODE_DOWN)
        self.failed = True
        self.stopped_ns = now_ns

    def finish(self, now_ns: float) -> None:
        """Clean retirement (drain completed, or end of run)."""
        if self.state == NODE_DOWN:
            return
        self.state = NODE_DOWN
        self.stopped_ns = now_ns

    @property
    def routable(self) -> bool:
        return self.state == NODE_UP

    def idle(self, now_ns: float) -> bool:
        """No admitted request is queued, batching, or executing."""
        self.server.drain(now_ns)
        return (
            self.server.inflight_count == 0
            and not self.server.coalescer.pending_requests()
        )

    # -- accounting --------------------------------------------------------------------

    def shard_seconds(self, now_ns: float) -> float:
        """Provisioned capacity cost: shards × provisioned wall time.

        Accrues from the moment the node is requested (STARTING) until it
        reaches DOWN — a booting node costs money before it serves.
        """
        end = self.stopped_ns if self.stopped_ns is not None else now_ns
        span_ns = max(0.0, end - self.provisioned_ns)
        return self.server.config.num_shards * span_ns * 1e-9

    def summary(self, now_ns: float) -> Dict[str, object]:
        return {
            "node": self.node_id,
            "zone": self.zone,
            "state": self.state,
            "failed": self.failed,
            "provisioned_ns": self.provisioned_ns,
            "up_ns": self.up_ns,
            "stopped_ns": self.stopped_ns,
            "shard_seconds": self.shard_seconds(now_ns),
            "served_requests": self.served_requests,
            "dispatched_batches": sum(
                shard.dispatched_batches for shard in self.server.shards
            ),
            "degraded_batches": self.server.degraded_batches,
            "admission": {
                "admitted": self.server.admission.admitted,
                "shed": self.server.admission.shed,
                "peak_outstanding": self.server.admission.peak_outstanding,
            },
        }
