"""Support Vector Machine training (HiBench SVM).

The suite's most S/D-bound application (paper Figure 2: up to 90.9% of
runtime with Java S/D). The training set is cached with Spark's
``MEMORY_ONLY_SER`` storage level, so *every* gradient iteration pays a
full deserialization of the cached points, plus a small collect of the
partial gradients — while the per-point hinge-gradient compute is only a
handful of FLOPs. Iterating many times turns the run into almost pure
deserialization.
"""

from __future__ import annotations

from repro.jvm.klass import FieldKind
from repro.spark.apps.base import (
    AppResult,
    ensure_klass,
    make_context,
    new_double_array,
    register_backend_classes,
)
from repro.spark.backend import SDBackend
from repro.workloads.datagen import DeterministicRandom

_POINTS = 1200
_PARTITIONS = 4
_FEATURES = 16
_ITERATIONS = 12
# Hinge gradient over the full-scale point block each scaled point stands
# for (calibrated against Figure 2's 90.9% S/D share: compute is tiny).
_GRADIENT_INSTR_PER_POINT = 20_000.0


def run_svm(
    backend: SDBackend,
    scale: float = 1.0,
    injector=None,
    frame_streams: bool = False,
    retry_policy=None,
) -> AppResult:
    context = make_context(
        backend,
        injector=injector,
        frame_streams=frame_streams,
        retry_policy=retry_policy,
    )
    registry = context.registry
    point_klass = ensure_klass(
        registry,
        "LabeledPoint",
        [("label", FieldKind.DOUBLE), ("features", FieldKind.REFERENCE)],
    )
    registry.array_klass(FieldKind.DOUBLE)
    registry.array_klass(FieldKind.REFERENCE)
    register_backend_classes(backend, registry)

    rng = DeterministicRandom(seed=0x5117)
    count = max(_PARTITIONS, int(_POINTS * scale))
    heap = context.executor_heap

    context.read_input(10e6)  # libsvm text input (Table III: 1740 MB, scaled)
    points = []
    for _ in range(count):
        point = heap.allocate(point_klass)
        point.set("label", 1.0 if rng.random() > 0.5 else -1.0)
        point.set("features", new_double_array(heap, rng, _FEATURES))
        points.append(point)
    dataset = context.parallelize(points, _PARTITIONS)
    dataset.foreach_compute(9_000.0)  # parsing

    cached = dataset.cache_serialized()
    weights = new_double_array(heap, rng, _FEATURES)

    for _ in range(_ITERATIONS):
        context.broadcast(weights, _PARTITIONS)  # current model to executors
        training = cached.read()  # MEMORY_ONLY_SER: deserialize everything
        training.foreach_compute(_GRADIENT_INSTR_PER_POINT)
        # Partial gradients (one dense vector per partition) to the driver.
        gradients = []
        for _ in range(training.num_partitions):
            gradients.append(new_double_array(heap, rng, _FEATURES))
        context.parallelize(gradients, training.num_partitions).collect()
        context.account_compute(_FEATURES * 40.0)  # driver-side update

    return AppResult(
        name="svm",
        backend_name=backend.name,
        breakdown=context.breakdown,
        records=count,
    )
