"""TeraSort: range-partitioned sort of 100-byte records (HiBench Sort).

Pipeline: HDFS read -> parse records -> range shuffle -> per-partition
sort -> HDFS write. S/D happens on both sides of the shuffle; compute is
parsing plus the O(n log n) sort; I/O is the dominant byte mover (3 GB in
Table III, the largest input of the suite).
"""

from __future__ import annotations

import math

from repro.jvm.klass import FieldKind
from repro.spark.apps.base import (
    AppResult,
    ensure_klass,
    make_context,
    new_long_array,
    register_backend_classes,
)
from repro.spark.backend import SDBackend
from repro.workloads.datagen import DeterministicRandom

_RECORDS = 2000
_PARTITIONS = 4
_RECORD_BYTES = 100  # 10 B key + 90 B payload, as in TeraGen
_PAYLOAD_LONGS = 11
_PARSE_INSTR = 60_000.0  # per scaled record: full-scale block parse
_SORT_INSTR_PER_CMP = 6_000.0


def run_terasort(
    backend: SDBackend,
    scale: float = 1.0,
    injector=None,
    frame_streams: bool = False,
    retry_policy=None,
) -> AppResult:
    context = make_context(
        backend,
        injector=injector,
        frame_streams=frame_streams,
        retry_policy=retry_policy,
    )
    registry = context.registry
    record_klass = ensure_klass(
        registry,
        "TeraRecord",
        [("key", FieldKind.LONG), ("payload", FieldKind.REFERENCE)],
    )
    registry.array_klass(FieldKind.LONG)
    registry.array_klass(FieldKind.REFERENCE)
    register_backend_classes(backend, registry)

    rng = DeterministicRandom(seed=0x7E7A)
    count = max(_PARTITIONS, int(_RECORDS * scale))
    heap = context.executor_heap

    context.read_input(45e6)  # TeraGen input (Table III: 3072 MB, scaled)
    records = []
    for _ in range(count):
        record = heap.allocate(record_klass)
        record.set("key", rng.next_u64() >> 1)
        record.set("payload", new_long_array(heap, rng, _PAYLOAD_LONGS))
        records.append(record)
    dataset = context.parallelize(records, _PARTITIONS)
    dataset.foreach_compute(_PARSE_INSTR)

    # Range partition on the key's top bits, then sort each partition.
    key_space = 1 << 63
    sorted_ds = dataset.shuffle(
        key_fn=lambda r: int(r.get("key") * _PARTITIONS // key_space),
        num_partitions=_PARTITIONS,
        instructions_per_record=60.0,
    )

    def sort_partition(partition):
        partition.sort(key=lambda r: r.get("key"))
        return partition

    comparisons = max(1.0, math.log2(max(2, count / _PARTITIONS)))
    sorted_ds = sorted_ds.map_partitions(
        sort_partition, instructions_per_record=_SORT_INSTR_PER_CMP * comparisons
    )
    context.write_output(45e6)

    return AppResult(
        name="terasort",
        backend_name=backend.name,
        breakdown=context.breakdown,
        records=count,
    )
