"""Shared plumbing for the Spark applications."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faults.injector import FaultInjector
from repro.jvm.heap import Heap, HeapObject
from repro.jvm.klass import FieldDescriptor, FieldKind, InstanceKlass, KlassRegistry
from repro.spark.backend import SDBackend
from repro.spark.engine import MiniSparkContext
from repro.spark.metrics import TimeBreakdown
from repro.spark.transfer import RetryPolicy
from repro.workloads.datagen import DeterministicRandom


@dataclass
class AppResult:
    """Outcome of one application run."""

    name: str
    backend_name: str
    breakdown: TimeBreakdown
    records: int

    @property
    def total_ns(self) -> float:
        return self.breakdown.total_ns

    @property
    def sd_fraction(self) -> float:
        return self.breakdown.sd_fraction


def make_context(
    backend: SDBackend,
    injector: Optional[FaultInjector] = None,
    frame_streams: bool = False,
    retry_policy: Optional[RetryPolicy] = None,
) -> MiniSparkContext:
    """Context with a fresh registry; apps register their own classes.

    ``injector`` / ``frame_streams`` enable chaos mode: the same injector
    should also be handed to the backend (``CerealBackend(injector=...)``)
    so all layers share one fault schedule and one report.
    """
    context = MiniSparkContext(
        backend,
        injector=injector,
        frame_streams=frame_streams,
        retry_policy=retry_policy,
    )
    return context


def ensure_klass(registry: KlassRegistry, name: str, fields) -> InstanceKlass:
    """Register an instance klass once; idempotent by name."""
    if name in registry:
        klass = registry.by_name(name)
        assert isinstance(klass, InstanceKlass)
        return klass
    klass = InstanceKlass(name, [FieldDescriptor(n, k) for n, k in fields])
    registry.register(klass)
    return klass


def register_backend_classes(backend: SDBackend, registry: KlassRegistry) -> None:
    """Register every klass with backends that require registration."""
    registration = getattr(backend, "accelerator", None)
    if registration is not None:
        for klass in registry:
            if not registration.registration.is_registered(klass):
                registration.register_class(klass)
        return
    serializer = getattr(backend, "serializer", None)
    serializer_registration = getattr(serializer, "registration", None)
    if serializer_registration is not None:
        for klass in registry:
            serializer_registration.register(klass)


def new_double_array(heap: Heap, rng: DeterministicRandom, length: int) -> HeapObject:
    array = heap.new_array(FieldKind.DOUBLE, length)
    for index in range(length):
        array.set_element(index, rng.random() * 2.0 - 1.0)
    return array


def new_long_array(heap: Heap, rng: DeterministicRandom, length: int) -> HeapObject:
    array = heap.new_array(FieldKind.LONG, length)
    for index in range(length):
        array.set_element(index, rng.next_u64() >> 16)
    return array
