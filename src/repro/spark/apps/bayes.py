"""Naive Bayes classification (HiBench Bayes).

A single-pass aggregation workload: read documents, tokenize (the
compute-heavy part), shuffle per-(class, term) counts, and aggregate into
the model. S/D comes from the count shuffle and the model collect; the
tokenization compute and the large text input keep the S/D share moderate
(Figure 2).
"""

from __future__ import annotations

from repro.jvm.klass import FieldKind
from repro.spark.apps.base import (
    AppResult,
    ensure_klass,
    make_context,
    register_backend_classes,
)
from repro.spark.backend import SDBackend
from repro.workloads.datagen import DeterministicRandom

_DOCUMENTS = 700
_PARTITIONS = 4
_TERMS_PER_DOC = 24
_VOCABULARY = 320
_CLASSES = 8
_DOC_BYTES = 1600  # raw text per document
# Tokenization of the full-scale document block behind each scaled doc
# (calibrated against Figure 2: Bayes is compute- and I/O-heavy).
_TOKENIZE_INSTR = 2_000_000.0


def run_bayes(
    backend: SDBackend,
    scale: float = 1.0,
    injector=None,
    frame_streams: bool = False,
    retry_policy=None,
) -> AppResult:
    context = make_context(
        backend,
        injector=injector,
        frame_streams=frame_streams,
        retry_policy=retry_policy,
    )
    registry = context.registry
    count_klass = ensure_klass(
        registry,
        "TermCount",
        [
            ("class_id", FieldKind.INT),
            ("term_id", FieldKind.INT),
            ("count", FieldKind.LONG),
        ],
    )
    registry.array_klass(FieldKind.REFERENCE)
    register_backend_classes(backend, registry)

    rng = DeterministicRandom(seed=0xBA7E)
    documents = max(_PARTITIONS, int(_DOCUMENTS * scale))
    heap = context.executor_heap

    context.read_input(50e6)  # corpus read (Table III: 1126 MB, scaled)
    # Tokenize: each document yields per-term counts (pre-combined locally).
    # Map-side combine: per-document counts are merged locally before any
    # record is materialized, as Spark's aggregator does before the shuffle.
    combined = {}
    for _ in range(documents):
        class_id = rng.randint(0, _CLASSES - 1)
        for _ in range(_TERMS_PER_DOC):
            term = rng.randint(0, _VOCABULARY - 1)
            key = (class_id, term)
            combined[key] = combined.get(key, 0) + 1
    counts = []
    for (class_id, term), count in combined.items():
        record = heap.allocate(count_klass)
        record.set("class_id", class_id)
        record.set("term_id", term)
        record.set("count", count)
        counts.append(record)
    dataset = context.parallelize(counts, _PARTITIONS)
    context.account_compute(_TOKENIZE_INSTR * documents)

    # Shuffle counts by (class, term); aggregate into the model.
    aggregated = dataset.shuffle(
        key_fn=lambda r: r.get("class_id") * _VOCABULARY + r.get("term_id"),
        num_partitions=_PARTITIONS,
        instructions_per_record=50.0,
    )

    def combine(partition):
        merged = {}
        for record in partition:
            key = (record.get("class_id"), record.get("term_id"))
            merged[key] = merged.get(key, 0) + record.get("count")
        out = []
        for (class_id, term_id), total in merged.items():
            record = heap.allocate(count_klass)
            record.set("class_id", class_id)
            record.set("term_id", term_id)
            record.set("count", total)
            out.append(record)
        return out

    model = aggregated.map_partitions(combine, instructions_per_record=35.0)
    model.collect()

    return AppResult(
        name="bayes",
        backend_name=backend.name,
        breakdown=context.breakdown,
        records=len(counts),
    )
