"""Alternating Least Squares matrix factorization (HiBench ALS).

Iteratively alternates between solving user factors and item factors;
each half-iteration shuffles the other side's factor vectors (dense
double arrays) to where the ratings live and solves a small least-squares
system per entity. The factor-vector shuffles make S/D a steady moderate
share of the runtime (Figure 2).
"""

from __future__ import annotations

from repro.jvm.klass import FieldKind
from repro.spark.apps.base import (
    AppResult,
    ensure_klass,
    make_context,
    new_double_array,
    register_backend_classes,
)
from repro.spark.backend import SDBackend
from repro.workloads.datagen import DeterministicRandom

_USERS = 360
_ITEMS = 200
_PARTITIONS = 4
_RANK = 8
_ITERATIONS = 3
# Normal-equation solve per entity: k^2 accumulate + k^3/3 Cholesky.
# Normal-equation solves for the full-scale entity block behind each
# scaled factor row (calibrated against Figure 2).
_SOLVE_INSTR = 1_100_000.0


def run_als(
    backend: SDBackend,
    scale: float = 1.0,
    injector=None,
    frame_streams: bool = False,
    retry_policy=None,
) -> AppResult:
    context = make_context(
        backend,
        injector=injector,
        frame_streams=frame_streams,
        retry_policy=retry_policy,
    )
    registry = context.registry
    factor_klass = ensure_klass(
        registry,
        "FactorRow",
        [("entity_id", FieldKind.INT), ("factors", FieldKind.REFERENCE)],
    )
    registry.array_klass(FieldKind.DOUBLE)
    registry.array_klass(FieldKind.REFERENCE)
    register_backend_classes(backend, registry)

    rng = DeterministicRandom(seed=0xA15)
    users = max(_PARTITIONS, int(_USERS * scale))
    items = max(_PARTITIONS, int(_ITEMS * scale))
    heap = context.executor_heap

    context.read_input(35e6)  # rating triplets (Table III: 1331 MB, scaled)

    def make_rows(count):
        rows = []
        for entity_id in range(count):
            row = heap.allocate(factor_klass)
            row.set("entity_id", entity_id)
            row.set("factors", new_double_array(heap, rng, _RANK))
            rows.append(row)
        return rows

    user_factors = context.parallelize(make_rows(users), _PARTITIONS)
    item_factors = context.parallelize(make_rows(items), _PARTITIONS)

    for _ in range(_ITERATIONS):
        # Solve users: ship item factors to the rating partitions.
        item_factors = item_factors.shuffle(
            key_fn=lambda r: r.get("entity_id"),
            num_partitions=_PARTITIONS,
            instructions_per_record=40.0,
        )
        user_factors.foreach_compute(_SOLVE_INSTR)
        # Solve items: ship user factors back the other way.
        user_factors = user_factors.shuffle(
            key_fn=lambda r: r.get("entity_id"),
            num_partitions=_PARTITIONS,
            instructions_per_record=40.0,
        )
        item_factors.foreach_compute(_SOLVE_INSTR)

    user_factors.collect()
    item_factors.collect()
    return AppResult(
        name="als",
        backend_name=backend.name,
        breakdown=context.breakdown,
        records=users + items,
    )
