"""The six S/D-intensive HiBench applications of paper Table III.

Each application module exposes
``run(backend, scale=1.0, injector=None, frame_streams=False,
retry_policy=None) -> AppResult``. ``scale`` multiplies the record counts
(1.0 = the repository's default scaled-down size; Table III's full inputs
are ~4096x larger). ``injector``/``frame_streams`` enable chaos mode: pass
a :class:`repro.faults.FaultInjector` (and hand the same injector to a
``CerealBackend``) to exercise the resilience layers deterministically.
"""

from repro.spark.apps.base import AppResult
from repro.spark.apps.nweight import run_nweight
from repro.spark.apps.svm import run_svm
from repro.spark.apps.bayes import run_bayes
from repro.spark.apps.logistic import run_logistic_regression
from repro.spark.apps.terasort import run_terasort
from repro.spark.apps.als import run_als

#: name -> runner, in the paper's Figure 2 order.
SPARK_APPS = {
    "nweight": run_nweight,
    "svm": run_svm,
    "bayes": run_bayes,
    "lr": run_logistic_regression,
    "terasort": run_terasort,
    "als": run_als,
}

#: Paper Table III input sizes (MB), for reports.
PAPER_INPUT_MB = {
    "nweight": 156,
    "svm": 1740,
    "bayes": 1126,
    "lr": 1945,
    "terasort": 3072,
    "als": 1331,
}

__all__ = ["AppResult", "SPARK_APPS", "PAPER_INPUT_MB"] + [
    f"run_{name}" for name in ("nweight", "svm", "bayes", "terasort", "als")
] + ["run_logistic_regression"]
