"""Logistic Regression training (HiBench LR).

Structurally like SVM — cached ``MEMORY_ONLY_SER`` training data read once
per iteration — but with the largest input of the ML apps (Table III:
1945 MB), a heavier per-point kernel (sigmoid + full gradient), and fewer
iterations, so S/D is a large-but-not-total share of runtime (Figure 2).
"""

from __future__ import annotations

from repro.jvm.klass import FieldKind
from repro.spark.apps.base import (
    AppResult,
    ensure_klass,
    make_context,
    new_double_array,
    register_backend_classes,
)
from repro.spark.backend import SDBackend
from repro.workloads.datagen import DeterministicRandom

_POINTS = 1400
_PARTITIONS = 4
_FEATURES = 20
_ITERATIONS = 6
# Sigmoid (exp) + dense gradient: substantially heavier than SVM's hinge.
_GRADIENT_INSTR_PER_POINT = 950_000.0


def run_logistic_regression(
    backend: SDBackend,
    scale: float = 1.0,
    injector=None,
    frame_streams: bool = False,
    retry_policy=None,
) -> AppResult:
    context = make_context(
        backend,
        injector=injector,
        frame_streams=frame_streams,
        retry_policy=retry_policy,
    )
    registry = context.registry
    point_klass = ensure_klass(
        registry,
        "LabeledPoint",
        [("label", FieldKind.DOUBLE), ("features", FieldKind.REFERENCE)],
    )
    registry.array_klass(FieldKind.DOUBLE)
    registry.array_klass(FieldKind.REFERENCE)
    register_backend_classes(backend, registry)

    rng = DeterministicRandom(seed=0x10B1)
    count = max(_PARTITIONS, int(_POINTS * scale))
    heap = context.executor_heap

    context.read_input(75e6)  # text input (Table III: 1945 MB, scaled)
    points = []
    for _ in range(count):
        point = heap.allocate(point_klass)
        point.set("label", 1.0 if rng.random() > 0.5 else 0.0)
        point.set("features", new_double_array(heap, rng, _FEATURES))
        points.append(point)
    dataset = context.parallelize(points, _PARTITIONS)
    dataset.foreach_compute(12_000.0)

    cached = dataset.cache_serialized()
    weights = new_double_array(heap, rng, _FEATURES)
    for _ in range(_ITERATIONS):
        context.broadcast(weights, _PARTITIONS)  # current model to executors
        training = cached.read()
        training.foreach_compute(_GRADIENT_INSTR_PER_POINT)
        gradients = [
            new_double_array(heap, rng, _FEATURES)
            for _ in range(training.num_partitions)
        ]
        context.parallelize(gradients, training.num_partitions).collect()
        context.account_compute(_FEATURES * 40.0)

    return AppResult(
        name="lr",
        backend_name=backend.name,
        breakdown=context.breakdown,
        records=count,
    )
