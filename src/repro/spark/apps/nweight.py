"""NWeight: n-hop neighbour weight computation on a graph (HiBench).

A graph-parallel workload: vertices carry adjacency lists of weighted
edges; each iteration shuffles vertex state along edges and combines
weights. The records are reference-rich (vertex -> edge array -> edge
objects), which is exactly where Cereal's reference packing shines
(Figure 16: NWeight has the best compression ratio) and where Java S/D's
type-string metadata bloats the stream (Figure 2: up to 13.9% I/O
overhead from the inflated shuffle data).
"""

from __future__ import annotations

from repro.jvm.klass import FieldKind
from repro.spark.apps.base import (
    AppResult,
    ensure_klass,
    make_context,
    register_backend_classes,
)
from repro.spark.backend import SDBackend
from repro.workloads.datagen import DeterministicRandom

_VERTICES = 280
_PARTITIONS = 4
_EDGES_PER_VERTEX = 12
_HOPS = 2
# Represents the full-scale fan-in: each scaled vertex stands for ~4096
# real vertices of combine work (calibrated against Figure 2).
_COMBINE_INSTR_PER_EDGE = 180_000.0


def run_nweight(
    backend: SDBackend,
    scale: float = 1.0,
    injector=None,
    frame_streams: bool = False,
    retry_policy=None,
) -> AppResult:
    context = make_context(
        backend,
        injector=injector,
        frame_streams=frame_streams,
        retry_policy=retry_policy,
    )
    registry = context.registry
    edge_klass = ensure_klass(
        registry,
        "Edge",
        [("target", FieldKind.INT), ("weight", FieldKind.DOUBLE)],
    )
    vertex_klass = ensure_klass(
        registry,
        "Vertex",
        [
            ("vertex_id", FieldKind.INT),
            ("weight", FieldKind.DOUBLE),
            ("edges", FieldKind.REFERENCE),
        ],
    )
    registry.array_klass(FieldKind.REFERENCE)
    register_backend_classes(backend, registry)

    rng = DeterministicRandom(seed=0x4E1)
    count = max(_PARTITIONS, int(_VERTICES * scale))
    heap = context.executor_heap

    context.read_input(22e6)  # edge-list text (Table III: 156 MB, scaled share)
    vertices = []
    for vertex_id in range(count):
        vertex = heap.allocate(vertex_klass)
        vertex.set("vertex_id", vertex_id)
        vertex.set("weight", 1.0)
        edges = heap.new_array(FieldKind.REFERENCE, _EDGES_PER_VERTEX)
        for slot in range(_EDGES_PER_VERTEX):
            edge = heap.allocate(edge_klass)
            edge.set("target", rng.randint(0, count - 1))
            edge.set("weight", rng.random())
            edges.set_element(slot, edge)
        vertex.set("edges", edges)
        vertices.append(vertex)
    dataset = context.parallelize(vertices, _PARTITIONS)
    dataset.foreach_compute(20_000.0)  # adjacency construction

    for _ in range(_HOPS):
        # Exchange vertex state along edges: shuffle vertices by the
        # partition of their first edge target (message grouping).
        dataset = dataset.shuffle(
            key_fn=lambda v: v.get("edges").get_element(0).get("target"),
            num_partitions=_PARTITIONS,
            instructions_per_record=80.0,
        )
        dataset.foreach_compute(_COMBINE_INSTR_PER_EDGE * _EDGES_PER_VERTEX)

    dataset.collect()
    return AppResult(
        name="nweight",
        backend_name=backend.name,
        breakdown=context.breakdown,
        records=count,
    )
