"""Mini-Spark execution engine.

Supports exactly the dataflow shapes the six HiBench-style applications
need, with faithful S/D call sites (paper Section III lists them):

* ``parallelize`` / ``read_input`` — dataset creation and HDFS-style input
  I/O accounting;
* ``map_partitions`` — narrow transformations with explicit per-record
  compute cost;
* ``shuffle`` — the wide dependency: every (source partition, target
  partition) bucket is wrapped in a reference array and pushed through the
  configured S/D backend, once on the map side (serialize) and once on the
  reduce side (deserialize);
* ``cache`` / ``cache_serialized`` / ``CachedDataset.read`` — Spark's
  cache storage levels, owned by the tiered executor memory manager
  (:mod:`repro.memstore`): deserialized-on-heap reads are free but pin
  graph bytes against the heap budget, serialized-off-heap pays a
  deserialization on *every* read (this is what makes iterative ML apps
  S/D-bound, SVM most of all — paper Figure 2), and spilled entries add
  disk I/O on top;
* ``collect`` — driver-side aggregation (serialize at executors,
  deserialize at the driver).

GC time is modelled as a copying-collector cost per allocated byte whose
rate rises with heap occupancy (:class:`~repro.memstore.model.GcCostModel`
— flat and seed-identical while nothing is pinned on-heap); I/O as
disk-bandwidth transfers. Compute uses a higher IPC than S/D code: user
numeric kernels pipeline well.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.common.errors import ConfigError, ExecutorLostError
from repro.faults.injector import FaultInjector
from repro.formats.base import SerializedStream
from repro.jvm.heap import Heap, HeapObject
from repro.jvm.klass import FieldKind, KlassRegistry
from repro.memstore import (
    TIER_SERIALIZED,
    CacheEntry,
    ExecutorMemoryManager,
    MemstoreConfig,
)
from repro.obs.trace import Tracer, get_tracer
from repro.spark.backend import SDBackend
from repro.spark.metrics import TimeBreakdown
from repro.spark.transfer import (
    ChunkingConfig,
    ChunkTransferStats,
    ResilientTransfer,
    RetryPolicy,
)

_COMPUTE_IPC = 2.5  # user numeric code pipelines better than S/D code
_CLOCK_GHZ = 3.6
_DISK_BANDWIDTH = 500e6  # B/s HDFS-style sequential I/O


class MiniSparkContext:
    """One application run: heaps, backend, and the time ledger."""

    def __init__(
        self,
        backend: SDBackend,
        registry: Optional[KlassRegistry] = None,
        heap_bytes: int = 512 * 1024 * 1024,
        injector: Optional[FaultInjector] = None,
        frame_streams: bool = False,
        retry_policy: Optional[RetryPolicy] = None,
        tracer: Optional[Tracer] = None,
        chunking: Optional[ChunkingConfig] = None,
        memstore_config: Optional[MemstoreConfig] = None,
    ):
        self.backend = backend
        self.registry = registry if registry is not None else KlassRegistry()
        self.executor_heap = Heap(size_bytes=heap_bytes, registry=self.registry)
        self.driver_heap = Heap(size_bytes=heap_bytes // 4, registry=self.registry)
        self.breakdown = TimeBreakdown()
        self._last_alloc_mark = 0
        self.injector = injector
        self.tracer = tracer if tracer is not None else get_tracer()
        self.chunking = chunking
        self.chunk_stats: List[ChunkTransferStats] = []
        # Payload chunks + encode time per pending stream, keyed by id();
        # every chunked-mode stream is stashed at creation and popped at
        # its (single) delivery, so ids cannot be confused across streams.
        self._pending_chunks: Dict[int, tuple] = {}
        self.transfer = ResilientTransfer(
            self.breakdown,
            injector=injector,
            retry=retry_policy,
            frame_streams=frame_streams,
        )
        # The GC budget defaults to the modelled executor heap; an explicit
        # MemstoreConfig decouples the two (e.g. for budget sweeps).
        self.memstore_config = (
            memstore_config
            if memstore_config is not None
            else MemstoreConfig(budget_bytes=heap_bytes)
        )
        self.gc_model = self.memstore_config.build_gc_model()
        self.memstore = ExecutorMemoryManager(
            self.memstore_config,
            self.breakdown,
            gc_model=self.gc_model,
            tracer=self.tracer,
            injector=injector,
            transfer=self.transfer,
        )

    # -- tracing ---------------------------------------------------------------------

    @contextmanager
    def stage(self, name: str, **attrs):
        """A spark-stage span whose clock is the time ledger.

        The ledger (``breakdown.total_ns``) only moves when operations are
        accounted, so the span's simulated bounds are the ledger totals at
        stage entry and exit — nested stages (map side inside a shuffle)
        nest in the trace exactly as the ``with`` blocks nest here.
        """
        tracer = self.tracer
        if not tracer.enabled:
            yield None
            return
        tracer.advance(self.breakdown.total_ns)
        with tracer.span(name, category="spark", track="spark", **attrs) as span:
            try:
                yield span
            finally:
                tracer.advance(self.breakdown.total_ns)

    # -- time accounting -------------------------------------------------------------

    def account_compute(self, instructions: float) -> None:
        self.breakdown.compute_ns += instructions / (_COMPUTE_IPC * _CLOCK_GHZ)

    def account_io(self, nbytes: float) -> None:
        self.breakdown.io_ns += nbytes / _DISK_BANDWIDTH * 1e9

    def _account_gc(self) -> None:
        """Charge GC for heap growth since the last mark.

        The rate is the occupancy-driven curve: bytes pinned on-heap by
        deserialized-tier cache entries raise the cost of *all* other
        allocation. The mark is monotone — it only ever moves forward, so
        no byte of growth is charged twice.
        """
        used = self.executor_heap.used_bytes + self.driver_heap.used_bytes
        grown = used - self._last_alloc_mark
        if grown > 0:
            self.breakdown.gc_ns += self.gc_model.charge_ns(
                grown, self.memstore.on_heap_bytes
            )
            self._last_alloc_mark = used

    def _sync_gc_mark(self) -> None:
        """Advance the GC mark past *functional* allocations without
        charging — used when the model charges (or deliberately exempts)
        the same bytes through the memstore's tier accounting instead."""
        used = self.executor_heap.used_bytes + self.driver_heap.used_bytes
        if used > self._last_alloc_mark:
            self._last_alloc_mark = used

    # -- S/D plumbing -------------------------------------------------------------------

    def _wrap_records(self, records: Sequence[HeapObject], heap: Heap) -> HeapObject:
        """Wrap a record bucket in a reference array so it has one root."""
        array = heap.new_array(FieldKind.REFERENCE, len(records))
        for index, record in enumerate(records):
            array.set_element(index, record)
        return array

    def _unwrap_records(self, root: HeapObject) -> List[HeapObject]:
        return [
            root.get_element(index)
            for index in range(root.length)
            if root.get_element(index) is not None
        ]

    def serialize_bucket(
        self, records: Sequence[HeapObject], site: str
    ) -> SerializedStream:
        root = self._wrap_records(records, self.executor_heap)
        if self.chunking is not None and hasattr(
            self.backend, "serialize_chunked"
        ):
            stream, op, chunks = self.backend.serialize_chunked(
                root, site, self.chunking.chunk_bytes
            )
            if site != "cache":  # cached streams are never delivered
                self._pending_chunks[id(stream)] = (chunks, op.time_ns)
        else:
            stream, op = self.backend.serialize(root, site)
            if self.chunking is not None and site != "cache":
                # Backend has no cursor path (e.g. the accelerator): the
                # delivery still streams, splitting the finished bytes.
                self._pending_chunks[id(stream)] = (None, op.time_ns)
        self.breakdown.add_operation(op)
        self._account_gc()
        return stream

    def deliver_stream(
        self, stream: SerializedStream, site: str
    ) -> SerializedStream:
        """Route a bucket through chunked or whole-stream delivery."""
        pending = self._pending_chunks.pop(id(stream), None)
        if self.chunking is None or pending is None:
            return self.transfer.deliver(stream, site)
        chunks, encode_ns = pending
        delivered, stats = self.transfer.deliver_chunked(
            stream,
            site,
            chunks=chunks,
            encode_ns=encode_ns,
            config=self.chunking,
        )
        self.chunk_stats.append(stats)
        return delivered

    def deserialize_bucket(
        self, stream: SerializedStream, site: str, heap: Optional[Heap] = None
    ) -> List[HeapObject]:
        heap = heap or self.executor_heap
        if self.injector is not None and self.injector.heap_exhausted(site):
            # Destination heap exhausted: run an emergency collection big
            # enough to evacuate the incoming graph, then proceed.
            pause_bytes = max(stream.graph_bytes, stream.size_bytes)
            self.breakdown.gc_ns += pause_bytes * self.gc_model.ns_per_byte(
                self.memstore.on_heap_bytes
            )
            self.injector.report.record_injected("heap")
            self.injector.report.record_detected("heap")
            self.injector.report.record_recovered("heap")
        root, op = self.backend.deserialize(stream, heap, site)
        self.breakdown.add_operation(op)
        self._account_gc()
        return self._unwrap_records(root)

    # -- dataset creation ------------------------------------------------------------------

    def read_input(self, nbytes: float) -> None:
        """HDFS input read (pure I/O; record parsing is app compute)."""
        self.account_io(nbytes)

    def write_output(self, nbytes: float) -> None:
        self.account_io(nbytes)

    def broadcast(self, root: HeapObject, num_partitions: int) -> List[HeapObject]:
        """Driver -> executors broadcast (e.g. the model weights each
        iteration): serialize once at the driver, deserialize once per
        executor partition. Returns the per-partition replicas."""
        with self.stage("spark.broadcast", partitions=num_partitions):
            stream, op = self.backend.serialize(root, "broadcast")
            self.breakdown.add_operation(op)
            replicas = []
            for _ in range(num_partitions):
                if self.chunking is not None:
                    delivered, stats = self.transfer.deliver_chunked(
                        stream,
                        "broadcast",
                        encode_ns=op.time_ns,
                        config=self.chunking,
                    )
                    self.chunk_stats.append(stats)
                else:
                    delivered = self.transfer.deliver(stream, "broadcast")
                replica, read_op = self.backend.deserialize(
                    delivered, self.executor_heap, "broadcast"
                )
                self.breakdown.add_operation(read_op)
                replicas.append(replica)
            self._account_gc()
        return replicas

    def parallelize(
        self, records: Sequence[HeapObject], num_partitions: int
    ) -> "PartitionedDataset":
        if num_partitions <= 0:
            raise ConfigError("num_partitions must be positive")
        partitions: List[List[HeapObject]] = [[] for _ in range(num_partitions)]
        for index, record in enumerate(records):
            partitions[index % num_partitions].append(record)
        self._account_gc()
        return PartitionedDataset(self, partitions)


@dataclass
class CachedDataset:
    """A cached RDD: one memstore entry per partition.

    The functional serialize/deserialize runs once at cache time; every
    ``read()`` goes through the memory manager, which charges whatever the
    entry's *current* tier costs (free for deserialized-on-heap, a fresh
    deserialize plus rebuild GC for serialized, disk I/O on top for
    spilled) while reusing the materialized records, keeping the Python
    run time linear. Tiers can shift between reads as later admissions
    evict under pressure.
    """

    context: MiniSparkContext
    entries: List[CacheEntry]

    @property
    def streams(self) -> List[SerializedStream]:
        """The compact streams backing each partition (any tier)."""
        return [entry.stream for entry in self.entries]

    def read(self) -> "PartitionedDataset":
        partitions = self.context.memstore.read_cached(self.entries)
        return PartitionedDataset(self.context, partitions)


class PartitionedDataset:
    """An RDD-alike: a list of partitions of heap objects."""

    def __init__(self, context: MiniSparkContext, partitions: List[List[HeapObject]]):
        self.context = context
        self.partitions = partitions

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    @property
    def record_count(self) -> int:
        return sum(len(p) for p in self.partitions)

    # -- narrow ---------------------------------------------------------------------------

    def map_partitions(
        self,
        fn: Callable[[List[HeapObject]], List[HeapObject]],
        instructions_per_record: float = 0.0,
    ) -> "PartitionedDataset":
        out = []
        for partition in self.partitions:
            out.append(fn(partition))
            self.context.account_compute(instructions_per_record * len(partition))
        self.context._account_gc()
        return PartitionedDataset(self.context, out)

    def foreach_compute(self, instructions_per_record: float) -> None:
        """Pure compute pass over every record (no new dataset)."""
        self.context.account_compute(instructions_per_record * self.record_count)

    # -- wide ------------------------------------------------------------------------------

    def shuffle(
        self,
        key_fn: Callable[[HeapObject], int],
        num_partitions: Optional[int] = None,
        instructions_per_record: float = 40.0,
    ) -> "PartitionedDataset":
        """Hash-shuffle: serialize map-side buckets, deserialize reduce-side.

        When the fault injector declares a map-side executor lost, the
        bucket it produced is gone; the records that produced it are still
        known (the lineage), so the map task re-runs for that bucket —
        re-grouping compute plus a fresh serialize — exactly Spark's
        lineage-based stage recovery, bounded by the retry policy.
        """
        num_partitions = num_partitions or self.num_partitions
        with self.context.stage(
            "spark.shuffle", partitions=num_partitions, records=self.record_count
        ):
            buckets: Dict[int, List[SerializedStream]] = {
                target: [] for target in range(num_partitions)
            }
            with self.context.stage("shuffle.map"):
                for partition in self.partitions:
                    grouped: Dict[int, List[HeapObject]] = {}
                    for record in partition:
                        target = key_fn(record) % num_partitions
                        grouped.setdefault(target, []).append(record)
                    self.context.account_compute(
                        instructions_per_record * len(partition)
                    )
                    for target, records in grouped.items():
                        stream = self.context.serialize_bucket(
                            records, site="shuffle"
                        )
                        stream = self._recover_lost_bucket(
                            stream, records, instructions_per_record
                        )
                        buckets[target].append(stream)

            out: List[List[HeapObject]] = []
            with self.context.stage("shuffle.reduce"):
                for target in range(num_partitions):
                    merged: List[HeapObject] = []
                    for stream in buckets[target]:
                        delivered = self.context.deliver_stream(
                            stream, "shuffle"
                        )
                        merged.extend(
                            self.context.deserialize_bucket(
                                delivered, site="shuffle"
                            )
                        )
                    out.append(merged)
        return PartitionedDataset(self.context, out)

    def _recover_lost_bucket(
        self,
        stream: SerializedStream,
        records: List[HeapObject],
        instructions_per_record: float,
    ) -> SerializedStream:
        """Re-execute the map task while the injector keeps killing it."""
        injector = self.context.injector
        if injector is None:
            return stream
        attempts = 0
        while injector.executor_lost():
            injector.report.record_injected("executor")
            injector.report.record_detected("executor")
            attempts += 1
            if attempts > self.context.transfer.retry.max_retries:
                raise ExecutorLostError(
                    f"map executor lost {attempts} consecutive times; "
                    f"lineage re-execution budget exhausted"
                )
            # Lineage re-execution: re-run the grouping compute and
            # re-serialize the bucket from its source records.
            self.context.account_compute(
                instructions_per_record * len(records)
            )
            stream = self.context.serialize_bucket(records, site="shuffle")
            injector.report.record_recovered("executor")
        return stream

    # -- caching -------------------------------------------------------------------------------

    def cache(self, tier: str = TIER_SERIALIZED) -> CachedDataset:
        """Cache every partition in the executor memory manager.

        The serialize and deserialize both run once, functionally, to
        capture the entry's cost templates and materialized records; what
        the *model* charges is decided by the manager from the tier each
        partition lands in (``deserialized`` / ``serialized`` / ``spilled``
        / ``auto`` — see :mod:`repro.memstore.tiers`). Admissions may evict
        earlier entries: caching is itself a source of memory pressure.
        """
        context = self.context
        entries = []
        with context.stage(
            "spark.cache", partitions=self.num_partitions, tier=tier
        ):
            for index, partition in enumerate(self.partitions):
                root = context._wrap_records(partition, context.executor_heap)
                stream, serialize_op = context.backend.serialize(root, "cache")
                read_root, read_op = context.backend.deserialize(
                    stream, context.executor_heap, "cache"
                )
                records = context._unwrap_records(read_root)
                # The functional round-trip's heap growth is tier
                # bookkeeping, not nursery churn: the manager charges (or
                # deliberately exempts) those bytes per tier semantics.
                context._sync_gc_mark()
                entries.append(
                    context.memstore.admit(
                        index,
                        stream,
                        records,
                        serialize_op,
                        read_op,
                        tier=tier,
                    )
                )
        return CachedDataset(context=context, entries=entries)

    def cache_serialized(self) -> CachedDataset:
        """Spark's MEMORY_ONLY_SER: the serialized-off-heap tier."""
        return self.cache(tier=TIER_SERIALIZED)

    # -- actions ----------------------------------------------------------------------------------

    def collect(self) -> List[HeapObject]:
        """Ship every partition to the driver through the backend."""
        results: List[HeapObject] = []
        with self.context.stage("spark.collect", partitions=self.num_partitions):
            for partition in self.partitions:
                if not partition:
                    continue
                stream = self.context.serialize_bucket(partition, site="collect")
                delivered = self.context.deliver_stream(stream, "collect")
                results.extend(
                    self.context.deserialize_bucket(
                        delivered, site="collect", heap=self.context.driver_heap
                    )
                )
        return results
