"""Resilient block transfers for shuffle / broadcast / collect.

Spark's block-transfer service re-fetches a block when the fetch fails or
the bytes arrive damaged. :class:`ResilientTransfer` models exactly that:
each delivery runs the fault injector once per attempt, verifies the
checksummed frame (when framing is enabled), and on a detected failure
re-fetches with exponential backoff plus deterministic jitter, charging the
whole recovery cost to the :attr:`TimeBreakdown.retry_ns` bucket.

The happy path is strictly zero-cost: with no injector and framing
disabled, :meth:`ResilientTransfer.deliver` returns its argument untouched,
so fault-free runs reproduce the seed model's times bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.errors import CorruptionError, TransientError
from repro.faults.injector import (
    FAULT_CORRUPT,
    FAULT_DROP,
    FAULT_LATENCY,
    FaultInjector,
)
from repro.formats.base import SerializedStream
from repro.obs.trace import get_tracer
from repro.spark.metrics import TimeBreakdown

#: Executor-to-executor re-fetch rate (~1.25 GB/s network); only charged
#: for retries — the first copy's wire cost lives inside the per-operation
#: framework stream path.
_WIRE_NS_PER_BYTE = 0.8


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and jitter."""

    max_retries: int = 8
    base_backoff_ns: float = 200_000.0  # 0.2 ms first wait
    multiplier: float = 2.0
    max_backoff_ns: float = 50_000_000.0  # 50 ms ceiling
    jitter: float = 0.2  # +/- 20% around the nominal backoff

    def backoff_ns(self, attempt: int, jitter_draw: float) -> float:
        """Backoff before retry ``attempt`` (0-based), jittered."""
        nominal = min(
            self.base_backoff_ns * self.multiplier**attempt,
            self.max_backoff_ns,
        )
        return nominal * (1.0 + self.jitter * (2.0 * jitter_draw - 1.0))


class ResilientTransfer:
    """Delivers serialized buckets across the (simulated) network."""

    def __init__(
        self,
        breakdown: TimeBreakdown,
        injector: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
        frame_streams: bool = False,
        wire_ns_per_byte: float = _WIRE_NS_PER_BYTE,
    ):
        self.breakdown = breakdown
        self.injector = injector
        self.retry = retry if retry is not None else RetryPolicy()
        self.frame_streams = frame_streams
        self.wire_ns_per_byte = wire_ns_per_byte

    # -- one attempt -------------------------------------------------------------------

    def _attempt(
        self, wire: SerializedStream, site: str
    ) -> Tuple[Optional[SerializedStream], Optional[str]]:
        """Simulate one wire crossing: (received stream or None, fault kind)."""
        if self.injector is None:
            return wire, None
        fault = self.injector.transfer_fault(site)
        if fault is None:
            return wire, None
        self.injector.report.record_injected("transfer")
        if fault == FAULT_DROP:
            return None, fault
        if fault == FAULT_CORRUPT:
            damaged = SerializedStream(
                format_name=wire.format_name,
                data=self.injector.corrupt_bytes(wire.data, site),
                sections=dict(wire.sections),
                object_count=wire.object_count,
                graph_bytes=wire.graph_bytes,
            )
            return damaged, fault
        return wire, fault  # latency spike: intact but late

    # -- delivery with bounded retries ------------------------------------------------

    def deliver(self, stream: SerializedStream, site: str) -> SerializedStream:
        """Move ``stream`` across the wire; returns a verified, bare stream.

        Raises :class:`TransientError` when ``max_retries`` consecutive
        attempts all fail — with per-attempt fault probability ``p`` that
        needs ``p^(max_retries+1)``, negligible at realistic rates.
        """
        if self.injector is None and not self.frame_streams:
            return stream  # happy path: zero cost, zero copies
        wire = stream.framed() if self.frame_streams else stream

        failures = 0
        while True:
            received, fault = self._attempt(wire, site)
            if fault == FAULT_LATENCY:
                # Intact but late: absorb the spike, nothing to re-fetch.
                self.breakdown.retry_ns += self.injector.policy.latency_spike_ns
                self.injector.report.record_detected("transfer")
                self.injector.report.record_recovered("transfer")
            delivered = self._verify(received, site)
            if delivered is not None:
                if failures and self.injector is not None:
                    self.injector.report.record_recovered("transfer", failures)
                return delivered
            # Detected failure (drop, or corruption caught by the frame).
            if self.injector is not None:
                self.injector.report.record_detected("transfer")
            failures += 1
            if failures > self.retry.max_retries:
                raise TransientError(
                    f"{site} transfer failed {failures} consecutive times "
                    f"(last fault: {fault}); retries exhausted"
                )
            jitter_draw = (
                self.injector.jitter(site) if self.injector is not None else 0.5
            )
            self.breakdown.retry_ns += self.retry.backoff_ns(
                failures - 1, jitter_draw
            )
            self.breakdown.retry_ns += wire.size_bytes * self.wire_ns_per_byte
            # Mark the re-fetch on the trace at the ledger time that now
            # includes the backoff + wire cost just charged.
            get_tracer().instant(
                "transfer.retry",
                ts_ns=self.breakdown.total_ns,
                category="retry",
                track="spark",
                site=site,
                attempt=failures,
                fault=fault,
            )

    def _verify(
        self, received: Optional[SerializedStream], site: str
    ) -> Optional[SerializedStream]:
        """Validate a received stream; None signals a detected failure."""
        if received is None:
            return None  # dropped: always detectable (the fetch timed out)
        if not self.frame_streams:
            # Legacy unframed contract: corruption flows through to the
            # decoder, which must fail safely (or yield a valid graph).
            return received
        try:
            return received.unframed()
        except CorruptionError:
            return None
