"""Resilient block transfers for shuffle / broadcast / collect.

Spark's block-transfer service re-fetches a block when the fetch fails or
the bytes arrive damaged. :class:`ResilientTransfer` models exactly that:
each delivery runs the fault injector once per attempt, verifies the
checksummed frame (when framing is enabled), and on a detected failure
re-fetches with exponential backoff plus deterministic jitter, charging the
whole recovery cost to the :attr:`TimeBreakdown.retry_ns` bucket.

The happy path is strictly zero-cost: with no injector and framing
disabled, :meth:`ResilientTransfer.deliver` returns its argument untouched,
so fault-free runs reproduce the seed model's times bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.errors import ConfigError, CorruptionError, TransientError
from repro.faults.injector import (
    FAULT_CORRUPT,
    FAULT_DROP,
    FAULT_LATENCY,
    FaultInjector,
)
from repro.formats.base import SerializedStream
from repro.obs.trace import get_tracer
from repro.spark.metrics import TimeBreakdown

#: Executor-to-executor re-fetch rate (~1.25 GB/s network); only charged
#: for retries — the first copy's wire cost lives inside the per-operation
#: framework stream path.
_WIRE_NS_PER_BYTE = 0.8

#: Re-fetch rate for the ``spill`` site: a spilled cache block is re-read
#: from local disk (500 MB/s sequential), not across the network.
_SPILL_REFETCH_NS_PER_BYTE = 2.0


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and jitter."""

    max_retries: int = 8
    base_backoff_ns: float = 200_000.0  # 0.2 ms first wait
    multiplier: float = 2.0
    max_backoff_ns: float = 50_000_000.0  # 50 ms ceiling
    jitter: float = 0.2  # +/- 20% around the nominal backoff

    def backoff_ns(self, attempt: int, jitter_draw: float) -> float:
        """Backoff before retry ``attempt`` (0-based), jittered."""
        nominal = min(
            self.base_backoff_ns * self.multiplier**attempt,
            self.max_backoff_ns,
        )
        return nominal * (1.0 + self.jitter * (2.0 * jitter_draw - 1.0))


@dataclass(frozen=True)
class ChunkingConfig:
    """How a bucket is cut up for pipelined (streamed) delivery.

    ``max_inflight_chunks`` is the arena budget: chunk ``k`` cannot start
    encoding until chunk ``k - max_inflight_chunks`` has cleared the wire
    and returned its arena — the transfer-side expression of the bounded
    pool's backpressure.
    """

    chunk_bytes: int = 64 * 1024
    max_inflight_chunks: int = 4
    trace_chunks: bool = True

    def __post_init__(self):
        if self.chunk_bytes <= 0:
            raise ConfigError(
                f"chunk_bytes must be positive, got {self.chunk_bytes}"
            )
        if self.max_inflight_chunks < 1:
            raise ConfigError(
                f"max_inflight_chunks must be >= 1, "
                f"got {self.max_inflight_chunks}"
            )


@dataclass
class ChunkTransferStats:
    """Timeline of one chunked delivery (model bookkeeping, not charged).

    ``first_byte_ns`` / ``pipelined_ns`` come from the overlap model:
    chunk ``k`` finishes encoding at ``encode_ns * cum_bytes_k / total``
    and crosses the wire as soon as the link and an arena are free. The
    ``whole_*`` twins are the same payload sent the legacy way — encode
    everything, then ship — so ``ttfb_speedup`` is the headline win.
    """

    site: str
    chunks: int = 0
    payload_bytes: int = 0
    framed_bytes: int = 0
    retries: int = 0
    retried_chunks: int = 0
    first_byte_ns: float = 0.0
    pipelined_ns: float = 0.0
    whole_first_byte_ns: float = 0.0
    whole_ns: float = 0.0
    #: Per chunk: (seq, encode-ready ns, wire-done ns), model-relative.
    chunk_timeline: List[Tuple[int, float, float]] = field(
        default_factory=list
    )

    @property
    def ttfb_speedup(self) -> float:
        if self.first_byte_ns <= 0:
            return 0.0
        return self.whole_first_byte_ns / self.first_byte_ns

    @property
    def overlap_saved_ns(self) -> float:
        return self.whole_ns - self.pipelined_ns


class ResilientTransfer:
    """Delivers serialized buckets across the (simulated) network."""

    def __init__(
        self,
        breakdown: TimeBreakdown,
        injector: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
        frame_streams: bool = False,
        wire_ns_per_byte: float = _WIRE_NS_PER_BYTE,
    ):
        self.breakdown = breakdown
        self.injector = injector
        self.retry = retry if retry is not None else RetryPolicy()
        self.frame_streams = frame_streams
        self.wire_ns_per_byte = wire_ns_per_byte

    def _refetch_rate(self, site: str) -> float:
        """ns/B charged per re-fetch: local-disk re-read for spill blocks,
        the network wire rate everywhere else."""
        if site == "spill":
            return _SPILL_REFETCH_NS_PER_BYTE
        return self.wire_ns_per_byte

    # -- one attempt -------------------------------------------------------------------

    def _attempt(
        self, wire: SerializedStream, site: str
    ) -> Tuple[Optional[SerializedStream], Optional[str]]:
        """Simulate one wire crossing: (received stream or None, fault kind)."""
        if self.injector is None:
            return wire, None
        fault = self.injector.transfer_fault(site)
        if fault is None:
            return wire, None
        self.injector.report.record_injected("transfer")
        if fault == FAULT_DROP:
            return None, fault
        if fault == FAULT_CORRUPT:
            damaged = SerializedStream(
                format_name=wire.format_name,
                data=self.injector.corrupt_bytes(wire.data, site),
                sections=dict(wire.sections),
                object_count=wire.object_count,
                graph_bytes=wire.graph_bytes,
            )
            return damaged, fault
        return wire, fault  # latency spike: intact but late

    # -- delivery with bounded retries ------------------------------------------------

    def deliver(self, stream: SerializedStream, site: str) -> SerializedStream:
        """Move ``stream`` across the wire; returns a verified, bare stream.

        Raises :class:`TransientError` when ``max_retries`` consecutive
        attempts all fail — with per-attempt fault probability ``p`` that
        needs ``p^(max_retries+1)``, negligible at realistic rates.
        """
        if self.injector is None and not self.frame_streams:
            return stream  # happy path: zero cost, zero copies
        wire = stream.framed() if self.frame_streams else stream

        failures = 0
        while True:
            received, fault = self._attempt(wire, site)
            if fault == FAULT_LATENCY:
                # Intact but late: absorb the spike, nothing to re-fetch.
                self.breakdown.retry_ns += self.injector.policy.latency_spike_ns
                self.injector.report.record_detected("transfer")
                self.injector.report.record_recovered("transfer")
            delivered = self._verify(received, site)
            if delivered is not None:
                if failures and self.injector is not None:
                    self.injector.report.record_recovered("transfer", failures)
                return delivered
            # Detected failure (drop, or corruption caught by the frame).
            if self.injector is not None:
                self.injector.report.record_detected("transfer")
            failures += 1
            if failures > self.retry.max_retries:
                raise TransientError(
                    f"{site} transfer failed {failures} consecutive times "
                    f"(last fault: {fault}); retries exhausted"
                )
            jitter_draw = (
                self.injector.jitter(site) if self.injector is not None else 0.5
            )
            self.breakdown.retry_ns += self.retry.backoff_ns(
                failures - 1, jitter_draw
            )
            self.breakdown.retry_ns += wire.size_bytes * self._refetch_rate(site)
            # Mark the re-fetch on the trace at the ledger time that now
            # includes the backoff + wire cost just charged.
            get_tracer().instant(
                "transfer.retry",
                ts_ns=self.breakdown.total_ns,
                category="retry",
                track="spark",
                site=site,
                attempt=failures,
                fault=fault,
            )

    def _verify(
        self, received: Optional[SerializedStream], site: str
    ) -> Optional[SerializedStream]:
        """Validate a received stream; None signals a detected failure."""
        if received is None:
            return None  # dropped: always detectable (the fetch timed out)
        if not self.frame_streams:
            # Legacy unframed contract: corruption flows through to the
            # decoder, which must fail safely (or yield a valid graph).
            return received
        try:
            return received.unframed()
        except CorruptionError:
            return None

    # -- chunked (pipelined) delivery --------------------------------------------------

    def _attempt_chunk(
        self, framed: bytes, site: str
    ) -> Tuple[Optional[bytes], Optional[str]]:
        """One wire crossing of a single framed chunk."""
        if self.injector is None:
            return framed, None
        fault = self.injector.transfer_fault(site)
        if fault is None:
            return framed, None
        self.injector.report.record_injected("transfer")
        if fault == FAULT_DROP:
            return None, fault
        if fault == FAULT_CORRUPT:
            return self.injector.corrupt_bytes(framed, site), fault
        return framed, fault  # latency spike: intact but late

    def deliver_chunked(
        self,
        stream: SerializedStream,
        site: str,
        chunks: Optional[List[bytes]] = None,
        encode_ns: float = 0.0,
        config: Optional[ChunkingConfig] = None,
        parent_span=None,
    ) -> Tuple[SerializedStream, ChunkTransferStats]:
        """Ship ``stream`` as a sequence of CRC-framed chunks.

        ``chunks`` are the unframed payload slices (normally straight from
        a drained :class:`~repro.formats.plans.EncodeCursor`); when ``None``
        the stream's bytes are split at ``config.chunk_bytes`` — identical
        on the wire, since chunk concatenation is byte-identical to the
        single-shot encode. Every chunk is individually framed, injected,
        and CRC-verified on arrival, so a damaged chunk is re-fetched
        *alone*: the retry charge is one chunk's backoff + wire time, not
        the whole bucket's. Reassembly runs through
        :class:`~repro.formats.chunked.ChunkAssembler` (strict sequence
        order, incremental stream-byte budget).

        ``encode_ns`` is the bucket's modelled serialize time; it drives
        the overlap model in the returned :class:`ChunkTransferStats`.
        Like :meth:`deliver`, only recovery costs touch the ledger — the
        pipelined timeline is reported, not double-charged.
        """
        from repro.formats.chunked import ChunkAssembler
        from repro.formats.streams import CHUNK_HEADER_BYTES, frame_chunk

        config = config if config is not None else ChunkingConfig()
        if chunks is None:
            data = stream.data
            step = config.chunk_bytes
            chunks = [
                bytes(data[offset : offset + step])
                for offset in range(0, len(data), step)
            ] or [b""]

        stats = ChunkTransferStats(site=site, chunks=len(chunks))
        assembler = ChunkAssembler()
        tracer = get_tracer()
        base_ns = self.breakdown.total_ns
        total_payload = sum(len(chunk) for chunk in chunks) or 1
        wire_done: List[float] = []
        cum_bytes = 0
        last_seq = len(chunks) - 1

        for seq, payload in enumerate(chunks):
            cum_bytes += len(payload)
            framed = frame_chunk(seq, payload, last=(seq == last_seq))
            stats.payload_bytes += len(payload)
            stats.framed_bytes += len(framed)
            enc_ready = encode_ns * (cum_bytes / total_payload)
            # Arena backpressure: with N arenas, chunk k waits for chunk
            # k-N to leave the wire before its arena frees up.
            gate = (
                wire_done[seq - config.max_inflight_chunks]
                if seq >= config.max_inflight_chunks
                else 0.0
            )
            link_free = wire_done[-1] if wire_done else 0.0
            start_ns = max(enc_ready, link_free, gate)
            chunk_retry_ns = 0.0

            failures = 0
            while True:
                received, fault = self._attempt_chunk(framed, site)
                if fault == FAULT_LATENCY:
                    spike = self.injector.policy.latency_spike_ns
                    self.breakdown.retry_ns += spike
                    chunk_retry_ns += spike
                    self.injector.report.record_detected("transfer")
                    self.injector.report.record_recovered("transfer")
                verified = False
                if received is not None:
                    try:
                        assembler.push(received)
                        verified = True
                    except CorruptionError:
                        verified = False
                if verified:
                    if failures:
                        stats.retried_chunks += 1
                        if self.injector is not None:
                            self.injector.report.record_recovered(
                                "transfer", failures
                            )
                    break
                # Detected failure: drop, or chunk-CRC mismatch.
                if self.injector is not None:
                    self.injector.report.record_detected("transfer")
                failures += 1
                stats.retries += 1
                if failures > self.retry.max_retries:
                    raise TransientError(
                        f"{site} chunk {seq} failed {failures} consecutive "
                        f"times (last fault: {fault}); retries exhausted"
                    )
                jitter_draw = (
                    self.injector.jitter(site)
                    if self.injector is not None
                    else 0.5
                )
                cost = self.retry.backoff_ns(failures - 1, jitter_draw)
                cost += len(framed) * self.wire_ns_per_byte
                self.breakdown.retry_ns += cost
                chunk_retry_ns += cost
                tracer.instant(
                    "transfer.retry",
                    ts_ns=self.breakdown.total_ns,
                    category="retry",
                    track="spark",
                    site=site,
                    attempt=failures,
                    fault=fault,
                    chunk=seq,
                )

            done_ns = (
                start_ns
                + len(framed) * self.wire_ns_per_byte
                + chunk_retry_ns
            )
            wire_done.append(done_ns)
            stats.chunk_timeline.append((seq, enc_ready, done_ns))
            if config.trace_chunks:
                tracer.record_span(
                    "transfer.chunk",
                    base_ns + start_ns,
                    base_ns + done_ns,
                    category="transfer",
                    track="spark",
                    parent=parent_span,
                    site=site,
                    chunk=seq,
                    bytes=len(payload),
                )

        stats.first_byte_ns = wire_done[0]
        stats.pipelined_ns = wire_done[-1]
        first_wire = (
            (len(chunks[0]) + CHUNK_HEADER_BYTES) * self.wire_ns_per_byte
        )
        stats.whole_first_byte_ns = encode_ns + first_wire
        stats.whole_ns = encode_ns + stats.framed_bytes * self.wire_ns_per_byte

        from repro.obs.metrics import get_registry

        registry = get_registry()
        registry.counter("transfer.chunks", site=site).inc(stats.chunks)
        if stats.retries:
            registry.counter("transfer.chunk_retries", site=site).inc(
                stats.retries
            )

        delivered = SerializedStream(
            format_name=stream.format_name,
            data=assembler.payload(),
            sections=dict(stream.sections),
            object_count=stream.object_count,
            graph_bytes=stream.graph_bytes,
        )
        return delivered, stats
