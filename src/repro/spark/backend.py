"""S/D backends pluggable into mini-Spark.

Spark's measured "serialization time" is more than the serializer kernel:
the bytes also flow through stream framing, buffer management, and the
block-transfer path. That framework component is serializer-independent —
it is why Kryo's huge microbenchmark advantage shrinks to ~1.67x inside
Spark (paper Figures 2/13). We model it as a bytes-proportional cost:

* software backends push the stream through the JVM's buffered stream
  stack (~1 GB/s effective);
* the Cereal backend DMA-writes the stream directly from the accelerator,
  bypassing most of that path (~4 GB/s effective), per the paper's
  integration where the ObjectOutputStream is backed by the device.

Both constants are calibration inputs documented in EXPERIMENTS.md.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

from repro.cereal.accelerator import CerealAccelerator
from repro.common.config import SystemConfig
from repro.common.errors import CapacityError
from repro.cpu.harness import SoftwarePlatform
from repro.faults.injector import FaultInjector
from repro.formats.base import SerializedStream, Serializer
from repro.jvm.heap import Heap, HeapObject
from repro.spark.metrics import SDOperation

# Effective per-byte cost of the framework stream path at this repository's
# ~1/4096 workload scale: stream framing per record, LZ4 block compression,
# BlockManager buffer copies. Small scaled streams amortize none of the
# per-record overhead, so the effective rate is far below raw memcpy speed.
# Cereal's integration DMA-writes the device output into the block store,
# bypassing the JVM buffer churn (calibrated against Figures 13/14).
_SOFTWARE_STREAM_NS_PER_BYTE = 200.0
_CEREAL_STREAM_NS_PER_BYTE = 18.0


class SDBackend(abc.ABC):
    """Serialize/deserialize service used by shuffles, caches, collects."""

    name: str = "abstract"

    @abc.abstractmethod
    def serialize(self, root: HeapObject, site: str) -> Tuple[SerializedStream, SDOperation]:
        """Serialize; returns the stream and the accounted operation."""

    @abc.abstractmethod
    def deserialize(
        self, stream: SerializedStream, heap: Heap, site: str
    ) -> Tuple[HeapObject, SDOperation]:
        """Deserialize onto ``heap``; returns the root and the operation."""


class SoftwareBackend(SDBackend):
    """A software serializer timed by the CPU cost model."""

    def __init__(
        self,
        serializer: Serializer,
        system: Optional[SystemConfig] = None,
        stream_ns_per_byte: float = _SOFTWARE_STREAM_NS_PER_BYTE,
    ):
        self.serializer = serializer
        self.platform = SoftwarePlatform(system)
        self.stream_ns_per_byte = stream_ns_per_byte
        self.name = serializer.name

    def _framework_ns(self, nbytes: int) -> float:
        return nbytes * self.stream_ns_per_byte

    def serialize(self, root: HeapObject, site: str):
        result, run = self.platform.run_serialize(self.serializer, root)
        time_ns = run.timing.time_ns + self._framework_ns(result.stream.size_bytes)
        op = SDOperation(
            kind="serialize",
            site=site,
            time_ns=time_ns,
            stream_bytes=result.stream.size_bytes,
            graph_bytes=result.stream.graph_bytes,
            objects=result.stream.object_count,
            dram_bytes=run.timing.dram_bytes,
            kernel_time_ns=run.timing.time_ns,
        )
        return result.stream, op

    def serialize_chunked(
        self, root: HeapObject, site: str, chunk_bytes: int, pool=None
    ):
        """Serialize through the resumable chunked encoder.

        Returns ``(stream, op, chunks)``; ``chunks`` are the payload
        slices in emission order, ready for
        :meth:`~repro.spark.transfer.ResilientTransfer.deliver_chunked`.
        The operation's modelled time is identical to :meth:`serialize`
        (same work profile, same trace) — falling back to the whole-stream
        path (``chunks=None``) when the serializer has no chunked walk.
        """
        from repro.common.errors import FormatError

        try:
            result, run, chunks = self.platform.run_serialize_chunked(
                self.serializer, root, chunk_bytes, pool=pool
            )
        except FormatError:
            stream, op = self.serialize(root, site)
            return stream, op, None
        time_ns = run.timing.time_ns + self._framework_ns(result.stream.size_bytes)
        op = SDOperation(
            kind="serialize",
            site=site,
            time_ns=time_ns,
            stream_bytes=result.stream.size_bytes,
            graph_bytes=result.stream.graph_bytes,
            objects=result.stream.object_count,
            dram_bytes=run.timing.dram_bytes,
            kernel_time_ns=run.timing.time_ns,
        )
        return result.stream, op, chunks

    def deserialize(self, stream: SerializedStream, heap: Heap, site: str):
        if stream.is_framed:
            stream = stream.unframed()  # verify checksums before decoding
        result, run = self.platform.run_deserialize(self.serializer, stream, heap)
        time_ns = run.timing.time_ns + self._framework_ns(stream.size_bytes)
        op = SDOperation(
            kind="deserialize",
            site=site,
            time_ns=time_ns,
            stream_bytes=stream.size_bytes,
            graph_bytes=result.profile.bytes_written,
            objects=result.profile.objects,
            dram_bytes=run.timing.dram_bytes,
            kernel_time_ns=run.timing.time_ns,
        )
        return result.root, op


class CerealBackend(SDBackend):
    """The Cereal accelerator as Spark's serializer.

    Degrades gracefully: when the accelerator raises
    :class:`~repro.common.errors.CapacityError` (a fixed-capacity
    CAM/SRAM/queue overflowed — possibly injected by a
    :class:`~repro.faults.FaultInjector`), the operation transparently
    falls back to software. Serialize-side faults run the configured Kryo
    fallback (the stream's ``format_name`` routes its later deserialize to
    the same serializer); deserialize-side faults on an existing Cereal
    stream decode it with the software Cereal codec, since the wire format
    is already fixed. Every fallback is marked on its
    :class:`~repro.spark.metrics.SDOperation` and counted in the fault
    report's ``accelerator`` layer.
    """

    name = "cereal"

    def __init__(
        self,
        accelerator: CerealAccelerator,
        stream_ns_per_byte: float = _CEREAL_STREAM_NS_PER_BYTE,
        keep_streams: bool = False,
        injector: Optional[FaultInjector] = None,
        fallback: Optional[SoftwareBackend] = None,
    ):
        self.accelerator = accelerator
        self.stream_ns_per_byte = stream_ns_per_byte
        # When set, every serialized stream is retained for post-hoc format
        # analysis (the Figure 16 compression bench decodes them).
        self.keep_streams = keep_streams
        self.streams = []
        self.injector = injector
        self._fallback = fallback
        self._software_codec: Optional[SoftwareBackend] = None
        self.fallback_count = 0

    @property
    def fallback(self) -> SoftwareBackend:
        """Software serializer used when the accelerator faults (Kryo)."""
        if self._fallback is None:
            from repro.formats.kryo import KryoSerializer

            # Shares the accelerator's registration so every RegisterClass'd
            # type is already known to the fallback.
            self._fallback = SoftwareBackend(
                KryoSerializer(self.accelerator.registration)
            )
        return self._fallback

    def _software_cereal(self) -> SoftwareBackend:
        """Software decode path for already-produced Cereal streams."""
        if self._software_codec is None:
            self._software_codec = SoftwareBackend(self.accelerator.codec)
        return self._software_codec

    def _framework_ns(self, nbytes: int) -> float:
        return nbytes * self.stream_ns_per_byte

    def _record_fallback(self, op: SDOperation, injected: bool) -> SDOperation:
        op.fallback = True
        self.fallback_count += 1
        if self.injector is not None:
            report = self.injector.report
            if injected:
                report.record_injected("accelerator")
            report.record_detected("accelerator")
            report.record_recovered("accelerator")
            report.record_fallback("accelerator")
        return op

    def serialize(self, root: HeapObject, site: str):
        injected = False
        try:
            if self.injector is not None and self.injector.accelerator_fault(
                "serialize"
            ):
                injected = True
                raise CapacityError(
                    "injected: MAI request queue overflow during serialize"
                )
            result, timing, _ = self.accelerator.serialize(root)
        except CapacityError:
            stream, op = self.fallback.serialize(root, site)
            if self.keep_streams:
                self.streams.append(stream)
            return stream, self._record_fallback(op, injected)
        if self.keep_streams:
            self.streams.append(result.stream)
        time_ns = timing.elapsed_ns + self._framework_ns(result.stream.size_bytes)
        op = SDOperation(
            kind="serialize",
            site=site,
            time_ns=time_ns,
            stream_bytes=result.stream.size_bytes,
            graph_bytes=result.stream.graph_bytes,
            objects=result.stream.object_count,
            dram_bytes=timing.dram_bytes,
            kernel_time_ns=timing.elapsed_ns,
        )
        return result.stream, op

    def deserialize(self, stream: SerializedStream, heap: Heap, site: str):
        if stream.is_framed:
            stream = stream.unframed()  # verify checksums before decoding
        if stream.format_name != self.accelerator.codec.name:
            # Produced by the software fallback serializer; only that
            # serializer can decode it.
            root, op = self.fallback.deserialize(stream, heap, site)
            return root, self._record_fallback(op, injected=False)
        injected = False
        try:
            if self.injector is not None and self.injector.accelerator_fault(
                "deserialize"
            ):
                injected = True
                raise CapacityError(
                    "injected: Class ID Table / reorder buffer overflow "
                    "during deserialize"
                )
            root, timing, _ = self.accelerator.deserialize(stream, heap)
        except CapacityError:
            root, op = self._software_cereal().deserialize(stream, heap, site)
            return root, self._record_fallback(op, injected)
        time_ns = timing.elapsed_ns + self._framework_ns(stream.size_bytes)
        op = SDOperation(
            kind="deserialize",
            site=site,
            time_ns=time_ns,
            stream_bytes=stream.size_bytes,
            graph_bytes=timing.graph_bytes,
            objects=timing.objects,
            dram_bytes=timing.dram_bytes,
            kernel_time_ns=timing.elapsed_ns,
        )
        return root, op
