"""Execution-time accounting for mini-Spark runs.

The paper breaks application time into computation, GC, I/O, and S/D
(Figure 2); :class:`TimeBreakdown` carries exactly those four buckets plus
the S/D split into serialize/deserialize (needed for Figures 13 and 17's
separate serialize/deserialize energy bars).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class SDOperation:
    """One serialize or deserialize performed during a run."""

    kind: str  # "serialize" | "deserialize"
    site: str  # "shuffle" | "cache" | "collect" | "broadcast" | "input"
    time_ns: float  # kernel + framework stream path
    stream_bytes: int
    graph_bytes: int
    objects: int
    dram_bytes: int = 0
    kernel_time_ns: float = 0.0  # serializer/accelerator time alone
    #: True when the accelerator faulted and a software serializer ran the
    #: operation instead (graceful degradation).
    fallback: bool = False


@dataclass
class TimeBreakdown:
    """Wall-time decomposition of one application run (single executor lane).

    Mini-Spark models the executor pool as perfectly balanced partitions, so
    per-lane time equals max-lane time; all buckets are per-lane.
    """

    compute_ns: float = 0.0
    gc_ns: float = 0.0
    io_ns: float = 0.0
    serialize_ns: float = 0.0
    deserialize_ns: float = 0.0
    #: Time spent recovering from injected/transient faults: retry backoff,
    #: re-fetch wire time, latency spikes. Zero on a fault-free run.
    retry_ns: float = 0.0
    operations: List[SDOperation] = field(default_factory=list)

    @property
    def sd_ns(self) -> float:
        return self.serialize_ns + self.deserialize_ns

    @property
    def total_ns(self) -> float:
        return (
            self.compute_ns + self.gc_ns + self.io_ns + self.sd_ns
            + self.retry_ns
        )

    @property
    def sd_fraction(self) -> float:
        total = self.total_ns
        if total <= 0:
            return 0.0
        return self.sd_ns / total

    def fractions(self) -> Dict[str, float]:
        total = self.total_ns
        if total <= 0:
            return {
                "compute": 0.0, "gc": 0.0, "io": 0.0, "sd": 0.0, "retry": 0.0
            }
        return {
            "compute": self.compute_ns / total,
            "gc": self.gc_ns / total,
            "io": self.io_ns / total,
            "sd": self.sd_ns / total,
            "retry": self.retry_ns / total,
        }

    def add_operation(self, op: SDOperation) -> None:
        self.operations.append(op)
        if op.kind == "serialize":
            self.serialize_ns += op.time_ns
        else:
            self.deserialize_ns += op.time_ns

    def merge(self, other: "TimeBreakdown") -> None:
        self.compute_ns += other.compute_ns
        self.gc_ns += other.gc_ns
        self.io_ns += other.io_ns
        self.serialize_ns += other.serialize_ns
        self.deserialize_ns += other.deserialize_ns
        self.retry_ns += other.retry_ns
        self.operations.extend(other.operations)

    @property
    def total_stream_bytes(self) -> int:
        return sum(op.stream_bytes for op in self.operations)

    @property
    def serialize_count(self) -> int:
        return sum(1 for op in self.operations if op.kind == "serialize")

    @property
    def deserialize_count(self) -> int:
        return sum(1 for op in self.operations if op.kind == "deserialize")

    @property
    def fallback_count(self) -> int:
        """Operations the accelerator handed to the software fallback."""
        return sum(1 for op in self.operations if op.fallback)
