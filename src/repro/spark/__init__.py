"""Mini-Spark: the data analytics substrate the paper evaluates on.

A deliberately small but real dataflow engine over the simulated JVM heap:
partitioned datasets of heap objects, eager narrow transformations, wide
shuffles that *actually serialize* the partition contents through whichever
S/D backend is configured (Java S/D, Kryo, Skyway, or the Cereal
accelerator), serialized in-memory caching, and driver collects. Every run
produces a :class:`~repro.spark.metrics.TimeBreakdown` (compute / GC / IO /
S/D) matching the paper's Figure 2 decomposition.

Applications (paper Table III) live in :mod:`repro.spark.apps`.
"""

from repro.spark.metrics import SDOperation, TimeBreakdown
from repro.spark.backend import (
    CerealBackend,
    SDBackend,
    SoftwareBackend,
)
from repro.spark.engine import CachedDataset, MiniSparkContext, PartitionedDataset
from repro.spark.transfer import (
    ChunkingConfig,
    ChunkTransferStats,
    ResilientTransfer,
    RetryPolicy,
)

__all__ = [
    "TimeBreakdown",
    "SDOperation",
    "SDBackend",
    "SoftwareBackend",
    "CerealBackend",
    "CachedDataset",
    "MiniSparkContext",
    "PartitionedDataset",
    "ResilientTransfer",
    "RetryPolicy",
    "ChunkingConfig",
    "ChunkTransferStats",
]
