"""Shared low-level utilities: units, bit manipulation, configs, errors.

Everything in this package is dependency-free (standard library only) and is
used by every other subsystem in the reproduction.
"""

from repro.common.errors import (
    CerealError,
    ConfigError,
    FormatError,
    HeapError,
    SimulationError,
)
from repro.common.units import (
    GB,
    GIB,
    KB,
    KIB,
    MB,
    MIB,
    Cycles,
    Nanoseconds,
    bytes_human,
    cycles_to_seconds,
    seconds_to_cycles,
)

__all__ = [
    "CerealError",
    "ConfigError",
    "FormatError",
    "HeapError",
    "SimulationError",
    "KB",
    "MB",
    "GB",
    "KIB",
    "MIB",
    "GIB",
    "Cycles",
    "Nanoseconds",
    "bytes_human",
    "cycles_to_seconds",
    "seconds_to_cycles",
]
