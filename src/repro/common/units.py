"""Units and conversions used throughout the simulators.

The cycle-level models express time in *cycles* of a 1 GHz accelerator clock
unless stated otherwise, so one cycle equals one nanosecond by default. The
helpers here keep conversions explicit and centralized.
"""

from __future__ import annotations

# Decimal byte units (used for DRAM bandwidth, matching DDR4 marketing units).
KB = 1000
MB = 1000 * KB
GB = 1000 * MB

# Binary byte units (used for capacities of caches and hardware tables).
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

# Type aliases to make signatures self-describing.
Cycles = int
Nanoseconds = float

DEFAULT_CLOCK_GHZ = 1.0


def cycles_to_seconds(cycles: Cycles, clock_ghz: float = DEFAULT_CLOCK_GHZ) -> float:
    """Convert a cycle count at ``clock_ghz`` into seconds."""
    if clock_ghz <= 0:
        raise ValueError(f"clock_ghz must be positive, got {clock_ghz}")
    return cycles / (clock_ghz * 1e9)


def seconds_to_cycles(seconds: float, clock_ghz: float = DEFAULT_CLOCK_GHZ) -> Cycles:
    """Convert seconds into a (rounded-up) cycle count at ``clock_ghz``."""
    if clock_ghz <= 0:
        raise ValueError(f"clock_ghz must be positive, got {clock_ghz}")
    if seconds < 0:
        raise ValueError(f"seconds must be non-negative, got {seconds}")
    cycles = seconds * clock_ghz * 1e9
    return int(cycles) if cycles == int(cycles) else int(cycles) + 1


def bytes_human(num_bytes: int) -> str:
    """Render a byte count with a binary-unit suffix, e.g. ``'1.5 MiB'``."""
    if num_bytes < 0:
        raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
    value = float(num_bytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or suffix == "TiB":
            if suffix == "B":
                return f"{int(value)} B"
            return f"{value:.2f} {suffix}"
        value /= 1024
    raise AssertionError("unreachable")
