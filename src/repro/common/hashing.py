"""Stable (unsalted) string and integer hashing.

Python's built-in ``hash`` is salted per process (``PYTHONHASHSEED``), so
anything derived from it — rng seeds, placement decisions, sampled draws
— silently changes between runs. Every layer that needs a deterministic
hash routes through here instead:

* :func:`fnv1a64` — FNV-1a over UTF-8, the cheap stable string hash;
* :func:`splitmix64` — the splitmix64 finalizer, a high-quality 64-bit
  mixing function (weak avalanche in raw FNV-1a is fixed by one pass);
* :func:`stable_hash` — their composition, the default for keys that
  feed placement or seeding.
"""

from __future__ import annotations

MASK64 = (1 << 64) - 1


def fnv1a64(text: str) -> int:
    """FNV-1a over UTF-8 — a *stable* string hash (``hash()`` is salted)."""
    state = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        state ^= byte
        state = (state * 0x100000001B3) & MASK64
    return state


def splitmix64(value: int) -> int:
    """The splitmix64 finalizer: a high-quality 64-bit mixing function."""
    value = (value + 0x9E3779B97F4A7C15) & MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & MASK64
    return value ^ (value >> 31)


def stable_hash(text: str) -> int:
    """FNV-1a over UTF-8, mixed through the splitmix64 finalizer."""
    return splitmix64(fnv1a64(text))
