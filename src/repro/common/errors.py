"""Exception hierarchy for the Cereal reproduction.

All library errors derive from :class:`CerealError` so callers can catch one
base type. Subsystems raise the most specific subtype that applies.
"""


class CerealError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(CerealError):
    """An invalid or inconsistent configuration value was supplied."""


class HeapError(CerealError):
    """Raised for invalid operations on the simulated JVM heap."""


class FormatError(CerealError):
    """Raised when a serialized stream is malformed or cannot be decoded."""


class RegistrationError(CerealError):
    """A class/type was used with a serializer that requires registration."""


class TruncatedStreamError(FormatError):
    """The stream ended before a read could be satisfied.

    Carries the cursor ``offset`` where the read started, the number of
    bytes it ``needed``, and how many were actually ``available`` — the
    context an operator needs to tell a clipped transfer from a hostile
    truncation.
    """

    def __init__(self, offset: int, needed: int, available: int):
        self.offset = offset
        self.needed = needed
        self.available = available
        super().__init__(
            f"stream underflow: need {needed} bytes at offset {offset}, "
            f"have {available}"
        )


class MalformedVarintError(FormatError):
    """A varint was overlong or decoded outside the u64 value space."""


class UnknownClassError(FormatError, RegistrationError):
    """A stream named a class ID the reader's registry does not hold.

    Subclasses both :class:`FormatError` (the bytes cannot be decoded) and
    :class:`RegistrationError` (the fix is registering the type), so both
    historical catch sites keep working. This is the register-before-decode
    security boundary: only pre-registered classes may ever be instantiated
    from a stream.
    """

    def __init__(self, class_id, detail: str = "", offset=None):
        self.class_id = class_id
        self.offset = offset
        message = f"unknown class ID {class_id}"
        if detail:
            message += f" ({detail})"
        if offset is not None:
            message += f" at stream offset {offset}"
        super().__init__(message)


class ResourceLimitError(FormatError):
    """A decode exceeded its :class:`DecodeLimits` budget.

    Raised *before* the offending allocation happens, so a hostile stream
    can name a 2^60-element array without the decoder ever reserving it.
    """

    def __init__(self, limit_name: str, requested, allowed):
        self.limit_name = limit_name
        self.requested = requested
        self.allowed = allowed
        super().__init__(
            f"decode budget exceeded: {limit_name} of {requested} "
            f"over limit {allowed}"
        )


class SchemaMismatchError(FormatError):
    """Writer and reader schemas for a class cannot be reconciled."""


class TransientError(CerealError):
    """A recoverable runtime fault: retrying (or re-executing) may succeed.

    Raised by the resilience layer when bounded retries are exhausted; the
    subtypes below identify what failed so callers can pick a recovery
    strategy (re-fetch, lineage re-execution, software fallback).
    """


class CorruptionError(TransientError, FormatError):
    """A checksummed stream frame failed verification.

    Subclasses both :class:`TransientError` (a re-fetch gets a clean copy)
    and :class:`FormatError` (the bytes are undecodable as received).
    """


class ExecutorLostError(TransientError):
    """An executor died mid-stage and its outputs are gone."""


class SimulationError(CerealError):
    """Raised when the cycle-level simulation reaches an invalid state."""


class CapacityError(SimulationError):
    """A fixed-capacity hardware structure (CAM/SRAM/queue) overflowed."""
