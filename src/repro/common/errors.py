"""Exception hierarchy for the Cereal reproduction.

All library errors derive from :class:`CerealError` so callers can catch one
base type. Subsystems raise the most specific subtype that applies.
"""


class CerealError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(CerealError):
    """An invalid or inconsistent configuration value was supplied."""


class HeapError(CerealError):
    """Raised for invalid operations on the simulated JVM heap."""


class FormatError(CerealError):
    """Raised when a serialized stream is malformed or cannot be decoded."""


class TransientError(CerealError):
    """A recoverable runtime fault: retrying (or re-executing) may succeed.

    Raised by the resilience layer when bounded retries are exhausted; the
    subtypes below identify what failed so callers can pick a recovery
    strategy (re-fetch, lineage re-execution, software fallback).
    """


class CorruptionError(TransientError, FormatError):
    """A checksummed stream frame failed verification.

    Subclasses both :class:`TransientError` (a re-fetch gets a clean copy)
    and :class:`FormatError` (the bytes are undecodable as received).
    """


class ExecutorLostError(TransientError):
    """An executor died mid-stage and its outputs are gone."""


class SimulationError(CerealError):
    """Raised when the cycle-level simulation reaches an invalid state."""


class RegistrationError(CerealError):
    """A class/type was used with a serializer that requires registration."""


class CapacityError(SimulationError):
    """A fixed-capacity hardware structure (CAM/SRAM/queue) overflowed."""
