"""Word-level bitstream kernels: the fast path under every bit format.

The original reproduction modelled the Section IV bit formats as Python
``List[int]`` bit lists — faithful, but every serialized object paid a
per-bit interpreter-loop tax. This module provides the word-at-a-time
replacement the hot paths are built on: bits live inside a single Python
``int`` accumulator and move in and out of ``bytes`` via
``int.to_bytes`` / ``int.from_bytes``, so the cost per *item* is a handful
of big-integer operations instead of one loop iteration per *bit*. The
same discipline real serialization kernels use (HPS's word-packing units,
AwkwardForth's buffer ops): the interpreter dispatch happens per field,
never per bit.

Conventions (identical to :mod:`repro.common.bitutils`, which remains the
slow per-bit reference):

* bit order is **MSB-first**: the first bit written is the most
  significant bit of the first byte;
* byte output is **zero-padded at the tail** to a whole byte; the declared
  bit length is the caller's to carry (see ``bits_to_bytes`` docs).
"""

from __future__ import annotations

from typing import List, Tuple

# ``int.bit_count`` landed in Python 3.10; the CI matrix still runs 3.9.
if hasattr(int, "bit_count"):  # pragma: no branch

    def popcount_word(value: int) -> int:
        """Set-bit count of a non-negative word (O(1) on CPython >= 3.10)."""
        if value < 0:
            raise ValueError(f"value must be non-negative, got {value}")
        return value.bit_count()

else:  # pragma: no cover - exercised only on Python 3.9

    def popcount_word(value: int) -> int:
        """Set-bit count of a non-negative word."""
        if value < 0:
            raise ValueError(f"value must be non-negative, got {value}")
        return bin(value).count("1")


def trailing_zeros(value: int) -> int:
    """Number of trailing zero bits of a positive integer."""
    if value <= 0:
        raise ValueError(f"value must be positive, got {value}")
    return (value & -value).bit_length() - 1


def word_to_bits(value: int, width: int) -> List[int]:
    """Big-endian bit list of ``value`` over exactly ``width`` bits.

    The bridge back to the legacy list representation; used where a
    consumer still wants a ``List[int]`` (tests, RTL probes).
    """
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    if value < 0 or value.bit_length() > width:
        raise ValueError(f"value {value} does not fit in {width} bits")
    return [(value >> (width - 1 - i)) & 1 for i in range(width)]


def bits_to_word(bits) -> Tuple[int, int]:
    """Fold a big-endian bit list into ``(value, width)``, validating bits."""
    value = 0
    width = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"bit values must be 0 or 1, got {bit}")
        value = (value << 1) | bit
        width += 1
    return value, width


class BitWriter:
    """MSB-first bit sink backed by an int accumulator and a ``bytearray``.

    Bits accumulate in ``_acc`` (a plain int, newest bits least
    significant) and spill into ``_buffer`` in whole bytes whenever the
    accumulator grows past ``_SPILL_BITS`` — keeping the accumulator small
    so shifts stay cheap even for multi-megabyte streams.
    """

    _SPILL_BITS = 8192

    __slots__ = ("_buffer", "_acc", "_acc_bits")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._acc = 0
        self._acc_bits = 0

    # -- writing ----------------------------------------------------------------

    def write_bits(self, value: int, width: int) -> None:
        """Append ``value`` as exactly ``width`` bits, MSB-first."""
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        if value < 0 or value.bit_length() > width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._acc = (self._acc << width) | value
        self._acc_bits += width
        if self._acc_bits >= self._SPILL_BITS:
            self._spill()

    def write_bit(self, bit: int) -> None:
        if bit not in (0, 1):
            raise ValueError(f"bit values must be 0 or 1, got {bit}")
        self.write_bits(bit, 1)

    def write_unary_terminated(self, value: int, width: int) -> None:
        """Append ``value`` (``width`` bits), an end bit, and tail padding.

        This is the Section IV-B packed-item shape — payload, end bit 1,
        zero-pad to the byte boundary — emitted as one word operation.
        """
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        if value < 0 or value.bit_length() > width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        nbits = width + 1
        padded = -(-nbits // 8) * 8
        self.write_bits(((value << 1) | 1) << (padded - nbits), padded)

    def align_to_byte(self) -> int:
        """Zero-pad to the next byte boundary; returns the pad bit count."""
        pad = (-self._acc_bits) % 8
        if pad:
            self._acc <<= pad
            self._acc_bits += pad
        return pad

    def _spill(self) -> None:
        whole, rem = divmod(self._acc_bits, 8)
        if whole:
            self._buffer += (self._acc >> rem).to_bytes(whole, "big")
            self._acc &= (1 << rem) - 1
            self._acc_bits = rem

    # -- reading out ------------------------------------------------------------

    @property
    def bit_length(self) -> int:
        """Bits written so far (before any tail padding)."""
        return len(self._buffer) * 8 + self._acc_bits

    @property
    def byte_length(self) -> int:
        """Bytes :meth:`getvalue` would produce (tail padding included)."""
        return (self.bit_length + 7) // 8

    def getvalue(self) -> bytes:
        """The stream so far, tail zero-padded to a whole byte.

        Non-destructive: more bits may be written afterwards, continuing
        from the *unpadded* position.
        """
        self._spill()
        if self._acc_bits == 0:
            return bytes(self._buffer)
        pad = (-self._acc_bits) % 8
        tail = (self._acc << pad).to_bytes((self._acc_bits + pad) // 8, "big")
        return bytes(self._buffer) + tail


class BitReader:
    """MSB-first bit source over ``bytes``, word-at-a-time.

    The whole buffer is folded into one Python int up front
    (``int.from_bytes`` runs at memcpy-like speed), after which any
    ``read_bits(width)`` is a shift and a mask — no per-bit loop, no
    per-byte dispatch.
    """

    __slots__ = ("_value", "_total_bits", "_cursor")

    def __init__(self, data: bytes, bit_count: int | None = None):
        total = len(data) * 8
        if bit_count is not None:
            if bit_count < 0 or bit_count > total:
                raise ValueError(
                    f"bit_count {bit_count} out of range for {len(data)} bytes"
                )
            total = bit_count
        self._value = int.from_bytes(data, "big") >> (len(data) * 8 - total)
        self._total_bits = total
        self._cursor = 0

    @property
    def remaining_bits(self) -> int:
        return self._total_bits - self._cursor

    @property
    def bit_position(self) -> int:
        return self._cursor

    def read_bits(self, width: int) -> int:
        """Consume ``width`` bits, returned as an int (MSB-first order)."""
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        if self._cursor + width > self._total_bits:
            raise ValueError(
                f"read of {width} bits overruns stream "
                f"({self.remaining_bits} bits left)"
            )
        self._cursor += width
        return (self._value >> (self._total_bits - self._cursor)) & (
            (1 << width) - 1
        )

    def read_bit(self) -> int:
        return self.read_bits(1)
