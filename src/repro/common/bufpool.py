"""Reusable byte-buffer arenas for the serialization hot paths.

Every serialize call in the seed allocated a fresh ``bytearray`` (inside
:class:`~repro.formats.streams.StreamWriter`) and grew it byte-append by
byte-append; the plan kernels in :mod:`repro.formats.plans` additionally
need scratch output buffers per call. Allocating and growing those
buffers from zero on every operation is pure allocator churn: the buffer
reaches roughly the same size every time a payload shape repeats, which
is exactly the serving-layer steady state (the same catalog entries
serialized over and over).

A :class:`BufferPool` keeps a small free list of already-grown
``bytearray`` arenas. ``acquire()`` hands one back cleared but with its
*capacity* retained (CPython keeps the allocation when a bytearray is
cleared in-place with ``del buf[:]``), so a warm pool serves every
subsequent serialize without touching the allocator. ``release()``
returns the arena and records the high-water mark — the largest buffer
the process ever filled — which the benchmarks surface next to the
plan-cache hit rate.

The counters live in a :class:`repro.obs.metrics.MetricsRegistry` —
the process-wide one for :data:`GLOBAL_POOL` (metric names
``bufpool.*``), a private registry per standalone pool so test instances
never bleed into each other — and ``stats()`` is a thin view over them.

The process-wide pool is deliberately tiny (a handful of arenas): one
serialize is single-threaded and the service layer runs operations
back-to-back, so deep pools only pin memory.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry, get_registry


class BufferPool:
    """A bounded free list of reusable ``bytearray`` arenas with stats."""

    def __init__(
        self,
        max_arenas: int = 8,
        registry: Optional[MetricsRegistry] = None,
        prefix: str = "bufpool",
    ):
        if max_arenas <= 0:
            raise ValueError(f"max_arenas must be positive, got {max_arenas}")
        self.max_arenas = max_arenas
        self._free: List[bytearray] = []
        metrics = registry if registry is not None else MetricsRegistry()
        self._acquires = metrics.counter(f"{prefix}.acquires")
        self._reuses = metrics.counter(f"{prefix}.reuses")
        self._releases = metrics.counter(f"{prefix}.releases")
        self._high_water = metrics.gauge(f"{prefix}.high_water_mark_bytes")
        self._pooled = metrics.gauge(f"{prefix}.pooled_arenas")

    @property
    def acquires(self) -> int:
        return self._acquires.value

    @property
    def reuses(self) -> int:
        return self._reuses.value

    @property
    def releases(self) -> int:
        return self._releases.value

    @property
    def high_water_mark(self) -> int:
        """Largest buffer length seen at release."""
        return int(self._high_water.value)

    def acquire(self) -> bytearray:
        """A cleared arena; reuses a pooled one when available."""
        self._acquires.inc()
        if self._free:
            self._reuses.inc()
            arena = self._free.pop()
            self._pooled.set(len(self._free))
            del arena[:]  # clear contents, keep the grown allocation
            return arena
        return bytearray()

    def release(self, arena: bytearray) -> None:
        """Return ``arena`` to the pool (dropped if the pool is full)."""
        self._releases.inc()
        self._high_water.set_max(len(arena))
        if len(self._free) < self.max_arenas:
            self._free.append(arena)
            self._pooled.set(len(self._free))

    @property
    def reuse_rate(self) -> float:
        if self.acquires == 0:
            return 0.0
        return self.reuses / self.acquires

    def stats(self) -> Dict[str, object]:
        """Machine-readable snapshot for benchmarks and SLO reports."""
        return {
            "acquires": self.acquires,
            "reuses": self.reuses,
            "releases": self.releases,
            "reuse_rate": round(self.reuse_rate, 4),
            "high_water_mark_bytes": self.high_water_mark,
            "pooled_arenas": len(self._free),
        }

    def reset(self) -> None:
        """Drop pooled arenas and zero the counters (tests)."""
        self._free.clear()
        self._acquires.reset()
        self._reuses.reset()
        self._releases.reset()
        self._high_water.reset()
        self._pooled.reset()

    def __len__(self) -> int:
        return len(self._free)


#: The process-wide pool every serializer and plan kernel shares; its
#: counters land in the process-wide metrics registry as ``bufpool.*``.
GLOBAL_POOL = BufferPool(registry=get_registry())


def acquire_buffer() -> bytearray:
    return GLOBAL_POOL.acquire()


def release_buffer(arena: bytearray) -> None:
    GLOBAL_POOL.release(arena)


def pool_stats() -> Dict[str, object]:
    return GLOBAL_POOL.stats()


def reset_pool() -> None:
    GLOBAL_POOL.reset()
