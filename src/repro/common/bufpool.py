"""Reusable byte-buffer arenas for the serialization hot paths.

Every serialize call in the seed allocated a fresh ``bytearray`` (inside
:class:`~repro.formats.streams.StreamWriter`) and grew it byte-append by
byte-append; the plan kernels in :mod:`repro.formats.plans` additionally
need scratch output buffers per call. Allocating and growing those
buffers from zero on every operation is pure allocator churn: the buffer
reaches roughly the same size every time a payload shape repeats, which
is exactly the serving-layer steady state (the same catalog entries
serialized over and over).

A :class:`BufferPool` keeps a small free list of already-grown
``bytearray`` arenas. ``acquire()`` hands one back cleared but with its
*capacity* retained (CPython keeps the allocation when a bytearray is
cleared in-place with ``del buf[:]``), so a warm pool serves every
subsequent serialize without touching the allocator. ``release()``
returns the arena and records the high-water mark — the largest buffer
the process ever filled — which the benchmarks surface next to the
plan-cache hit rate.

The counters live in a :class:`repro.obs.metrics.MetricsRegistry` —
the process-wide one for :data:`GLOBAL_POOL` (metric names
``bufpool.*``), a private registry per standalone pool so test instances
never bleed into each other — and ``stats()`` is a thin view over them.

The process-wide pool is deliberately tiny (a handful of arenas): one
serialize is single-threaded and the service layer runs operations
back-to-back, so deep pools only pin memory.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from repro.common.errors import TransientError
from repro.obs.metrics import MetricsRegistry, get_registry


class BufferPool:
    """A bounded free list of reusable ``bytearray`` arenas with stats."""

    def __init__(
        self,
        max_arenas: int = 8,
        registry: Optional[MetricsRegistry] = None,
        prefix: str = "bufpool",
    ):
        if max_arenas <= 0:
            raise ValueError(f"max_arenas must be positive, got {max_arenas}")
        self.max_arenas = max_arenas
        self._free: List[bytearray] = []
        metrics = registry if registry is not None else MetricsRegistry()
        self._acquires = metrics.counter(f"{prefix}.acquires")
        self._reuses = metrics.counter(f"{prefix}.reuses")
        self._releases = metrics.counter(f"{prefix}.releases")
        self._high_water = metrics.gauge(f"{prefix}.high_water_mark_bytes")
        self._pooled = metrics.gauge(f"{prefix}.pooled_arenas")

    @property
    def acquires(self) -> int:
        return self._acquires.value

    @property
    def reuses(self) -> int:
        return self._reuses.value

    @property
    def releases(self) -> int:
        return self._releases.value

    @property
    def high_water_mark(self) -> int:
        """Largest buffer length seen at release."""
        return int(self._high_water.value)

    def acquire(self) -> bytearray:
        """A cleared arena; reuses a pooled one when available."""
        self._acquires.inc()
        if self._free:
            self._reuses.inc()
            arena = self._free.pop()
            self._pooled.set(len(self._free))
            del arena[:]  # clear contents, keep the grown allocation
            return arena
        return bytearray()

    def release(self, arena: bytearray) -> None:
        """Return ``arena`` to the pool (dropped if the pool is full)."""
        self._releases.inc()
        self._high_water.set_max(len(arena))
        if len(self._free) < self.max_arenas:
            self._free.append(arena)
            self._pooled.set(len(self._free))

    @property
    def reuse_rate(self) -> float:
        if self.acquires == 0:
            return 0.0
        return self.reuses / self.acquires

    def stats(self) -> Dict[str, object]:
        """Machine-readable snapshot for benchmarks and SLO reports."""
        return {
            "acquires": self.acquires,
            "reuses": self.reuses,
            "releases": self.releases,
            "reuse_rate": round(self.reuse_rate, 4),
            "high_water_mark_bytes": self.high_water_mark,
            "pooled_arenas": len(self._free),
        }

    def reset(self) -> None:
        """Drop pooled arenas and zero the counters (tests)."""
        self._free.clear()
        self._acquires.reset()
        self._reuses.reset()
        self._releases.reset()
        self._high_water.reset()
        self._pooled.reset()

    def __len__(self) -> int:
        return len(self._free)


class ChunkArenaPool:
    """A fixed population of fixed-capacity chunk arenas with backpressure.

    Unlike :class:`BufferPool` — an unbounded free list that exists to
    recycle allocations — this pool *is* the memory budget of a streaming
    pipeline: ``arena_count`` arenas of ``arena_bytes`` capacity are all
    the chunk storage a producer may hold in flight. ``acquire`` in
    blocking mode waits until a consumer releases an arena, which is the
    backpressure mechanism end to end: an encoder cannot race ahead of
    the transfer/egress path by more than the pool population.

    Two acquisition modes:

    * ``block=True`` — wait on the pool's condition variable (used when a
      producer thread feeds a consumer thread through a
      :class:`~repro.formats.streams.BoundedChunkQueue`); the wait is
      counted in ``blocked_acquires`` and ``blocked_wait_ns``.
    * ``block=False`` (default) — single-threaded pull pipelines, where
      the consumer drives the cursor and recycles each chunk before
      asking for the next: exhaustion here means the caller overshot the
      budget inside one uninterruptible step, so the pool hands out an
      *overflow* arena (counted in ``overflow_allocations``) rather than
      deadlocking the only thread. Overflow arenas are absorbed into the
      population on release, keeping the free list bounded.

    ``high_water_mark_bytes`` records the largest arena fill seen at
    release — for a chunked encode this sits at the chunk size, which is
    exactly the number the streaming benchmarks gate against the
    whole-stream pool's payload-sized high-water mark.
    """

    def __init__(
        self,
        arena_count: int = 4,
        arena_bytes: int = 64 * 1024,
        registry: Optional[MetricsRegistry] = None,
        prefix: str = "chunkpool",
    ):
        if arena_count <= 0:
            raise ValueError(f"arena_count must be positive, got {arena_count}")
        if arena_bytes <= 0:
            raise ValueError(f"arena_bytes must be positive, got {arena_bytes}")
        self.arena_count = arena_count
        self.arena_bytes = arena_bytes
        self._free: List[bytearray] = [bytearray() for _ in range(arena_count)]
        self._in_flight = 0
        self._cond = threading.Condition()
        metrics = registry if registry is not None else MetricsRegistry()
        self._acquires = metrics.counter(f"{prefix}.acquires")
        self._releases = metrics.counter(f"{prefix}.releases")
        self._blocked = metrics.counter(f"{prefix}.blocked_acquires")
        self._blocked_wait = metrics.counter(f"{prefix}.blocked_wait_ns")
        self._overflow = metrics.counter(f"{prefix}.overflow_allocations")
        self._high_water = metrics.gauge(f"{prefix}.high_water_mark_bytes")
        self._in_flight_peak = metrics.gauge(f"{prefix}.in_flight_peak")

    @property
    def acquires(self) -> int:
        return self._acquires.value

    @property
    def releases(self) -> int:
        return self._releases.value

    @property
    def blocked_acquires(self) -> int:
        """Acquires that found every arena in flight."""
        return self._blocked.value

    @property
    def blocked_wait_ns(self) -> int:
        """Total wall time blocked acquirers spent waiting."""
        return self._blocked_wait.value

    @property
    def overflow_allocations(self) -> int:
        return self._overflow.value

    @property
    def high_water_mark(self) -> int:
        """Largest arena fill seen at release."""
        return int(self._high_water.value)

    @property
    def in_flight(self) -> int:
        return self._in_flight

    def acquire(
        self, block: bool = False, timeout_s: Optional[float] = None
    ) -> bytearray:
        """A cleared chunk arena; see the class docstring for modes."""
        with self._cond:
            self._acquires.inc()
            if not self._free:
                self._blocked.inc()
                if block:
                    start = time.monotonic_ns()
                    if not self._cond.wait_for(
                        lambda: bool(self._free), timeout=timeout_s
                    ):
                        self._blocked_wait.inc(time.monotonic_ns() - start)
                        raise TransientError(
                            f"chunk arena acquire timed out after {timeout_s}s "
                            f"({self.arena_count} arenas all in flight)"
                        )
                    self._blocked_wait.inc(time.monotonic_ns() - start)
                else:
                    # Single-threaded pipeline overshot one step's budget:
                    # keep it live with an overflow arena rather than
                    # deadlocking the only thread.
                    self._overflow.inc()
                    self._in_flight += 1
                    self._in_flight_peak.set_max(self._in_flight)
                    return bytearray()
            arena = self._free.pop()
            del arena[:]  # clear contents, keep the grown allocation
            self._in_flight += 1
            self._in_flight_peak.set_max(self._in_flight)
            return arena

    def release(self, arena: bytearray) -> None:
        """Return an arena; wakes one blocked acquirer."""
        with self._cond:
            self._releases.inc()
            self._high_water.set_max(len(arena))
            self._in_flight = max(0, self._in_flight - 1)
            if len(self._free) < self.arena_count:
                self._free.append(arena)
                self._cond.notify()

    def stats(self) -> Dict[str, object]:
        """Machine-readable snapshot for benchmarks and SLO reports."""
        return {
            "arena_count": self.arena_count,
            "arena_bytes": self.arena_bytes,
            "acquires": self.acquires,
            "releases": self.releases,
            "blocked_acquires": self.blocked_acquires,
            "blocked_wait_ns": self._blocked_wait.value,
            "overflow_allocations": self.overflow_allocations,
            "high_water_mark_bytes": self.high_water_mark,
            "in_flight": self._in_flight,
            "in_flight_peak": int(self._in_flight_peak.value),
        }

    def reset(self) -> None:
        """Restore the full free population and zero the counters (tests)."""
        with self._cond:
            self._free = [bytearray() for _ in range(self.arena_count)]
            self._in_flight = 0
            self._acquires.reset()
            self._releases.reset()
            self._blocked.reset()
            self._blocked_wait.reset()
            self._overflow.reset()
            self._high_water.reset()
            self._in_flight_peak.reset()
            self._cond.notify_all()

    def __len__(self) -> int:
        return len(self._free)


#: The process-wide pool every serializer and plan kernel shares; its
#: counters land in the process-wide metrics registry as ``bufpool.*``.
GLOBAL_POOL = BufferPool(registry=get_registry())

#: The process-wide chunk pool streaming encoders default to; counters
#: land in the process-wide metrics registry as ``chunkpool.*``.
GLOBAL_CHUNK_POOL = ChunkArenaPool(registry=get_registry())


def acquire_buffer() -> bytearray:
    return GLOBAL_POOL.acquire()


def release_buffer(arena: bytearray) -> None:
    GLOBAL_POOL.release(arena)


def pool_stats() -> Dict[str, object]:
    return GLOBAL_POOL.stats()


def reset_pool() -> None:
    GLOBAL_POOL.reset()


def chunk_pool_stats() -> Dict[str, object]:
    return GLOBAL_CHUNK_POOL.stats()


def reset_chunk_pool() -> None:
    GLOBAL_CHUNK_POOL.reset()
