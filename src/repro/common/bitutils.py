"""Bit-level helpers shared by the JVM heap model and the packing scheme.

The Cereal serialization format (paper Section IV) is defined at the bit
level: layout bitmaps mark 8-byte slots, and the object packing scheme stores
only the significant bits of each value followed by an *end bit*. These
helpers implement the primitive operations once so both the format encoder
and the hardware model use identical semantics.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence


def significant_bits(value: int) -> int:
    """Number of bits needed to represent ``value`` (at least 1 for zero).

    The packing scheme drops leading zeros but must still emit at least one
    bit so that the end bit has something to terminate.
    """
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    return max(1, value.bit_length())


def int_to_bits(value: int, width: int) -> List[int]:
    """Big-endian bit list of ``value`` using exactly ``width`` bits.

    ``width`` must be at least 1: a zero-width encoding carries no bits to
    decode and historically produced a silent empty list (so
    ``int_to_bits(0, 0)`` round-tripped through ``bits_to_int`` as an
    *absence* rather than a value). Both ends of that asymmetry now raise.
    """
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    if width < 1:
        raise ValueError(f"width must be at least 1, got {width}")
    if width < value.bit_length():
        raise ValueError(f"width {width} too small for value {value}")
    return [(value >> (width - 1 - i)) & 1 for i in range(width)]


def bits_to_int(bits: Sequence[int]) -> int:
    """Inverse of :func:`int_to_bits` (big-endian).

    Rejects the empty sequence for symmetry with :func:`int_to_bits`:
    zero-width bit strings are not valid encodings of any value.
    """
    if len(bits) == 0:
        raise ValueError("cannot decode an empty bit sequence")
    value = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"bit values must be 0 or 1, got {bit}")
        value = (value << 1) | bit
    return value


def bits_to_bytes(bits: Sequence[int]) -> bytes:
    """Pack a bit sequence into bytes, MSB-first, zero-padding the tail.

    **Tail padding is lossy about length**: packing ``n`` bits produces
    ``ceil(n / 8)`` bytes, and the pad bits are indistinguishable from
    payload zeros. A round trip through a non-multiple-of-8 bit count must
    therefore carry the declared bit length out of band and pass it to
    :func:`bytes_to_bits` via ``bit_count`` — otherwise the bit string
    silently grows to the next byte boundary.
    """
    out = bytearray()
    acc = 0
    count = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"bit values must be 0 or 1, got {bit}")
        acc = (acc << 1) | bit
        count += 1
        if count == 8:
            out.append(acc)
            acc = 0
            count = 0
    if count:
        out.append(acc << (8 - count))
    return bytes(out)


def bytes_to_bits(data: bytes, bit_count: int | None = None) -> List[int]:
    """Unpack bytes into a bit list, MSB-first, truncated to ``bit_count``.

    Without ``bit_count`` the result always has ``len(data) * 8`` bits —
    including any zero bits :func:`bits_to_bytes` added as tail padding.
    Callers that packed a non-multiple-of-8 bit string must pass the
    original length here to get the same string back.
    """
    bits: List[int] = []
    for byte in data:
        for shift in range(7, -1, -1):
            bits.append((byte >> shift) & 1)
    if bit_count is not None:
        if bit_count > len(bits):
            raise ValueError(
                f"bit_count {bit_count} exceeds available bits {len(bits)}"
            )
        bits = bits[:bit_count]
    return bits


def popcount(value: int) -> int:
    """Count set bits in a non-negative integer."""
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    return bin(value).count("1")


def iter_bit_runs(bits: Sequence[int]) -> Iterator[tuple]:
    """Yield ``(bit, run_length)`` pairs for consecutive equal bits."""
    run_bit = None
    run_len = 0
    for bit in bits:
        if bit == run_bit:
            run_len += 1
        else:
            if run_bit is not None:
                yield (run_bit, run_len)
            run_bit = bit
            run_len = 1
    if run_bit is not None:
        yield (run_bit, run_len)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the nearest multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    return (value + alignment - 1) // alignment * alignment


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to the nearest multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    return value // alignment * alignment


def chunks(seq: Sequence, size: int) -> Iterator[Sequence]:
    """Yield successive ``size``-length chunks of ``seq`` (last may be short)."""
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    for start in range(0, len(seq), size):
        yield seq[start : start + size]


def concat_bits(groups: Iterable[Sequence[int]]) -> List[int]:
    """Concatenate several bit sequences into one list."""
    out: List[int] = []
    for group in groups:
        out.extend(group)
    return out
