"""Configuration dataclasses mirroring Table I of the paper.

Three groups of architectural parameters drive every experiment:

* :class:`HostCPUConfig` — the Intel i7-7820X host that runs the software
  serializers (Java S/D, Kryo, Skyway).
* :class:`DRAMConfig` — the DDR4-2400 four-channel memory system shared by
  the host and the accelerator.
* :class:`CerealConfig` — the accelerator itself: number of serialization /
  deserialization units, MAI and TLB geometry, hardware table sizes.

All classes are frozen so a configuration can be shared between simulator
components without defensive copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.common.units import GB, KIB, MIB


@dataclass(frozen=True)
class CacheLevelConfig:
    """Geometry of one cache level in the host hierarchy."""

    name: str
    size_bytes: int
    line_bytes: int = 64
    associativity: int = 8
    latency_cycles: int = 4

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigError(f"{self.name}: size_bytes must be positive")
        if self.line_bytes <= 0 or self.size_bytes % self.line_bytes:
            raise ConfigError(f"{self.name}: size must be a multiple of line size")
        num_lines = self.size_bytes // self.line_bytes
        if self.associativity <= 0 or num_lines % self.associativity:
            raise ConfigError(f"{self.name}: lines must divide into ways evenly")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // self.line_bytes // self.associativity


@dataclass(frozen=True)
class HostCPUConfig:
    """Host processor parameters (Table I, "Host Processor")."""

    name: str = "Intel i7-7820X"
    cores: int = 8
    clock_ghz: float = 3.6
    tdp_watts: float = 140.0
    die_area_mm2: float = 2362.5  # paper Section VI-E (14 nm die)
    # Microarchitectural limits that bound memory-level parallelism for the
    # software serializers (paper Section III).
    instruction_window: int = 224
    load_store_queue: int = 72
    max_outstanding_misses: int = 10  # MSHRs per core
    # Retire rate the dependency- and branch-heavy S/D code sustains when
    # not stalled on memory. The machine issues 4/cycle, but the paper's
    # measured S/D IPC of ~1 (Figure 3a) implies the non-stalled portion
    # runs well below peak; 1.7 reproduces the measured IPC once modelled
    # memory stalls are added.
    base_ipc: float = 1.7
    l1: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(
            "L1D", 32 * KIB, associativity=8, latency_cycles=4
        )
    )
    l2: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(
            "L2", 1 * MIB, associativity=16, latency_cycles=14
        )
    )
    l3: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(
            "L3", 11 * MIB, associativity=11, latency_cycles=44
        )
    )

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigError("cores must be positive")
        if self.clock_ghz <= 0:
            raise ConfigError("clock_ghz must be positive")
        if self.max_outstanding_misses <= 0:
            raise ConfigError("max_outstanding_misses must be positive")

    def scaled_caches(self, factor: int) -> "HostCPUConfig":
        """Host with caches shrunk by ``factor`` for scaled-down workloads.

        The paper's microbenchmarks use multi-GB object graphs whose
        footprints dwarf the 11 MB LLC. Our Python-scale graphs are ~1000x
        smaller, so to stay in the same footprint-vs-cache regime the
        experiments shrink the caches by the same factor as the workload
        (documented per experiment in EXPERIMENTS.md).
        """
        if factor <= 0:
            raise ConfigError("factor must be positive")

        def shrink(level: CacheLevelConfig) -> CacheLevelConfig:
            target = max(level.line_bytes * level.associativity,
                         level.size_bytes // factor)
            # Round to a multiple of one full set row.
            row = level.line_bytes * level.associativity
            target = max(row, target // row * row)
            return CacheLevelConfig(
                level.name,
                target,
                line_bytes=level.line_bytes,
                associativity=level.associativity,
                latency_cycles=level.latency_cycles,
            )

        return HostCPUConfig(
            name=f"{self.name} (caches/{factor})",
            cores=self.cores,
            clock_ghz=self.clock_ghz,
            tdp_watts=self.tdp_watts,
            die_area_mm2=self.die_area_mm2,
            instruction_window=self.instruction_window,
            load_store_queue=self.load_store_queue,
            max_outstanding_misses=self.max_outstanding_misses,
            base_ipc=self.base_ipc,
            l1=shrink(self.l1),
            l2=shrink(self.l2),
            l3=shrink(self.l3),
        )


@dataclass(frozen=True)
class DRAMConfig:
    """DDR4 memory system parameters (Table I, "DDR4 Memory System")."""

    standard: str = "DDR4-2400"
    channels: int = 4
    capacity_bytes: int = 128 * GB
    channel_bandwidth_bytes_per_sec: float = 19.2 * GB
    zero_load_latency_ns: float = 40.0
    access_granularity_bytes: int = 64

    def __post_init__(self) -> None:
        if self.channels <= 0:
            raise ConfigError("channels must be positive")
        if self.channel_bandwidth_bytes_per_sec <= 0:
            raise ConfigError("channel bandwidth must be positive")
        if self.zero_load_latency_ns < 0:
            raise ConfigError("zero-load latency must be non-negative")

    @property
    def peak_bandwidth_bytes_per_sec(self) -> float:
        """Aggregate peak bandwidth across all channels (76.8 GB/s in Table I)."""
        return self.channels * self.channel_bandwidth_bytes_per_sec


@dataclass(frozen=True)
class CerealConfig:
    """Accelerator parameters (Table I, "Cereal Configuration")."""

    num_serializer_units: int = 8
    num_deserializer_units: int = 8
    block_reconstructors_per_du: int = 4
    clock_ghz: float = 1.0
    # Memory Access Interface: 4 KB, 32 B blocks, 64 entries (Table I).
    mai_entries: int = 64
    mai_block_bytes: int = 32
    tlb_entries: int = 128
    page_bytes: int = 1 << 30  # 1 GiB huge pages (Section V-E)
    klass_pointer_table_bytes: int = 4 * KIB  # CAM used by SUs
    class_id_table_bytes: int = 2 * KIB  # SRAM used by DUs
    max_class_types: int = 4096  # 4K entries (Section V-E)
    header_counter_bits: int = 16  # visited-tracking counter width
    value_buffer_bytes: int = 64  # object handler write granularity
    block_bytes: int = 64  # DU reconstruction granularity
    # Outstanding 64 B lines each DU stream loader keeps in flight; sized
    # by the loader's internal buffer. 8 sustains ~12 GB/s per stream.
    du_prefetch_depth: int = 8
    command_queue_depth: int = 32
    # Extra latency per demand block read for coherence "get" messages
    # (Section V-E: Cereal participates in the on-chip coherence domain
    # and fetches up-to-date copies from cache or memory). 0 models clean
    # data; the coherence ablation sweeps this.
    coherence_extra_read_ns: float = 0.0
    # "Cereal Vanilla" (Figure 10): no pipelining, one reconstructor.
    pipelined: bool = True

    def __post_init__(self) -> None:
        if self.num_serializer_units <= 0 or self.num_deserializer_units <= 0:
            raise ConfigError("unit counts must be positive")
        if self.block_reconstructors_per_du <= 0:
            raise ConfigError("block_reconstructors_per_du must be positive")
        if self.block_bytes % 8:
            raise ConfigError("block_bytes must be a multiple of the 8 B slot size")
        if self.max_class_types <= 0:
            raise ConfigError("max_class_types must be positive")

    def vanilla(self) -> "CerealConfig":
        """Configuration for the "Cereal Vanilla" ablation of Figure 10.

        Keeps operation-level parallelism (multiple units) but removes the
        SU pipelining and uses a single block reconstructor per DU.
        """
        return CerealConfig(
            num_serializer_units=self.num_serializer_units,
            num_deserializer_units=self.num_deserializer_units,
            block_reconstructors_per_du=1,
            du_prefetch_depth=1,
            coherence_extra_read_ns=self.coherence_extra_read_ns,
            clock_ghz=self.clock_ghz,
            mai_entries=self.mai_entries,
            mai_block_bytes=self.mai_block_bytes,
            tlb_entries=self.tlb_entries,
            page_bytes=self.page_bytes,
            klass_pointer_table_bytes=self.klass_pointer_table_bytes,
            class_id_table_bytes=self.class_id_table_bytes,
            max_class_types=self.max_class_types,
            header_counter_bits=self.header_counter_bits,
            value_buffer_bytes=self.value_buffer_bytes,
            block_bytes=self.block_bytes,
            command_queue_depth=self.command_queue_depth,
            pipelined=False,
        )


@dataclass(frozen=True)
class SystemConfig:
    """Complete evaluated system: host + memory + accelerator (Table I)."""

    host: HostCPUConfig = field(default_factory=HostCPUConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    cereal: CerealConfig = field(default_factory=CerealConfig)


DEFAULT_SYSTEM = SystemConfig()
