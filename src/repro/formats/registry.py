"""Type registration shared by Kryo, Skyway, and Cereal.

Kryo requires the user to register every serializable class up front; the
registry assigns dense integer class IDs and the *same registry* must be
used for deserialization (paper Section II). Skyway keeps the same mapping
but fills it automatically on first use. Cereal's ``RegisterClass`` API
(Section V-A) populates the Klass Pointer Table (CAM) and Class ID Table
(SRAM) from the same numbering, bounded by the hardware's 4K-entry limit.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.common.errors import RegistrationError, UnknownClassError
from repro.jvm.klass import Klass


class ClassRegistration:
    """Bidirectional klass <-> integer class ID mapping."""

    def __init__(self, max_entries: Optional[int] = None):
        self.max_entries = max_entries
        self._id_by_name: Dict[str, int] = {}
        self._klass_by_id: List[Klass] = []

    def register(self, klass: Klass) -> int:
        """Register ``klass``; returns its class ID. Idempotent per name."""
        existing = self._id_by_name.get(klass.name)
        if existing is not None:
            return existing
        if self.max_entries is not None and len(self._klass_by_id) >= self.max_entries:
            raise RegistrationError(
                f"type registry full ({self.max_entries} entries); "
                f"cannot register {klass.name!r}"
            )
        class_id = len(self._klass_by_id)
        self._klass_by_id.append(klass)
        self._id_by_name[klass.name] = class_id
        return class_id

    def id_of(self, klass: Klass) -> int:
        """Class ID for a registered klass; raises if unregistered."""
        try:
            return self._id_by_name[klass.name]
        except KeyError:
            raise RegistrationError(
                f"class {klass.name!r} was not registered; call register() "
                f"(Kryo/Cereal require explicit type registration)"
            ) from None

    def klass_of(self, class_id: int, offset: Optional[int] = None) -> Klass:
        """Klass for a class ID; raises :class:`UnknownClassError` otherwise.

        ``offset`` is the stream position where the ID was read, when the
        caller has one; it is carried on the error for diagnostics. A
        negative ID is rejected explicitly — Python's negative indexing
        would otherwise silently alias it onto a registered class.
        """
        if class_id < 0 or class_id >= len(self._klass_by_id):
            raise UnknownClassError(
                class_id,
                detail=f"registry holds {len(self._klass_by_id)} classes",
                offset=offset,
            )
        return self._klass_by_id[class_id]

    def is_registered(self, klass: Klass) -> bool:
        return klass.name in self._id_by_name

    def __len__(self) -> int:
        return len(self._klass_by_id)

    def __iter__(self) -> Iterator[Klass]:
        return iter(self._klass_by_id)
