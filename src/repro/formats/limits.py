"""Decode resource budgets shared by every deserializer.

A hostile stream can be tiny and still name enormous work: a 6-byte Kryo
stream can declare a 2^60-element array, a Skyway header can claim a
terabyte image, a deep object chain can exhaust the Python stack. A
:class:`DecodeLimits` budget caps each axis *before* the allocation or
recursion happens, so rejection costs O(1) regardless of what the stream
claims.

Every ``deserialize`` accepts ``limits``; ``None`` means
:data:`DEFAULT_LIMITS` — hardening is always on, with bounds generous
enough that no legitimate workload in this repo ever brushes them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ResourceLimitError


@dataclass(frozen=True)
class DecodeLimits:
    """Upper bounds a single decode call may not exceed.

    ``max_stream_bytes``    total encoded stream size accepted
    ``max_objects``         objects instantiated from one stream
    ``max_array_length``    declared length of any single array
    ``max_depth``           reference-nesting depth of the decode stack
    ``max_graph_bytes``     total heap bytes a decode may materialize
    ``max_varint_bytes``    encoded width of one varint (LEB128 u64 = 10)
    """

    max_stream_bytes: int = 1 << 30  # 1 GiB
    max_objects: int = 1 << 20  # 1M objects
    max_array_length: int = 1 << 24  # 16M elements
    max_depth: int = 4096
    max_graph_bytes: int = 2 << 30  # 2 GiB of heap
    max_varint_bytes: int = 10

    def check_stream_bytes(self, size: int) -> None:
        if size > self.max_stream_bytes:
            raise ResourceLimitError("stream_bytes", size, self.max_stream_bytes)

    def check_objects(self, count: int) -> None:
        if count > self.max_objects:
            raise ResourceLimitError("objects", count, self.max_objects)

    def check_array_length(self, length: int) -> None:
        if length > self.max_array_length:
            raise ResourceLimitError(
                "array_length", length, self.max_array_length
            )

    def check_depth(self, depth: int) -> None:
        if depth > self.max_depth:
            raise ResourceLimitError("depth", depth, self.max_depth)

    def check_graph_bytes(self, total: int) -> None:
        if total > self.max_graph_bytes:
            raise ResourceLimitError("graph_bytes", total, self.max_graph_bytes)


DEFAULT_LIMITS = DecodeLimits()


def resolve_limits(limits: Optional[DecodeLimits]) -> DecodeLimits:
    """Map ``None`` to the default budget (hardening is never off)."""
    return DEFAULT_LIMITS if limits is None else limits
