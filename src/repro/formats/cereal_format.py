"""The Cereal serialization format (paper Section IV, Figures 4 and 5).

The stream decouples three structures so hardware can process them in
parallel (value copying and reference adjustment become independent):

* **value array** — every *value* slot of every object, in image order:
  the mark word, the class-ID word (the klass pointer translated through
  the Klass Pointer Table), the zeroed Cereal extension word, and all
  primitive field slots, each 8 B;
* **reference array** — one entry per *reference* slot in image order: the
  target's relative address in the deserialized image (biased by +1 so 0
  encodes null), packed with the Section IV-B scheme;
* **layout bitmaps** — per-object bitmaps, one bit per 8 B slot (1 =
  reference), packed with the same scheme. A bitmap's bit length times 8 is
  the object's size, so no separate size table is needed.

Objects appear in **breadth-first** order — the order the hardware's header
manager queue discovers them (Section V-B).

Stream framing (all little-endian):

    u32 graph_total_bytes     u32 object_count
    u32 value_array_bytes     value array
    u32 ref_data_bytes        u32 ref_end_map_bytes      u32 ref_count
    packed references         reference end map
    u32 bitmap_data_bytes     u32 bitmap_end_map_bytes
    packed layout bitmaps     bitmap end map

This module is the *functional reference implementation*; the cycle-level
model in :mod:`repro.cereal` produces identical bytes while accounting time.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional

from repro.common.bufpool import acquire_buffer, release_buffer
from repro.common.errors import (
    FormatError,
    RegistrationError,
    TruncatedStreamError,
)
from repro.formats.base import (
    DeserializationResult,
    SerializationResult,
    SerializedStream,
    Serializer,
    WorkProfile,
)
from repro.common.bitstream import bits_to_word, word_to_bits
from repro.common.bitutils import bytes_to_bits
from repro.formats import codegen as CG
from repro.formats import plans as P
from repro.formats.packing import (
    PackedArray,
    pack_bitmap_words,
    pack_items,
    unpack_bitmap_words,
    unpack_items,
)
from repro.formats.limits import DecodeLimits, resolve_limits
from repro.jvm.layout_cache import layout_of
from repro.formats.registry import ClassRegistration
from repro.jvm.graph import ObjectGraph, SlotRunGraph
from repro.jvm.heap import Heap, HeapObject, NULL_ADDRESS
from repro.jvm.klass import ArrayKlass, SLOT_BYTES
from repro.jvm.markword import MarkWord, identity_hash_for

SECTION_META = "metadata"
SECTION_VALUES = "value_array"
SECTION_REFS = "reference_array"
SECTION_REF_END_MAP = "reference_end_map"
SECTION_BITMAPS = "layout_bitmap"
SECTION_BITMAP_END_MAP = "bitmap_end_map"

_MARK_SLOT = 0
_KLASS_SLOT = 1

# Stream framing flags (one byte after the graph size / object count).
_FLAG_PACKED = 0x01
_FLAG_MARK_STRIPPED = 0x02

_INSTR_PER_OBJECT = 20
_INSTR_PER_SLOT = 2


@dataclass
class CerealStreamSections:
    """Decoded views of a Cereal stream's three structures.

    ``packed`` selects which representation is populated: the optimized
    Section IV-B format carries :class:`PackedArray`s, the Section IV-A
    baseline carries raw 8 B reference words and length-prefixed bitmaps.
    """

    graph_total_bytes: int
    object_count: int
    value_words: List[int]
    references: Optional[PackedArray] = None
    bitmaps: Optional[PackedArray] = None
    packed: bool = True
    mark_stripped: bool = False
    raw_references: Optional[List[int]] = None
    raw_bitmaps: Optional[List[List[int]]] = None

    def reference_values(self) -> List[int]:
        """Reference-array entries (relative+1, 0=null), either format."""
        if self.packed:
            assert self.references is not None
            return unpack_items(self.references)
        assert self.raw_references is not None
        return list(self.raw_references)

    def layout_bitmaps(self) -> List[List[int]]:
        """Per-object layout bitmaps, either format."""
        return [
            word_to_bits(word, width)
            for word, width in self.layout_bitmap_words()
        ]

    def layout_bitmap_words(self) -> List[tuple]:
        """Per-object layout bitmaps as ``(word, width)`` pairs (fast path)."""
        if self.packed:
            assert self.bitmaps is not None
            return unpack_bitmap_words(self.bitmaps)
        assert self.raw_bitmaps is not None
        return [bits_to_word(bitmap) for bitmap in self.raw_bitmaps]

    @property
    def reference_count(self) -> int:
        if self.packed:
            assert self.references is not None
            return self.references.item_count
        assert self.raw_references is not None
        return len(self.raw_references)


class CerealSerializer(Serializer):
    """Functional model of Cereal's S/D with the optimized packed format.

    ``RegisterClass`` must be called for every serializable type, mirroring
    the hardware's Klass Pointer Table / Class ID Table population
    (Section V-A); the tables bound the number of types (Section V-E).

    ``strip_mark_word=True`` enables the header-strip size optimization of
    Figure 16: mark words are dropped from the value array and rebuilt at
    the receiver (identity hashes change).
    """

    name = "cereal"

    def __init__(
        self,
        registration: Optional[ClassRegistration] = None,
        max_class_types: int = 4096,
        strip_mark_word: bool = False,
        use_packing: bool = True,
        use_plans: bool = True,
        use_codegen: bool = False,
    ):
        if registration is None:
            registration = ClassRegistration(max_entries=max_class_types)
        self.registration = registration
        self.strip_mark_word = strip_mark_word
        # use_packing=False emits the Section IV-A baseline format: raw
        # 8 B reference offsets and an 8 B length word per layout bitmap.
        self.use_packing = use_packing
        # use_plans=True routes hot paths through compiled per-shape plans
        # (repro.formats.plans); streams are byte-identical either way.
        self.use_plans = use_plans
        # use_codegen=True runs serialize through generated per-shape gather
        # kernels (repro.formats.codegen) — one compiled tuple expression per
        # (klass, length) shape. Deserialize stays on the plan path: its hot
        # loop is already a single bulk-slice per reference-free object.
        self.use_codegen = use_codegen

    def register_class(self, klass) -> int:
        """The paper's ``RegisterClass(Class Type)`` API."""
        return self.registration.register(klass)

    # ------------------------------------------------------------------ serialize

    def serialize(self, root: HeapObject) -> SerializationResult:
        if self.use_codegen:
            return self._serialize_codegen(root)
        if self.use_plans:
            return self._serialize_planned(root)
        graph = ObjectGraph.from_root(root, order="bfs")
        profile = WorkProfile()
        heap = root.heap
        memory = heap.memory
        header_slots = heap.header_slots

        value_words: List[int] = []
        reference_values: List[int] = []
        bitmap_words: List[tuple] = []
        relative_address = graph.relative_address

        for obj in graph:
            profile.objects += 1
            profile.add_instructions(_INSTR_PER_OBJECT)
            if not self.registration.is_registered(obj.klass):
                raise RegistrationError(
                    f"class {obj.klass.name!r} not registered with Cereal; "
                    f"call register_class() first"
                )
            class_id = self.registration.id_of(obj.klass)
            # All per-shape metadata comes from the memoized klass layout;
            # the whole object image is read in one bulk word access.
            layout = layout_of(obj.klass, header_slots, obj.length)
            bitmap_words.append((layout.bitmap_word, layout.bitmap_width))
            words = memory.read_words(obj.address, layout.total_slots)
            profile.add_instructions(_INSTR_PER_SLOT * layout.total_slots)

            if not self.strip_mark_word:
                value_words.append(words[_MARK_SLOT])
            value_words.append(class_id)
            value_words.extend([0] * (header_slots - 2))  # zeroed extension
            reference_slot_set = layout.reference_slot_set
            for field_slot in range(layout.field_slots):
                raw = words[header_slots + field_slot]
                if field_slot in reference_slot_set:
                    profile.reference_fields += 1
                    if raw == NULL_ADDRESS:
                        reference_values.append(0)
                    else:
                        reference_values.append(relative_address[raw] + 1)
                else:
                    profile.value_fields += 1
                    value_words.append(raw)

        return self._assemble_stream(
            value_words,
            reference_values,
            bitmap_words,
            graph.total_bytes,
            graph.object_count,
            profile,
        )

    def _serialize_planned(self, root: HeapObject) -> SerializationResult:
        """Plan-path serialize: per-shape gather lists over bulk word reads.

        Each distinct ``(klass, length)`` shape compiles once (process-wide
        cache) into precomputed value/reference word-index tuples, so the
        per-object work is two index-gather loops instead of a per-slot
        bitmap classification. Streams and profiles are identical to the
        interpreter path.
        """
        graph = SlotRunGraph.from_root(root, order="bfs")
        profile = WorkProfile()
        heap = root.heap
        read_words = heap.memory.read_words
        header_slots = heap.header_slots
        registration = self.registration
        relative_address = graph.relative_address
        strip_mark = self.strip_mark_word
        extension = [0] * (header_slots - 2)  # zeroed Cereal extension words

        value_words: List[int] = []
        reference_values: List[int] = []
        bitmap_words: List[tuple] = []
        append_value = value_words.append
        extend_values = value_words.extend
        append_ref = reference_values.append
        # Per-call memo over the process-wide cache: one probe per shape.
        plans: dict = {}
        class_ids: dict = {}

        for obj in graph.objects:
            klass = obj.klass
            shape = (klass, obj.length)
            plan = plans.get(shape)
            if plan is None:
                if not registration.is_registered(klass):
                    raise RegistrationError(
                        f"class {klass.name!r} not registered with Cereal; "
                        f"call register_class() first"
                    )
                plan = P.plan_for("cereal", klass, header_slots, obj.length)
                plans[shape] = plan
                class_ids[shape] = registration.id_of(klass)
            profile.objects += 1
            profile.add_instructions(plan.instr)
            bitmap_words.append((plan.bitmap_word, plan.bitmap_width))
            words = read_words(obj.address, plan.total_slots)

            if not strip_mark:
                append_value(words[_MARK_SLOT])
            append_value(class_ids[shape])
            if extension:
                extend_values(extension)
            for index in plan.value_word_indices:
                append_value(words[index])
            for index in plan.ref_word_indices:
                raw = words[index]
                if raw == NULL_ADDRESS:
                    append_ref(0)
                else:
                    append_ref(relative_address[raw] + 1)
            profile.value_fields += plan.n_value
            profile.reference_fields += plan.n_ref

        return self._assemble_stream(
            value_words,
            reference_values,
            bitmap_words,
            graph.total_bytes,
            graph.object_count,
            profile,
        )

    def _serialize_codegen(self, root: HeapObject) -> SerializationResult:
        """Codegen-path serialize: one generated gather call per object.

        Each ``(klass, length)`` shape compiles once into a tuple-literal
        expression that slices the bulk-read word image into the value and
        reference structures in a single call — no per-slot Python loop.
        Shapes whose gather exceeds the chunk cap fall back to the plan
        gather loop. Streams and profiles match the interpreter exactly.
        """
        graph = SlotRunGraph.from_root(root, order="bfs")
        profile = WorkProfile()
        heap = root.heap
        read_words = heap.memory.read_words
        header_slots = heap.header_slots
        registration = self.registration
        relative_address = graph.relative_address
        strip_mark = self.strip_mark_word

        value_words: List[int] = []
        reference_values: List[int] = []
        bitmap_words: List[tuple] = []
        extend_values = value_words.extend
        append_value = value_words.append
        append_ref = reference_values.append
        append_bitmap = bitmap_words.append
        extension = [0] * (header_slots - 2)

        # shape -> [gather, class_id, plan, count, (bitmap_word, width)]
        cells: dict = {}

        for obj in graph.objects:
            klass = obj.klass
            shape = (klass, obj.length)
            cell = cells.get(shape)
            if cell is None:
                if not registration.is_registered(klass):
                    raise RegistrationError(
                        f"class {klass.name!r} not registered with Cereal; "
                        f"call register_class() first"
                    )
                plan = P.plan_for("cereal", klass, header_slots, obj.length)
                kernel = CG.cereal_kernel_for(
                    klass, header_slots, obj.length, strip_mark, plan
                )
                cell = [
                    kernel.gather,
                    registration.id_of(klass),
                    plan,
                    0,
                    (plan.bitmap_word, plan.bitmap_width),
                ]
                cells[shape] = cell
            cell[3] += 1
            append_bitmap(cell[4])
            plan = cell[2]
            words = read_words(obj.address, plan.total_slots)
            gather = cell[0]
            if gather is not None:
                vals, refs = gather(words, cell[1])
                extend_values(vals)
                for raw in refs:
                    if raw == NULL_ADDRESS:
                        append_ref(0)
                    else:
                        append_ref(relative_address[raw] + 1)
            else:
                # Chunk-cap fallback: plan-style index gather.
                if not strip_mark:
                    append_value(words[_MARK_SLOT])
                append_value(cell[1])
                if extension:
                    extend_values(extension)
                for index in plan.value_word_indices:
                    append_value(words[index])
                for index in plan.ref_word_indices:
                    raw = words[index]
                    if raw == NULL_ADDRESS:
                        append_ref(0)
                    else:
                        append_ref(relative_address[raw] + 1)

        objects = 0
        instr = 0
        value_fields = 0
        reference_fields = 0
        for cell in cells.values():
            count = cell[3]
            plan = cell[2]
            objects += count
            instr += count * plan.instr
            value_fields += count * plan.n_value
            reference_fields += count * plan.n_ref
        profile.objects = objects
        profile.add_instructions(instr)
        profile.value_fields = value_fields
        profile.reference_fields = reference_fields

        return self._assemble_stream(
            value_words,
            reference_values,
            bitmap_words,
            graph.total_bytes,
            graph.object_count,
            profile,
        )

    def _assemble_stream(
        self,
        value_words: List[int],
        reference_values: List[int],
        bitmap_words: List[tuple],
        graph_total_bytes: int,
        object_count: int,
        profile: WorkProfile,
    ) -> SerializationResult:
        """Frame the three gathered structures into the output stream.

        Shared by the interpreter and plan serialize paths so the byte
        format stays single-source. Output bytes accumulate in a pooled
        arena instead of a fresh list-of-chunks join per call.
        """
        value_bytes = struct.pack(f"<{len(value_words)}Q", *value_words)
        flags = (_FLAG_PACKED if self.use_packing else 0) | (
            _FLAG_MARK_STRIPPED if self.strip_mark_word else 0
        )
        header = struct.pack("<IIB", graph_total_bytes, object_count, flags)
        value_frame = struct.pack("<I", len(value_bytes))

        if self.use_packing:
            packed_refs = pack_items(reference_values)
            packed_bitmaps = pack_bitmap_words(bitmap_words)
            ref_frame = struct.pack(
                "<III",
                len(packed_refs.data),
                len(packed_refs.end_map),
                packed_refs.item_count,
            )
            bitmap_frame = struct.pack(
                "<II", len(packed_bitmaps.data), len(packed_bitmaps.end_map)
            )
            ref_payload = [packed_refs.data, packed_refs.end_map]
            bitmap_payload = [packed_bitmaps.data, packed_bitmaps.end_map]
            sections_refs = {
                SECTION_REFS: len(packed_refs.data),
                SECTION_REF_END_MAP: len(packed_refs.end_map),
                SECTION_BITMAPS: len(packed_bitmaps.data),
                SECTION_BITMAP_END_MAP: len(packed_bitmaps.end_map),
            }
        else:
            # Baseline (Section IV-A): 8 B per reference, and each bitmap
            # stored as an 8 B bit-length word plus its raw bytes.
            ref_bytes = struct.pack(
                f"<{len(reference_values)}Q", *reference_values
            )
            bitmap_chunks = []
            for word, width in bitmap_words:
                nbytes = (width + 7) // 8
                bitmap_chunks.append(struct.pack("<Q", width))
                bitmap_chunks.append(
                    (word << (nbytes * 8 - width)).to_bytes(nbytes, "big")
                )
            bitmap_bytes = b"".join(bitmap_chunks)
            ref_frame = struct.pack("<I", len(reference_values))
            bitmap_frame = struct.pack("<I", len(bitmap_bytes))
            ref_payload = [ref_bytes]
            bitmap_payload = [bitmap_bytes]
            sections_refs = {
                SECTION_REFS: len(ref_bytes),
                SECTION_BITMAPS: len(bitmap_bytes),
            }

        out = acquire_buffer()
        out += header
        out += value_frame
        out += value_bytes
        out += ref_frame
        for chunk in ref_payload:
            out += chunk
        out += bitmap_frame
        for chunk in bitmap_payload:
            out += chunk
        data = bytes(out)
        release_buffer(out)
        sections = {
            SECTION_META: len(header)
            + len(value_frame)
            + len(ref_frame)
            + len(bitmap_frame),
            SECTION_VALUES: len(value_bytes),
        }
        sections.update(sections_refs)
        profile.bytes_read = graph_total_bytes
        profile.bytes_written = len(data)
        profile.add_instructions(len(data) // 4)
        stream = SerializedStream(
            format_name=self.name,
            data=data,
            sections=sections,
            object_count=object_count,
            graph_bytes=graph_total_bytes,
        )
        stream.check_sections()
        return SerializationResult(stream, profile)

    # -------------------------------------------------------------- stream decoding

    @staticmethod
    def decode_sections(stream: SerializedStream) -> CerealStreamSections:
        """Parse the framing into the three structures (no object rebuild)."""
        data = stream.data
        if len(data) < 13:
            raise FormatError("Cereal stream too short for framing")
        offset = 0

        def take(count: int) -> bytes:
            nonlocal offset
            if offset + count > len(data):
                raise TruncatedStreamError(
                    offset=offset, needed=count, available=len(data) - offset
                )
            out = data[offset : offset + count]
            offset += count
            return out

        graph_total, object_count, flags = struct.unpack("<IIB", take(9))
        packed = bool(flags & _FLAG_PACKED)
        mark_stripped = bool(flags & _FLAG_MARK_STRIPPED)
        (value_len,) = struct.unpack("<I", take(4))
        if value_len % SLOT_BYTES:
            raise FormatError("value array length not slot aligned")
        value_bytes = take(value_len)
        value_words = list(
            struct.unpack(f"<{value_len // SLOT_BYTES}Q", value_bytes)
        )
        if packed:
            ref_data_len, ref_end_len, ref_count = struct.unpack("<III", take(12))
            references = PackedArray(
                data=take(ref_data_len),
                end_map=take(ref_end_len),
                item_count=ref_count,
            )
            bitmap_data_len, bitmap_end_len = struct.unpack("<II", take(8))
            bitmaps = PackedArray(
                data=take(bitmap_data_len),
                end_map=take(bitmap_end_len),
                item_count=object_count,
            )
            raw_references = None
            raw_bitmaps = None
        else:
            references = None
            bitmaps = None
            (ref_count,) = struct.unpack("<I", take(4))
            raw_references = list(
                struct.unpack(f"<{ref_count}Q", take(ref_count * 8))
            )
            (bitmap_len,) = struct.unpack("<I", take(4))
            bitmap_blob = take(bitmap_len)
            raw_bitmaps = []
            cursor = 0
            for _ in range(object_count):
                if cursor + 8 > len(bitmap_blob):
                    raise FormatError("baseline bitmap table truncated")
                (bit_length,) = struct.unpack(
                    "<Q", bitmap_blob[cursor : cursor + 8]
                )
                cursor += 8
                byte_length = (bit_length + 7) // 8
                chunk = bitmap_blob[cursor : cursor + byte_length]
                if len(chunk) != byte_length:
                    raise FormatError("baseline bitmap truncated")
                cursor += byte_length
                raw_bitmaps.append(bytes_to_bits(chunk, bit_count=bit_length))
            if cursor != len(bitmap_blob):
                raise FormatError("trailing bytes in baseline bitmap table")
        if offset != len(data):
            raise FormatError(f"{len(data) - offset} trailing bytes in Cereal stream")
        return CerealStreamSections(
            graph_total_bytes=graph_total,
            object_count=object_count,
            value_words=value_words,
            references=references,
            bitmaps=bitmaps,
            packed=packed,
            mark_stripped=mark_stripped,
            raw_references=raw_references,
            raw_bitmaps=raw_bitmaps,
        )

    # ---------------------------------------------------------------- deserialize

    def deserialize(
        self,
        stream: SerializedStream,
        heap: Heap,
        limits: Optional[DecodeLimits] = None,
    ) -> DeserializationResult:
        limits = resolve_limits(limits)
        limits.check_stream_bytes(len(stream.data))
        sections = self.decode_sections(stream)
        profile = WorkProfile()
        if sections.object_count == 0:
            raise FormatError("empty Cereal stream")
        limits.check_objects(sections.object_count)
        limits.check_graph_bytes(sections.graph_total_bytes)

        references = sections.reference_values()
        bitmap_items = sections.layout_bitmap_words()
        if len(bitmap_items) != sections.object_count:
            raise FormatError(
                f"header claims {sections.object_count} objects, bitmap "
                f"table holds {len(bitmap_items)}"
            )
        base = heap.reserve(sections.graph_total_bytes)
        memory = heap.memory
        header_slots = heap.header_slots
        value_words_in = sections.value_words
        value_count = len(value_words_in)

        value_cursor = 0
        ref_cursor = 0
        offset = 0
        root_obj: Optional[HeapObject] = None
        reference_slot_addresses = []  # (slot address, relative) to validate
        # Reference-free objects (the common case in array-heavy workloads)
        # take a bulk-slice path: the memoized bitmap classification says
        # "no reference slots", so the whole image is a contiguous run of
        # the value array. Mark-stripped streams rebuild the mark word per
        # object and stay on the per-slot loop.
        use_fast = self.use_plans and not sections.mark_stripped

        for bitmap_word, bitmap_width in bitmap_items:
            address = base + offset
            profile.objects += 1
            profile.allocations += 1
            profile.add_instructions(_INSTR_PER_OBJECT)
            if bitmap_width < header_slots:
                raise FormatError("layout bitmap smaller than the object header")
            if offset + bitmap_width * SLOT_BYTES > sections.graph_total_bytes:
                # A lying bitmap would otherwise let the image walk write
                # past the reserved region into unrelated heap memory.
                raise FormatError(
                    f"object at image offset {offset} extends past the "
                    f"{sections.graph_total_bytes}-byte image"
                )
            klass = None
            if use_fast and not P.bitmap_reference_slots(bitmap_word, bitmap_width):
                end = value_cursor + bitmap_width
                if end > value_count:
                    raise FormatError("value array exhausted mid-object")
                slot_words = value_words_in[value_cursor:end]
                value_cursor = end
                klass = self.registration.klass_of(slot_words[_KLASS_SLOT])
                assert klass.metaspace_address is not None
                slot_words[_KLASS_SLOT] = klass.metaspace_address
                profile.add_instructions(_INSTR_PER_SLOT * bitmap_width)
                profile.value_fields += bitmap_width
                memory.write_words(address, slot_words)
                length = 0
                if isinstance(klass, ArrayKlass):
                    length = slot_words[header_slots]
                obj = heap.register_object(address, klass, length)
                if root_obj is None:
                    root_obj = obj
                if obj.size_bytes != bitmap_width * SLOT_BYTES:
                    raise FormatError(
                        f"bitmap length {bitmap_width} disagrees with object size "
                        f"{obj.size_bytes} for {klass.name}"
                    )
                offset += obj.size_bytes
                continue
            # Assemble the whole object image in Python, then commit it to
            # simulated memory with one bulk word write.
            slot_words = []
            for slot in range(bitmap_width):
                profile.add_instructions(_INSTR_PER_SLOT)
                if (bitmap_word >> (bitmap_width - 1 - slot)) & 1:
                    relative = references[ref_cursor]
                    ref_cursor += 1
                    profile.reference_fields += 1
                    if relative == 0:
                        slot_words.append(NULL_ADDRESS)
                    else:
                        slot_words.append(base + relative - 1)
                        reference_slot_addresses.append(
                            (address + slot * SLOT_BYTES, relative - 1)
                        )
                    continue
                if slot == _MARK_SLOT and sections.mark_stripped:
                    # Header strip: rebuild the mark word at the receiver.
                    word = MarkWord(
                        identity_hash=identity_hash_for(address)
                    ).encode()
                    profile.add_instructions(12)
                elif value_cursor < value_count:
                    word = value_words_in[value_cursor]
                    value_cursor += 1
                else:
                    raise FormatError("value array exhausted mid-object")
                if slot == _KLASS_SLOT:
                    # Class ID Table lookup: class ID -> klass address.
                    klass = self.registration.klass_of(word)
                    assert klass.metaspace_address is not None
                    slot_words.append(klass.metaspace_address)
                else:
                    slot_words.append(word)
                profile.value_fields += 1
            memory.write_words(address, slot_words)

            if klass is None:
                raise FormatError("object bitmap marks the klass slot as reference")
            length = 0
            if isinstance(klass, ArrayKlass):
                length = slot_words[header_slots]
            obj = heap.register_object(address, klass, length)
            if root_obj is None:
                root_obj = obj
            if obj.size_bytes != bitmap_width * SLOT_BYTES:
                raise FormatError(
                    f"bitmap length {bitmap_width} disagrees with object size "
                    f"{obj.size_bytes} for {klass.name}"
                )
            offset += obj.size_bytes

        if offset != sections.graph_total_bytes:
            raise FormatError(
                f"image walked {offset} bytes, header said "
                f"{sections.graph_total_bytes}"
            )
        if ref_cursor != len(references):
            raise FormatError("unconsumed reference-array entries")
        if value_cursor != len(sections.value_words):
            raise FormatError("unconsumed value-array words")
        # Validate every reference against the materialized object starts
        # so a corrupted stream cannot leave dangling references behind.
        valid_offsets = set()
        cursor = 0
        for _, bitmap_width in bitmap_items:
            valid_offsets.add(cursor)
            cursor += bitmap_width * SLOT_BYTES
        for slot_address, relative in reference_slot_addresses:
            if relative not in valid_offsets:
                raise FormatError(
                    f"reference offset {relative} does not target an object"
                )

        assert root_obj is not None
        profile.bytes_read = len(stream.data)
        profile.bytes_written = sections.graph_total_bytes
        profile.add_instructions(sections.graph_total_bytes // 8)
        return DeserializationResult(root_obj, profile)
