"""Hardened, versioned deserialization (`repro.formats.secure`).

Two defenses layered over the format implementations:

**Transactional decode** — :func:`secure_deserialize` wraps any
:class:`~repro.formats.base.Serializer`: the stream is unframed (CRC
verified) when framed, decoded under a :class:`DecodeLimits` budget, and —
on *any* failure — the heap is rolled back to the pre-decode checkpoint, so
a hostile stream can never leave partially-materialized objects behind.
Every rejection is re-raised as a typed :class:`FormatError` subtype and
counted in `repro.obs` as ``decode.rejected{reason,format}``.

**Schema evolution** — :class:`VersionedKryo` writes a schema header in
front of the Kryo payload: one fingerprinted descriptor per registered
class (name, fields, kinds). On decode the *writer's* schema is resolved
against the *reader's* registry:

* fingerprints all match and class IDs align → the payload is handed to
  the plan-kernel Kryo decoder untouched (identity fast path);
* field added by the reader → decoded as its zero default;
* field removed by the reader → decoded per the writer's schema and
  discarded (reference subtrees are still fully parsed so back-reference
  numbering stays consistent);
* fields reordered → matched by name;
* same-name field with a different kind, or an array whose element kind
  changed → :class:`SchemaMismatchError`;
* writer class the reader never registered → :class:`UnknownClassError`.

Resolutions are counted as ``schema.resolved{outcome}``.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import (
    CorruptionError,
    FormatError,
    HeapError,
    MalformedVarintError,
    RegistrationError,
    ResourceLimitError,
    SchemaMismatchError,
    TruncatedStreamError,
    UnknownClassError,
)
from repro.formats.base import (
    DeserializationResult,
    SerializationResult,
    SerializedStream,
    Serializer,
    WorkProfile,
)
from repro.formats.kryo import (
    KryoSerializer,
    MARK_ARRAY,
    MARK_BACKREF,
    MARK_NULL,
    MARK_OBJECT,
)
from repro.formats.limits import DEFAULT_LIMITS, DecodeLimits, resolve_limits
from repro.formats.registry import ClassRegistration
from repro.formats.streams import StreamReader, StreamWriter
from repro.jvm.heap import Heap, HeapObject
from repro.jvm.klass import ArrayKlass, FieldKind, InstanceKlass, Klass
from repro.obs.metrics import get_registry

__all__ = [
    "DEFAULT_LIMITS",
    "DecodeLimits",
    "VersionedKryo",
    "decode_stats",
    "schema_fingerprint",
    "secure_deserialize",
    "secure_deserialize_chunks",
]

# Rejection reasons, most specific first: label values for
# ``decode.rejected{reason=...}`` and the keys of decode_stats().
REASON_TRUNCATED = "truncated"
REASON_VARINT = "varint"
REASON_UNKNOWN_CLASS = "unknown_class"
REASON_RESOURCE_LIMIT = "resource_limit"
REASON_SCHEMA = "schema"
REASON_CORRUPTION = "corruption"
REASON_MALFORMED = "malformed"

# Python-level faults a malformed stream could still trip inside a decoder
# (bad struct counts, list overruns, unicode garbage, recursion depth).
# All are converted to FormatError so rejection is always typed.
_WRAPPABLE = (
    struct.error,
    ValueError,
    IndexError,
    KeyError,
    TypeError,
    OverflowError,
    MemoryError,
    RecursionError,
)


def classify_rejection(error: BaseException) -> str:
    """Map an exception raised during decode to its rejection-reason label."""
    if isinstance(error, TruncatedStreamError):
        return REASON_TRUNCATED
    if isinstance(error, MalformedVarintError):
        return REASON_VARINT
    if isinstance(error, UnknownClassError):
        return REASON_UNKNOWN_CLASS
    if isinstance(error, ResourceLimitError):
        return REASON_RESOURCE_LIMIT
    if isinstance(error, SchemaMismatchError):
        return REASON_SCHEMA
    if isinstance(error, CorruptionError):
        return REASON_CORRUPTION
    if isinstance(error, (HeapError,)):
        return REASON_RESOURCE_LIMIT
    if isinstance(error, RegistrationError):
        return REASON_UNKNOWN_CLASS
    return REASON_MALFORMED


def secure_deserialize(
    serializer: Serializer,
    stream: SerializedStream,
    heap: Heap,
    limits: Optional[DecodeLimits] = None,
) -> DeserializationResult:
    """Decode ``stream`` transactionally: typed rejection, no partial heap.

    On success the result is returned and ``decode.accepted`` incremented.
    On *any* failure the heap is rolled back to its pre-call state, the
    failure is counted as ``decode.rejected{reason,format}``, and a
    :class:`FormatError` subtype is raised — untyped Python faults from a
    malformed stream are wrapped, never propagated raw.
    """
    limits = resolve_limits(limits)
    registry = get_registry()
    token = heap.checkpoint()
    try:
        limits.check_stream_bytes(len(stream.data))
        payload = stream.unframed() if stream.is_framed else stream
        result = serializer.deserialize(payload, heap, limits=limits)
    except Exception as error:
        heap.rollback(token)
        reason = classify_rejection(error)
        registry.counter(
            "decode.rejected", format=serializer.name, reason=reason
        ).inc()
        if isinstance(error, FormatError):
            raise
        if isinstance(error, HeapError):
            raise ResourceLimitError(
                "heap_bytes", str(error), heap.memory.size_bytes
            ) from error
        if isinstance(error, RegistrationError):
            raise UnknownClassError("?", detail=str(error)) from error
        if isinstance(error, _WRAPPABLE):
            raise FormatError(
                f"malformed stream: {type(error).__name__}: {error}"
            ) from error
        raise
    registry.counter("decode.accepted", format=serializer.name).inc()
    return result


def secure_deserialize_chunks(
    serializer: Serializer,
    chunks,
    heap: Heap,
    limits: Optional[DecodeLimits] = None,
) -> DeserializationResult:
    """Transactionally decode a sequence of CRC-framed chunks.

    Streaming front end of :func:`secure_deserialize`: each chunk's frame
    is verified (magic, header/payload CRC, strict sequence order) and
    ``DecodeLimits.max_stream_bytes`` is charged incrementally as chunks
    arrive, so a hostile or over-budget stream is rejected *at the
    offending chunk* — later chunks are never read. A stream whose
    LAST-flagged chunk never arrives raises
    :class:`TruncatedStreamError` at the point it went dark. The
    reassembled payload (zero-copy into the decoders via the
    buffer-protocol :class:`StreamReader`) then runs through the same
    checkpoint/rollback decode as the whole-stream path, so rejection
    counters and heap guarantees are shared, not parallel.
    """
    limits = resolve_limits(limits)
    registry = get_registry()
    from repro.formats.chunked import ChunkAssembler

    assembler = ChunkAssembler(limits)
    try:
        for chunk in chunks:
            assembler.push(chunk)
        payload = assembler.payload()
    except Exception as error:
        reason = classify_rejection(error)
        registry.counter(
            "decode.rejected", format=serializer.name, reason=reason
        ).inc()
        if isinstance(error, FormatError):
            raise
        if isinstance(error, _WRAPPABLE):
            raise FormatError(
                f"malformed chunk stream: {type(error).__name__}: {error}"
            ) from error
        raise
    stream = SerializedStream(
        format_name=serializer.name, data=payload, sections={}
    )
    return secure_deserialize(serializer, stream, heap, limits=limits)


def decode_stats() -> Dict[str, object]:
    """Aggregated decode/schema counters for ``runtime_snapshot()``.

    Returns ``accepted``/``rejected`` totals, a rejection breakdown by
    reason, and the schema-resolution outcome counts, parsed out of the
    process-wide metrics registry.
    """
    accepted = 0
    rejected = 0
    by_reason: Dict[str, int] = {}
    schema: Dict[str, int] = {}
    for key, value in get_registry().snapshot().items():
        if not isinstance(value, int):
            continue
        if key.startswith("decode.accepted"):
            accepted += value
        elif key.startswith("decode.rejected"):
            rejected += value
            for part in key[key.find("{") + 1 : key.rfind("}")].split(","):
                if part.startswith("reason="):
                    reason = part[len("reason=") :]
                    by_reason[reason] = by_reason.get(reason, 0) + value
        elif key.startswith("schema.resolved"):
            for part in key[key.find("{") + 1 : key.rfind("}")].split(","):
                if part.startswith("outcome="):
                    outcome = part[len("outcome=") :]
                    schema[outcome] = schema.get(outcome, 0) + value
    return {
        "accepted": accepted,
        "rejected": rejected,
        "rejected_by_reason": dict(sorted(by_reason.items())),
        "schema_resolutions": dict(sorted(schema.items())),
    }


# -- schema fingerprints and the versioned header ------------------------------------

SCHEMA_MAGIC = b"CSV1"
_SECTION_SCHEMA = "schema"
_MAX_HEADER_CLASSES = 65535
_MAX_HEADER_FIELDS = 4096

_KIND_CODES = {kind: code for code, kind in enumerate(FieldKind)}
_KIND_BY_CODE = {code: kind for kind, code in _KIND_CODES.items()}


def schema_fingerprint(klass: Klass) -> int:
    """Deterministic 64-bit digest of a class's serialized shape.

    Covers the class name plus either the array element kind or the ordered
    (field name, field kind) list — exactly the inputs that change the wire
    encoding, nothing else.
    """
    h = hashlib.sha256(b"repro-schema-v1\x00")
    h.update(klass.name.encode("utf-8"))
    if isinstance(klass, ArrayKlass):
        h.update(b"\x00[]")
        h.update(klass.element_kind.value.encode("utf-8"))
    else:
        assert isinstance(klass, InstanceKlass)
        for descriptor in klass.fields:
            h.update(b"\x00")
            h.update(descriptor.name.encode("utf-8"))
            h.update(b":")
            h.update(descriptor.kind.value.encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "little")


@dataclass
class WriterClassSchema:
    """One class as the *writer* described it in the stream header."""

    name: str
    fingerprint: int
    element_kind: Optional[FieldKind]  # set for arrays, None for instances
    fields: Tuple[Tuple[str, FieldKind], ...]  # () for arrays

    @property
    def is_array(self) -> bool:
        return self.element_kind is not None


def write_schema_header(
    writer: StreamWriter, registration: ClassRegistration
) -> None:
    """Append the versioned schema header for every registered class."""
    writer.write_bytes(SCHEMA_MAGIC, _SECTION_SCHEMA)
    writer.write_varint(len(registration), _SECTION_SCHEMA)
    for klass in registration:
        writer.write_utf(klass.name, _SECTION_SCHEMA)
        writer.write_u64(schema_fingerprint(klass), _SECTION_SCHEMA)
        if isinstance(klass, ArrayKlass):
            writer.write_u8(1, _SECTION_SCHEMA)
            writer.write_u8(_KIND_CODES[klass.element_kind], _SECTION_SCHEMA)
        else:
            assert isinstance(klass, InstanceKlass)
            writer.write_u8(0, _SECTION_SCHEMA)
            writer.write_varint(len(klass.fields), _SECTION_SCHEMA)
            for descriptor in klass.fields:
                writer.write_utf(descriptor.name, _SECTION_SCHEMA)
                writer.write_u8(_KIND_CODES[descriptor.kind], _SECTION_SCHEMA)


def read_schema_header(reader: StreamReader) -> List[WriterClassSchema]:
    """Parse the schema header; every read is bounds-checked."""
    if reader.read_bytes(4) != SCHEMA_MAGIC:
        raise FormatError("bad schema header magic")
    n_classes = reader.read_varint()
    if n_classes > _MAX_HEADER_CLASSES:
        raise ResourceLimitError("header_classes", n_classes, _MAX_HEADER_CLASSES)
    out: List[WriterClassSchema] = []
    for _ in range(n_classes):
        name = reader.read_utf()
        fingerprint = reader.read_u64()
        is_array = reader.read_u8()
        if is_array not in (0, 1):
            raise FormatError(f"bad schema array flag {is_array:#x}")
        if is_array:
            code = reader.read_u8()
            kind = _KIND_BY_CODE.get(code)
            if kind is None:
                raise FormatError(f"unknown field-kind code {code:#x}")
            out.append(WriterClassSchema(name, fingerprint, kind, ()))
            continue
        n_fields = reader.read_varint()
        if n_fields > _MAX_HEADER_FIELDS:
            raise ResourceLimitError("header_fields", n_fields, _MAX_HEADER_FIELDS)
        fields = []
        for _ in range(n_fields):
            field_name = reader.read_utf()
            code = reader.read_u8()
            kind = _KIND_BY_CODE.get(code)
            if kind is None:
                raise FormatError(f"unknown field-kind code {code:#x}")
            fields.append((field_name, kind))
        out.append(WriterClassSchema(name, fingerprint, None, tuple(fields)))
    return out


@dataclass
class _Resolution:
    """How one writer class decodes against the reader's registry."""

    reader_klass: Klass
    element_kind: Optional[FieldKind]
    # Per writer field, in writer order: (name, writer kind, reader keeps it).
    fields: Tuple[Tuple[str, FieldKind, bool], ...]
    identical: bool  # fingerprint matches AND the class ID aligns


def resolve_schemas(
    writer_classes: List[WriterClassSchema], registration: ClassRegistration
) -> List[_Resolution]:
    """Resolve every writer class against the reader registry.

    Raises :class:`UnknownClassError` for names the reader never
    registered and :class:`SchemaMismatchError` for irreconcilable shape
    changes (instance/array flip, element-kind change, same-name field
    kind change).
    """
    by_name: Dict[str, Tuple[int, Klass]] = {
        klass.name: (class_id, klass)
        for class_id, klass in enumerate(registration)
    }
    resolutions: List[_Resolution] = []
    for writer_id, schema in enumerate(writer_classes):
        entry = by_name.get(schema.name)
        if entry is None:
            raise UnknownClassError(
                repr(schema.name),
                detail="writer class not in reader registry",
            )
        reader_id, reader_klass = entry
        if schema.is_array != reader_klass.is_array:
            raise SchemaMismatchError(
                f"class {schema.name!r} changed between array and instance"
            )
        if schema.is_array:
            assert isinstance(reader_klass, ArrayKlass)
            if schema.element_kind is not reader_klass.element_kind:
                raise SchemaMismatchError(
                    f"array {schema.name!r} element kind changed from "
                    f"{schema.element_kind.value} to "
                    f"{reader_klass.element_kind.value}"
                )
            fields: Tuple[Tuple[str, FieldKind, bool], ...] = ()
        else:
            assert isinstance(reader_klass, InstanceKlass)
            reader_kinds = {
                descriptor.name: descriptor.kind
                for descriptor in reader_klass.fields
            }
            resolved = []
            for field_name, writer_kind in schema.fields:
                reader_kind = reader_kinds.get(field_name)
                if reader_kind is not None and reader_kind is not writer_kind:
                    raise SchemaMismatchError(
                        f"field {schema.name}.{field_name} changed kind from "
                        f"{writer_kind.value} to {reader_kind.value}"
                    )
                resolved.append((field_name, writer_kind, reader_kind is not None))
            fields = tuple(resolved)
        identical = (
            reader_id == writer_id
            and schema.fingerprint == schema_fingerprint(reader_klass)
        )
        resolutions.append(
            _Resolution(reader_klass, schema.element_kind, fields, identical)
        )
    return resolutions


class VersionedKryo(Serializer):
    """Kryo with a fingerprinted schema header and reader-side resolution.

    Serialize writes the header describing *this* registration, then the
    ordinary Kryo payload. Deserialize resolves the stream's writer schema
    against *this* (possibly newer or older) registration: the identity
    fast path delegates to the plan-kernel Kryo decoder; any evolution
    falls back to a field-by-name interpreter that honors add/remove/
    reorder.
    """

    name = "kryo-versioned"

    def __init__(
        self,
        registration: Optional[ClassRegistration] = None,
        use_plans: bool = True,
    ):
        self.kryo = KryoSerializer(registration=registration, use_plans=use_plans)
        self.registration = self.kryo.registration

    def register(self, klass) -> int:
        return self.registration.register(klass)

    # ------------------------------------------------------------------ serialize

    def serialize(self, root: HeapObject) -> SerializationResult:
        result = self.kryo.serialize(root)
        header = StreamWriter()
        write_schema_header(header, self.registration)
        sections = {_SECTION_SCHEMA: len(header)}
        sections.update(result.stream.sections)
        result.profile.bytes_written += len(header)
        stream = SerializedStream(
            format_name=self.name,
            data=header.getvalue() + result.stream.data,
            sections=sections,
            object_count=result.stream.object_count,
            graph_bytes=result.stream.graph_bytes,
        )
        stream.check_sections()
        return SerializationResult(stream, result.profile)

    # ---------------------------------------------------------------- deserialize

    def deserialize(
        self,
        stream: SerializedStream,
        heap: Heap,
        limits: Optional[DecodeLimits] = None,
    ) -> DeserializationResult:
        limits = resolve_limits(limits)
        limits.check_stream_bytes(len(stream.data))
        reader = StreamReader(stream.data)
        writer_classes = read_schema_header(reader)
        resolutions = resolve_schemas(writer_classes, self.registration)
        payload = SerializedStream(
            format_name="kryo",
            data=stream.data[reader.position :],
            sections=dict(stream.sections),
            object_count=stream.object_count,
            graph_bytes=stream.graph_bytes,
        )
        if all(r.identical for r in resolutions):
            get_registry().counter("schema.resolved", outcome="identity").inc()
            return self.kryo.deserialize(payload, heap, limits=limits)
        get_registry().counter("schema.resolved", outcome="evolved").inc()
        return self._deserialize_evolved(payload, heap, resolutions, limits)

    def _deserialize_evolved(
        self,
        stream: SerializedStream,
        heap: Heap,
        resolutions: List[_Resolution],
        limits: DecodeLimits,
    ) -> DeserializationResult:
        """Field-by-name interpreter over the writer's stream layout.

        Structure comes from the *writer's* schema (what the bytes contain);
        destinations come from the *reader's* klass. Writer-only reference
        subtrees are still fully decoded — their objects join the back-
        reference table (and stay on the heap, unreachable) so object
        numbering matches the writer's exactly.
        """
        reader = StreamReader(stream.data)
        profile = WorkProfile()
        objects_by_id: List[HeapObject] = []

        def read_primitive(kind: FieldKind):
            if kind is FieldKind.BOOLEAN:
                return bool(reader.read_u8())
            if kind is FieldKind.BYTE:
                raw = reader.read_u8()
                return raw - 256 if raw >= 128 else raw
            if kind in (FieldKind.CHAR, FieldKind.SHORT):
                raw = reader.read_u16()
                if kind is FieldKind.SHORT and raw >= 32768:
                    return raw - 65536
                return raw
            if kind in (FieldKind.INT, FieldKind.LONG):
                return reader.read_signed_varint()
            if kind is FieldKind.FLOAT:
                return struct.unpack("<f", reader.read_bytes(4))[0]
            if kind is FieldKind.DOUBLE:
                return reader.read_f64()
            raise FormatError(f"not a primitive kind: {kind}")

        def parse_object(mark: int):
            class_id = reader.read_varint()
            if class_id >= len(resolutions):
                raise UnknownClassError(
                    class_id,
                    detail="beyond the writer's schema header",
                    offset=reader.position,
                )
            resolution = resolutions[class_id]
            klass = resolution.reader_klass
            limits.check_objects(len(objects_by_id) + 1)
            profile.objects += 1
            profile.allocations += 1
            if mark == MARK_ARRAY:
                if not isinstance(klass, ArrayKlass):
                    raise FormatError("array marker with non-array class ID")
                length = reader.read_varint()
                limits.check_array_length(length)
                obj = heap.allocate(klass, length)
                objects_by_id.append(obj)
                if klass.element_kind.is_reference:
                    for index in range(length):
                        profile.reference_fields += 1
                        child = yield obj
                        obj.set_element(index, child)
                else:
                    values = []
                    for _ in range(length):
                        values.append(read_primitive(klass.element_kind))
                        profile.value_fields += 1
                    obj.set_elements(values)
            else:
                if not isinstance(klass, InstanceKlass):
                    raise FormatError("object marker with array class ID")
                obj = heap.allocate(klass)
                objects_by_id.append(obj)
                for field_name, writer_kind, reader_has in resolution.fields:
                    if writer_kind.is_reference:
                        profile.reference_fields += 1
                        child = yield obj
                        if reader_has:
                            obj.set(field_name, child)
                    else:
                        value = read_primitive(writer_kind)
                        profile.value_fields += 1
                        if reader_has:
                            obj.set(field_name, value)
            return

        def start_content():
            mark = reader.read_u8()
            if mark == MARK_NULL:
                return ("value", None)
            if mark == MARK_BACKREF:
                object_id = reader.read_varint()
                if object_id >= len(objects_by_id):
                    raise FormatError(f"forward object reference {object_id}")
                return ("value", objects_by_id[object_id])
            if mark in (MARK_OBJECT, MARK_ARRAY):
                return ("frame", parse_object(mark))
            raise FormatError(f"unexpected marker {mark:#x}")

        _UNSET = object()
        kind, payload = start_content()
        if kind == "value":
            raise FormatError("stream root must be an object")
        stack = [payload]
        object_count_at_frame = [len(objects_by_id)]
        pending = _UNSET
        root_obj: Optional[HeapObject] = None
        while stack:
            gen = stack[-1]
            try:
                if pending is _UNSET:
                    next(gen)
                else:
                    value, pending = pending, _UNSET
                    gen.send(value)
                kind, payload = start_content()
                if kind == "value":
                    pending = payload
                else:
                    limits.check_depth(len(stack) + 1)
                    stack.append(payload)
                    object_count_at_frame.append(len(objects_by_id))
            except StopIteration:
                stack.pop()
                frame_first = object_count_at_frame.pop()
                finished = objects_by_id[frame_first]
                pending = finished
                root_obj = finished

        if not isinstance(root_obj, HeapObject):
            raise FormatError("deserialization produced no root object")
        profile.bytes_read = len(stream.data)
        return DeserializationResult(root_obj, profile)
