"""Structural equivalence of object graphs.

Deserialization must reproduce an *equivalent* graph, not an identical one:
addresses and identity hashes differ between heaps. Two graphs are
equivalent when a graph isomorphism maps one root to the other preserving
klass names, array lengths, primitive slot values, and reference structure
(including sharing and cycles).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.jvm.heap import HeapObject
from repro.jvm.klass import ArrayKlass, FieldKind, InstanceKlass

_FLOAT_RTOL = 1e-6


def _values_match(kind: FieldKind, a, b) -> bool:
    if kind in (FieldKind.FLOAT, FieldKind.DOUBLE):
        fa, fb = float(a), float(b)
        if math.isnan(fa) and math.isnan(fb):
            return True
        return math.isclose(fa, fb, rel_tol=_FLOAT_RTOL, abs_tol=1e-12)
    return a == b


def graphs_equivalent(root_a: HeapObject, root_b: HeapObject) -> bool:
    """True when the two object graphs are structurally equivalent."""
    return first_difference(root_a, root_b) is None


def first_difference(root_a: HeapObject, root_b: HeapObject) -> str | None:
    """Describe the first structural mismatch, or ``None`` if equivalent.

    Walks both graphs in lockstep (the pairing itself is the isomorphism
    candidate); any divergence in klass, length, values, nullness, or
    sharing structure is reported with a path-like description.
    """
    mapping: Dict[int, int] = {}
    reverse: Dict[int, int] = {}
    worklist: List[Tuple[HeapObject, HeapObject, str]] = [(root_a, root_b, "root")]

    while worklist:
        a, b, path = worklist.pop()
        if a.address in mapping:
            if mapping[a.address] != b.address:
                return f"{path}: sharing mismatch (A maps elsewhere)"
            continue
        if b.address in reverse:
            return f"{path}: sharing mismatch (B already mapped)"
        mapping[a.address] = b.address
        reverse[b.address] = a.address

        if a.klass.name != b.klass.name:
            return f"{path}: klass {a.klass.name} != {b.klass.name}"
        if isinstance(a.klass, ArrayKlass):
            if a.length != b.length:
                return f"{path}: array length {a.length} != {b.length}"
            kind = a.klass.element_kind
            for index in range(a.length):
                element_path = f"{path}[{index}]"
                va, vb = a.get_element(index), b.get_element(index)
                if kind.is_reference:
                    if (va is None) != (vb is None):
                        return f"{element_path}: null mismatch"
                    if va is not None:
                        worklist.append((va, vb, element_path))
                elif not _values_match(kind, va, vb):
                    return f"{element_path}: {va!r} != {vb!r}"
        else:
            klass = a.klass
            assert isinstance(klass, InstanceKlass)
            for descriptor in klass.fields:
                field_path = f"{path}.{descriptor.name}"
                va, vb = a.get(descriptor.name), b.get(descriptor.name)
                if descriptor.kind.is_reference:
                    if (va is None) != (vb is None):
                        return f"{field_path}: null mismatch"
                    if va is not None:
                        worklist.append((va, vb, field_path))
                elif not _values_match(descriptor.kind, va, vb):
                    return f"{field_path}: {va!r} != {vb!r}"
    return None
