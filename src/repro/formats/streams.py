"""Byte stream reader/writer with section accounting and varints.

``StreamWriter`` tags every write with a *section* name so the format
implementations get a byte-accurate breakdown of where stream space goes
(type metadata, field data, references, bitmaps, ...). ``StreamReader`` is
the matching cursor-based reader.

Varints use the LEB128 little-endian base-128 encoding that Kryo uses for
its optimized positive-int writes; signed values are zig-zag mapped first.
"""

from __future__ import annotations

import struct
from typing import Dict

from repro.common.errors import FormatError


class StreamWriter:
    """An append-only byte buffer with per-section byte accounting."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.sections: Dict[str, int] = {}

    def _account(self, section: str, length: int) -> None:
        self.sections[section] = self.sections.get(section, 0) + length

    # -- raw writes ---------------------------------------------------------------

    def write_bytes(self, data: bytes, section: str) -> None:
        self._buffer.extend(data)
        self._account(section, len(data))

    def write_u8(self, value: int, section: str) -> None:
        self.write_bytes(struct.pack("<B", value), section)

    def write_u16(self, value: int, section: str) -> None:
        self.write_bytes(struct.pack("<H", value), section)

    def write_u32(self, value: int, section: str) -> None:
        self.write_bytes(struct.pack("<I", value), section)

    def write_u64(self, value: int, section: str) -> None:
        self.write_bytes(struct.pack("<Q", value), section)

    def write_i32(self, value: int, section: str) -> None:
        self.write_bytes(struct.pack("<i", value), section)

    def write_i64(self, value: int, section: str) -> None:
        self.write_bytes(struct.pack("<q", value), section)

    def write_f64(self, value: float, section: str) -> None:
        self.write_bytes(struct.pack("<d", value), section)

    # -- varints -----------------------------------------------------------------------

    def write_varint(self, value: int, section: str) -> int:
        """LEB128 unsigned varint; returns encoded length."""
        if value < 0:
            raise FormatError(f"varint requires non-negative value, got {value}")
        start = len(self._buffer)
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                self._buffer.append(byte | 0x80)
            else:
                self._buffer.append(byte)
                break
        length = len(self._buffer) - start
        self._account(section, length)
        return length

    def write_signed_varint(self, value: int, section: str) -> int:
        """Zig-zag mapped signed varint."""
        zigzag = (value << 1) ^ (value >> 63) if value < 0 else value << 1
        return self.write_varint(zigzag & ((1 << 64) - 1), section)

    # -- strings -----------------------------------------------------------------------

    def write_utf(self, text: str, section: str) -> None:
        """Java ``writeUTF``-style string: 2-byte length then UTF-8 bytes."""
        encoded = text.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise FormatError(f"UTF string too long: {len(encoded)} bytes")
        self.write_u16(len(encoded), section)
        self.write_bytes(encoded, section)

    # -- result -------------------------------------------------------------------------

    def getvalue(self) -> bytes:
        return bytes(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)


class StreamReader:
    """Cursor-based reader over a serialized byte stream."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    @property
    def position(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def _take(self, length: int) -> bytes:
        if length < 0 or self._pos + length > len(self._data):
            raise FormatError(
                f"stream underflow: need {length} bytes at offset {self._pos}, "
                f"have {self.remaining}"
            )
        chunk = self._data[self._pos : self._pos + length]
        self._pos += length
        return chunk

    # -- raw reads ------------------------------------------------------------------------

    def read_bytes(self, length: int) -> bytes:
        return self._take(length)

    def read_u8(self) -> int:
        return self._take(1)[0]

    def read_u16(self) -> int:
        return struct.unpack("<H", self._take(2))[0]

    def read_u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def read_u64(self) -> int:
        return struct.unpack("<Q", self._take(8))[0]

    def read_i32(self) -> int:
        return struct.unpack("<i", self._take(4))[0]

    def read_i64(self) -> int:
        return struct.unpack("<q", self._take(8))[0]

    def read_f64(self) -> float:
        return struct.unpack("<d", self._take(8))[0]

    # -- varints ----------------------------------------------------------------------------

    def read_varint(self) -> int:
        value = 0
        shift = 0
        while True:
            if shift > 63:
                raise FormatError("varint longer than 64 bits")
            byte = self.read_u8()
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7

    def read_signed_varint(self) -> int:
        zigzag = self.read_varint()
        value = zigzag >> 1
        if zigzag & 1:
            value = ~value
        return value

    # -- strings ------------------------------------------------------------------------------

    def read_utf(self) -> str:
        length = self.read_u16()
        raw = self._take(length)
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as error:
            raise FormatError(f"invalid UTF-8 in stream: {error}") from None

    def expect_end(self) -> None:
        if self.remaining:
            raise FormatError(f"{self.remaining} trailing bytes in stream")
