"""Byte stream reader/writer with section accounting and varints.

``StreamWriter`` tags every write with a *section* name so the format
implementations get a byte-accurate breakdown of where stream space goes
(type metadata, field data, references, bitmaps, ...). ``StreamReader`` is
the matching cursor-based reader.

Varints use the LEB128 little-endian base-128 encoding that Kryo uses for
its optimized positive-int writes; signed values are zig-zag mapped first.
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict

from repro.common.bufpool import acquire_buffer, release_buffer
from repro.common.errors import (
    CorruptionError,
    FormatError,
    TruncatedStreamError,
)
from repro.formats import varint as V


# -- checksummed framing ------------------------------------------------------------
#
# A 16-byte frame protects a serialized payload on the transfer path
# (shuffle / broadcast / collect):
#
#     magic(4) | payload_length u32 | payload_crc32 u32 | header_crc32 u32
#
# ``header_crc32`` covers the first 12 bytes, so a flip anywhere in the
# header is caught even before the payload is inspected; ``payload_crc32``
# covers the payload; the explicit length catches truncation. CRC32 detects
# every error burst of <= 32 bits, so any single corrupted byte is caught.

FRAME_MAGIC = b"\xc5\xea\x1f\x01"
FRAME_HEADER_BYTES = 16
FRAME_SECTION = "frame"


def frame_payload(payload: bytes) -> bytes:
    """Wrap ``payload`` in the 16-byte checksummed frame."""
    header = FRAME_MAGIC + struct.pack(
        "<II", len(payload), zlib.crc32(payload) & 0xFFFFFFFF
    )
    header += struct.pack("<I", zlib.crc32(header) & 0xFFFFFFFF)
    return header + payload


def unframe_payload(data: bytes) -> bytes:
    """Verify a framed stream and return the payload.

    Raises :class:`CorruptionError` on any mismatch: bad magic, damaged
    header, truncated payload, or payload digest failure.
    """
    if len(data) < FRAME_HEADER_BYTES:
        raise CorruptionError(
            f"framed stream too short: {len(data)} bytes < "
            f"{FRAME_HEADER_BYTES}-byte frame header"
        )
    header = data[:12]
    (header_crc,) = struct.unpack("<I", data[12:16])
    if zlib.crc32(header) & 0xFFFFFFFF != header_crc:
        raise CorruptionError("frame header checksum mismatch")
    if data[:4] != FRAME_MAGIC:
        raise CorruptionError("bad frame magic")
    length, payload_crc = struct.unpack("<II", data[4:12])
    payload = data[FRAME_HEADER_BYTES:]
    if length != len(payload):
        raise CorruptionError(
            f"frame declares {length} payload bytes, got {len(payload)} "
            f"(truncated or padded transfer)"
        )
    if zlib.crc32(payload) & 0xFFFFFFFF != payload_crc:
        raise CorruptionError("payload checksum mismatch")
    return payload


def looks_framed(data: bytes) -> bool:
    """Cheap sniff: does ``data`` start with the frame magic?"""
    return len(data) >= FRAME_HEADER_BYTES and data[:4] == FRAME_MAGIC


class StreamWriter:
    """An append-only byte buffer with per-section byte accounting.

    ``pooled=True`` borrows the backing ``bytearray`` from the process-wide
    buffer pool instead of allocating a fresh one; call :meth:`detach` to
    take the final bytes and return the arena. ``getvalue`` stays valid on
    pooled writers too (it copies without releasing).
    """

    def __init__(self, pooled: bool = False) -> None:
        self._pooled = pooled
        self._buffer = acquire_buffer() if pooled else bytearray()
        self.sections: Dict[str, int] = {}

    def _account(self, section: str, length: int) -> None:
        self.sections[section] = self.sections.get(section, 0) + length

    # -- raw writes ---------------------------------------------------------------

    def write_bytes(self, data: bytes, section: str) -> None:
        self._buffer.extend(data)
        self._account(section, len(data))

    def write_u8(self, value: int, section: str) -> None:
        self.write_bytes(struct.pack("<B", value), section)

    def write_u16(self, value: int, section: str) -> None:
        self.write_bytes(struct.pack("<H", value), section)

    def write_u32(self, value: int, section: str) -> None:
        self.write_bytes(struct.pack("<I", value), section)

    def write_u64(self, value: int, section: str) -> None:
        self.write_bytes(struct.pack("<Q", value), section)

    def write_i32(self, value: int, section: str) -> None:
        self.write_bytes(struct.pack("<i", value), section)

    def write_i64(self, value: int, section: str) -> None:
        self.write_bytes(struct.pack("<q", value), section)

    def write_f64(self, value: float, section: str) -> None:
        self.write_bytes(struct.pack("<d", value), section)

    # -- varints -----------------------------------------------------------------------

    def write_varint(self, value: int, section: str) -> int:
        """LEB128 unsigned varint; returns encoded length."""
        length = V.append_varint(self._buffer, value)
        self._account(section, length)
        return length

    def write_signed_varint(self, value: int, section: str) -> int:
        """Zig-zag mapped signed varint."""
        length = V.append_signed_varint(self._buffer, value)
        self._account(section, length)
        return length

    # -- strings -----------------------------------------------------------------------

    def write_utf(self, text: str, section: str) -> None:
        """Java ``writeUTF``-style string: 2-byte length then UTF-8 bytes."""
        encoded = text.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise FormatError(f"UTF string too long: {len(encoded)} bytes")
        self.write_u16(len(encoded), section)
        self.write_bytes(encoded, section)

    # -- result -------------------------------------------------------------------------

    def getvalue(self) -> bytes:
        return bytes(self._buffer)

    def detach(self) -> bytes:
        """Snapshot the bytes and return a pooled arena to the pool.

        After ``detach`` the writer must not be written to again; the
        arena may already be serving another serialize call.
        """
        data = bytes(self._buffer)
        if self._pooled:
            release_buffer(self._buffer)
            self._pooled = False
            self._buffer = bytearray()
        return data

    def __len__(self) -> int:
        return len(self._buffer)


class StreamReader:
    """Cursor-based reader over a serialized byte stream."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    @property
    def position(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def _take(self, length: int) -> bytes:
        if length < 0 or self._pos + length > len(self._data):
            raise TruncatedStreamError(
                offset=self._pos, needed=length, available=self.remaining
            )
        chunk = self._data[self._pos : self._pos + length]
        self._pos += length
        return chunk

    # -- raw reads ------------------------------------------------------------------------

    def read_bytes(self, length: int) -> bytes:
        return self._take(length)

    def read_u8(self) -> int:
        return self._take(1)[0]

    def read_u16(self) -> int:
        return struct.unpack("<H", self._take(2))[0]

    def read_u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def read_u64(self) -> int:
        return struct.unpack("<Q", self._take(8))[0]

    def read_i32(self) -> int:
        return struct.unpack("<i", self._take(4))[0]

    def read_i64(self) -> int:
        return struct.unpack("<q", self._take(8))[0]

    def read_f64(self) -> float:
        return struct.unpack("<d", self._take(8))[0]

    # -- varints ----------------------------------------------------------------------------

    def read_varint(self) -> int:
        value, self._pos = V.read_varint(self._data, self._pos)
        return value

    def read_signed_varint(self) -> int:
        value, self._pos = V.read_signed_varint(self._data, self._pos)
        return value

    # -- strings ------------------------------------------------------------------------------

    def read_utf(self) -> str:
        length = self.read_u16()
        raw = self._take(length)
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as error:
            raise FormatError(f"invalid UTF-8 in stream: {error}") from None

    def expect_end(self) -> None:
        if self.remaining:
            raise FormatError(f"{self.remaining} trailing bytes in stream")
