"""Byte stream reader/writer with section accounting and varints.

``StreamWriter`` tags every write with a *section* name so the format
implementations get a byte-accurate breakdown of where stream space goes
(type metadata, field data, references, bitmaps, ...). ``StreamReader`` is
the matching cursor-based reader.

Varints use the LEB128 little-endian base-128 encoding that Kryo uses for
its optimized positive-int writes; signed values are zig-zag mapped first.
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict

from repro.common.bufpool import acquire_buffer, release_buffer
from repro.common.errors import (
    CorruptionError,
    FormatError,
    TruncatedStreamError,
)
from repro.formats import varint as V


# -- checksummed framing ------------------------------------------------------------
#
# A 16-byte frame protects a serialized payload on the transfer path
# (shuffle / broadcast / collect):
#
#     magic(4) | payload_length u32 | payload_crc32 u32 | header_crc32 u32
#
# ``header_crc32`` covers the first 12 bytes, so a flip anywhere in the
# header is caught even before the payload is inspected; ``payload_crc32``
# covers the payload; the explicit length catches truncation. CRC32 detects
# every error burst of <= 32 bits, so any single corrupted byte is caught.

FRAME_MAGIC = b"\xc5\xea\x1f\x01"
FRAME_HEADER_BYTES = 16
FRAME_SECTION = "frame"


def frame_payload(payload: bytes) -> bytes:
    """Wrap ``payload`` in the 16-byte checksummed frame."""
    header = FRAME_MAGIC + struct.pack(
        "<II", len(payload), zlib.crc32(payload) & 0xFFFFFFFF
    )
    header += struct.pack("<I", zlib.crc32(header) & 0xFFFFFFFF)
    return header + payload


def unframe_payload(data: bytes) -> bytes:
    """Verify a framed stream and return the payload.

    Raises :class:`CorruptionError` on any mismatch: bad magic, damaged
    header, truncated payload, or payload digest failure.
    """
    if len(data) < FRAME_HEADER_BYTES:
        raise CorruptionError(
            f"framed stream too short: {len(data)} bytes < "
            f"{FRAME_HEADER_BYTES}-byte frame header"
        )
    header = data[:12]
    (header_crc,) = struct.unpack("<I", data[12:16])
    if zlib.crc32(header) & 0xFFFFFFFF != header_crc:
        raise CorruptionError("frame header checksum mismatch")
    if data[:4] != FRAME_MAGIC:
        raise CorruptionError("bad frame magic")
    length, payload_crc = struct.unpack("<II", data[4:12])
    payload = data[FRAME_HEADER_BYTES:]
    if length != len(payload):
        raise CorruptionError(
            f"frame declares {length} payload bytes, got {len(payload)} "
            f"(truncated or padded transfer)"
        )
    if zlib.crc32(payload) & 0xFFFFFFFF != payload_crc:
        raise CorruptionError("payload checksum mismatch")
    return payload


def looks_framed(data: bytes) -> bool:
    """Cheap sniff: does ``data`` start with the frame magic?"""
    return len(data) >= FRAME_HEADER_BYTES and data[:4] == FRAME_MAGIC


# -- per-chunk framing --------------------------------------------------------------
#
# Streaming transfers ship a serialized payload as a sequence of framed
# chunks so one damaged chunk retries alone instead of re-fetching the
# whole stream. The 21-byte chunk header is a versioned sibling of the
# whole-payload frame above (magic version bumped to 0x02):
#
#     magic(4) | seq u32 | payload_length u32 | flags u8 |
#     payload_crc32 u32 | header_crc32 u32
#
# ``seq`` orders chunks and exposes reordering/duplication; the LAST flag
# marks the final chunk so a clipped tail is detectable (a stream that
# ends without it is truncated, not merely short).

CHUNK_MAGIC = b"\xc5\xea\x1f\x02"
CHUNK_HEADER_BYTES = 21
CHUNK_FLAG_LAST = 0x01


def frame_chunk(seq: int, payload, last: bool = False) -> bytes:
    """Wrap one chunk payload in the 21-byte checksummed chunk frame.

    ``payload`` may be any buffer-protocol object (bytes, bytearray,
    memoryview) — chunk arenas frame without an intermediate copy.
    """
    flags = CHUNK_FLAG_LAST if last else 0
    header = CHUNK_MAGIC + struct.pack(
        "<IIBI",
        seq & 0xFFFFFFFF,
        len(payload),
        flags,
        zlib.crc32(payload) & 0xFFFFFFFF,
    )
    header += struct.pack("<I", zlib.crc32(header) & 0xFFFFFFFF)
    return header + payload


def unframe_chunk(data) -> Tuple[int, memoryview, bool]:
    """Verify one framed chunk; returns ``(seq, payload_view, last)``.

    The payload comes back as a zero-copy :class:`memoryview` into
    ``data``. Raises :class:`CorruptionError` on bad magic, damaged
    header, truncated payload, or payload digest failure.
    """
    view = data if isinstance(data, memoryview) else memoryview(data)
    if len(view) < CHUNK_HEADER_BYTES:
        raise CorruptionError(
            f"framed chunk too short: {len(view)} bytes < "
            f"{CHUNK_HEADER_BYTES}-byte chunk header"
        )
    header = view[:17]
    (header_crc,) = struct.unpack("<I", view[17:21])
    if zlib.crc32(header) & 0xFFFFFFFF != header_crc:
        raise CorruptionError("chunk header checksum mismatch")
    if bytes(view[:4]) != CHUNK_MAGIC:
        raise CorruptionError("bad chunk magic")
    seq, length, flags, payload_crc = struct.unpack("<IIBI", view[4:17])
    payload = view[CHUNK_HEADER_BYTES:]
    if length != len(payload):
        raise CorruptionError(
            f"chunk {seq} declares {length} payload bytes, got "
            f"{len(payload)} (truncated or padded transfer)"
        )
    if zlib.crc32(payload) & 0xFFFFFFFF != payload_crc:
        raise CorruptionError(f"chunk {seq} payload checksum mismatch")
    return seq, payload, bool(flags & CHUNK_FLAG_LAST)


def looks_chunk_framed(data) -> bool:
    """Cheap sniff: does ``data`` start with the chunk-frame magic?"""
    return len(data) >= CHUNK_HEADER_BYTES and bytes(data[:4]) == CHUNK_MAGIC


# -- chunk sinks / sources ----------------------------------------------------------


class ChunkSink:
    """Protocol: a consumer of serialized chunks, in stream order.

    ``put`` receives one chunk (any buffer-protocol object); the chunk is
    only valid for the duration of the call — a sink that defers
    consumption must copy (or own the arena via its pool contract).
    ``close`` marks end of stream.
    """

    def put(self, chunk) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """End of stream; default is a no-op."""


class ChunkSource:
    """Protocol: a producer of serialized chunks, in stream order.

    ``next_chunk`` returns the next chunk or ``None`` at end of stream;
    iteration is provided on top of it.
    """

    def next_chunk(self):
        raise NotImplementedError

    def __iter__(self):
        while True:
            chunk = self.next_chunk()
            if chunk is None:
                return
            yield chunk


class CollectingChunkSink(ChunkSink):
    """Reassembles chunks into one contiguous byte string (tests, and the
    receiver side of a transfer, which must materialize before decode)."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.chunks = 0
        self.closed = False

    def put(self, chunk) -> None:
        self._buffer.extend(chunk)
        self.chunks += 1

    def close(self) -> None:
        self.closed = True

    def getvalue(self) -> bytes:
        return bytes(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)


class BoundedChunkQueue(ChunkSink, ChunkSource):
    """A bounded handoff queue: ``put`` blocks while ``max_chunks`` are
    unconsumed, propagating backpressure from a slow consumer thread back
    into the producing encoder. Chunks are copied on ``put`` so the
    producer may recycle its arena immediately."""

    def __init__(self, max_chunks: int = 4) -> None:
        if max_chunks <= 0:
            raise FormatError(f"max_chunks must be positive, got {max_chunks}")
        import threading

        self.max_chunks = max_chunks
        self._chunks: list = []
        self._closed = False
        self._cond = threading.Condition()
        self.blocked_puts = 0

    def put(self, chunk) -> None:
        with self._cond:
            if self._closed:
                raise FormatError("put() on a closed BoundedChunkQueue")
            if len(self._chunks) >= self.max_chunks:
                self.blocked_puts += 1
                self._cond.wait_for(lambda: len(self._chunks) < self.max_chunks)
            self._chunks.append(bytes(chunk))
            self._cond.notify_all()

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def next_chunk(self):
        with self._cond:
            self._cond.wait_for(lambda: self._chunks or self._closed)
            if self._chunks:
                chunk = self._chunks.pop(0)
                self._cond.notify_all()
                return chunk
            return None


class StreamWriter:
    """An append-only byte buffer with per-section byte accounting.

    ``pooled=True`` borrows the backing ``bytearray`` from the process-wide
    buffer pool instead of allocating a fresh one; call :meth:`detach` to
    take the final bytes and return the arena. ``getvalue`` stays valid on
    pooled writers too (it copies without releasing).
    """

    def __init__(self, pooled: bool = False) -> None:
        self._pooled = pooled
        self._buffer = acquire_buffer() if pooled else bytearray()
        self.sections: Dict[str, int] = {}

    def _account(self, section: str, length: int) -> None:
        self.sections[section] = self.sections.get(section, 0) + length

    # -- raw writes ---------------------------------------------------------------

    def write_bytes(self, data: bytes, section: str) -> None:
        self._buffer.extend(data)
        self._account(section, len(data))

    def write_u8(self, value: int, section: str) -> None:
        self.write_bytes(struct.pack("<B", value), section)

    def write_u16(self, value: int, section: str) -> None:
        self.write_bytes(struct.pack("<H", value), section)

    def write_u32(self, value: int, section: str) -> None:
        self.write_bytes(struct.pack("<I", value), section)

    def write_u64(self, value: int, section: str) -> None:
        self.write_bytes(struct.pack("<Q", value), section)

    def write_i32(self, value: int, section: str) -> None:
        self.write_bytes(struct.pack("<i", value), section)

    def write_i64(self, value: int, section: str) -> None:
        self.write_bytes(struct.pack("<q", value), section)

    def write_f64(self, value: float, section: str) -> None:
        self.write_bytes(struct.pack("<d", value), section)

    # -- varints -----------------------------------------------------------------------

    def write_varint(self, value: int, section: str) -> int:
        """LEB128 unsigned varint; returns encoded length."""
        length = V.append_varint(self._buffer, value)
        self._account(section, length)
        return length

    def write_signed_varint(self, value: int, section: str) -> int:
        """Zig-zag mapped signed varint."""
        length = V.append_signed_varint(self._buffer, value)
        self._account(section, length)
        return length

    # -- strings -----------------------------------------------------------------------

    def write_utf(self, text: str, section: str) -> None:
        """Java ``writeUTF``-style string: 2-byte length then UTF-8 bytes."""
        encoded = text.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise FormatError(f"UTF string too long: {len(encoded)} bytes")
        self.write_u16(len(encoded), section)
        self.write_bytes(encoded, section)

    # -- result -------------------------------------------------------------------------

    def getvalue(self) -> bytes:
        return bytes(self._buffer)

    def detach(self) -> bytes:
        """Snapshot the bytes and return a pooled arena to the pool.

        After ``detach`` the writer must not be written to again; the
        arena may already be serving another serialize call.
        """
        data = bytes(self._buffer)
        if self._pooled:
            release_buffer(self._buffer)
            self._pooled = False
            self._buffer = bytearray()
        return data

    def __len__(self) -> int:
        return len(self._buffer)


class StreamReader:
    """Cursor-based reader over a serialized byte stream.

    Accepts any buffer-protocol object — ``bytes``, ``bytearray``,
    ``memoryview`` — without copying: non-bytes inputs are wrapped in a
    :class:`memoryview`, so reads over a reassembled chunk buffer (or a
    packed-kernel view) slice zero-copy instead of materializing the
    whole stream again.
    """

    def __init__(self, data):
        if not isinstance(data, (bytes, memoryview)):
            data = memoryview(data)
        self._data = data
        self._pos = 0

    @property
    def position(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def _take(self, length: int) -> bytes:
        if length < 0 or self._pos + length > len(self._data):
            raise TruncatedStreamError(
                offset=self._pos, needed=length, available=self.remaining
            )
        chunk = self._data[self._pos : self._pos + length]
        self._pos += length
        return chunk

    # -- raw reads ------------------------------------------------------------------------

    def read_bytes(self, length: int) -> bytes:
        return self._take(length)

    def read_u8(self) -> int:
        return self._take(1)[0]

    def read_u16(self) -> int:
        return struct.unpack("<H", self._take(2))[0]

    def read_u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def read_u64(self) -> int:
        return struct.unpack("<Q", self._take(8))[0]

    def read_i32(self) -> int:
        return struct.unpack("<i", self._take(4))[0]

    def read_i64(self) -> int:
        return struct.unpack("<q", self._take(8))[0]

    def read_f64(self) -> float:
        return struct.unpack("<d", self._take(8))[0]

    # -- varints ----------------------------------------------------------------------------

    def read_varint(self) -> int:
        value, self._pos = V.read_varint(self._data, self._pos)
        return value

    def read_signed_varint(self) -> int:
        value, self._pos = V.read_signed_varint(self._data, self._pos)
        return value

    # -- strings ------------------------------------------------------------------------------

    def read_utf(self) -> str:
        length = self.read_u16()
        raw = self._take(length)
        try:
            # bytes() on a memoryview slice copies only the string bytes.
            return bytes(raw).decode("utf-8")
        except UnicodeDecodeError as error:
            raise FormatError(f"invalid UTF-8 in stream: {error}") from None

    def expect_end(self) -> None:
        if self.remaining:
            raise FormatError(f"{self.remaining} trailing bytes in stream")
