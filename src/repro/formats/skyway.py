"""Skyway-style serialization (paper Section II, "Skyway Serializer").

Skyway transfers objects as raw memory copies to eliminate per-field
disassembly/reassembly:

* each object's full memory image (header + all 8 B slots) is appended to
  the stream in traversal order;
* the klass pointer in the copied header is replaced by an integer type ID
  from a *global type registry* filled automatically on first use (no manual
  registration, unlike Kryo);
* every reference slot is rewritten in-stream to the target's *relative
  address* — its offset in the deserialized image;
* at the receiver, objects are materialized by one bulk copy, after which
  references are adjusted **sequentially** (relative -> absolute), the
  inefficiency Cereal's decoupled format removes.

Because whole objects are shipped verbatim — headers, nulls, and reference
slots included — Skyway streams are larger than Kryo's (the paper reports a
16% average speedup over Kryo but inflated streams).
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import FormatError
from repro.formats.base import (
    DeserializationResult,
    SerializationResult,
    SerializedStream,
    Serializer,
    WorkProfile,
)
from repro.formats.limits import DecodeLimits, resolve_limits
from repro.formats.registry import ClassRegistration
from repro.formats.streams import StreamReader, StreamWriter
from repro.jvm.graph import ObjectGraph
from repro.jvm.heap import Heap, HeapObject, NULL_ADDRESS
from repro.jvm.klass import ArrayKlass, SLOT_BYTES
from repro.jvm.markword import MarkWord, identity_hash_for

_SECTION_META = "metadata"
_SECTION_HEADERS = "headers"
_SECTION_VALUES = "values"
_SECTION_REFS = "references"

_NULL_RELATIVE = 0xFFFF_FFFF_FFFF_FFFF  # sentinel: null reference slot

# Skyway ships whole objects by copy; per-object work is the visited check
# and address bookkeeping, plus the sequential reference adjustment at the
# receiver (its bottleneck). Calibrated to sit modestly ahead of Kryo
# overall (the paper reports a 16% average speedup).
_INSTR_PER_OBJECT = 2000  # visited map + relative-address bookkeeping
_INSTR_PER_SLOT = 4  # memcpy amortized
_INSTR_PER_REFERENCE = 110  # relative-address rewrite / adjustment
_INSTR_PER_REGISTERED_OBJECT = 150  # receiver-side object table insert
_AUX_ACCESSES_PER_OBJECT_SER = 2  # visited identity-map probe


class SkywaySerializer(Serializer):
    """Skyway: raw object-graph shipping with automatic type registration."""

    name = "skyway"

    def __init__(self, registration: Optional[ClassRegistration] = None):
        self.registration = (
            registration if registration is not None else ClassRegistration()
        )

    # ------------------------------------------------------------------ serialize

    def serialize(self, root: HeapObject) -> SerializationResult:
        graph = ObjectGraph.from_root(root)
        writer = StreamWriter(pooled=True)
        profile = WorkProfile()
        heap = root.heap
        memory = heap.memory

        writer.write_u32(graph.total_bytes, _SECTION_META)
        writer.write_u32(graph.object_count, _SECTION_META)

        for obj in graph:
            profile.objects += 1
            profile.add_instructions(_INSTR_PER_OBJECT)
            profile.aux_random_accesses += _AUX_ACCESSES_PER_OBJECT_SER
            profile.dependent_loads += 2
            # Header: mark word kept, klass pointer replaced by type ID
            # (automatic registration), extension word zeroed.
            writer.write_u64(memory.read_u64(obj.address), _SECTION_HEADERS)
            type_id = self.registration.register(obj.klass)
            writer.write_u64(type_id, _SECTION_HEADERS)
            if heap.cereal_extension:
                writer.write_u64(0, _SECTION_HEADERS)
            reference_slots = set(obj.reference_slots())
            for slot in range(obj.field_slots):
                raw = memory.read_u64(obj.slot_address(slot))
                profile.add_instructions(_INSTR_PER_SLOT)
                if slot in reference_slots:
                    profile.reference_fields += 1
                    profile.add_instructions(_INSTR_PER_REFERENCE)
                    if raw == NULL_ADDRESS:
                        writer.write_u64(_NULL_RELATIVE, _SECTION_REFS)
                    else:
                        writer.write_u64(
                            graph.relative_address[raw], _SECTION_REFS
                        )
                else:
                    profile.value_fields += 1
                    writer.write_u64(raw, _SECTION_VALUES)

        data = writer.detach()
        profile.bytes_read = graph.total_bytes
        profile.bytes_written = len(data)
        # Bulk copies are cheap per byte; add the memcpy cost.
        profile.add_instructions(graph.total_bytes // 8)
        stream = SerializedStream(
            format_name=self.name,
            data=data,
            sections=dict(writer.sections),
            object_count=graph.object_count,
            graph_bytes=graph.total_bytes,
        )
        stream.check_sections()
        return SerializationResult(stream, profile)

    # ---------------------------------------------------------------- deserialize

    def deserialize(
        self,
        stream: SerializedStream,
        heap: Heap,
        limits: Optional[DecodeLimits] = None,
    ) -> DeserializationResult:
        limits = resolve_limits(limits)
        limits.check_stream_bytes(len(stream.data))
        reader = StreamReader(stream.data)
        profile = WorkProfile()
        total_bytes = reader.read_u32()
        object_count = reader.read_u32()
        if total_bytes <= 0 or object_count <= 0:
            raise FormatError("empty Skyway stream")
        # The header's claims are checked against the budget *and* against
        # the actual stream before any heap space is reserved: a header
        # cannot make the receiver commit more memory than the sender shipped
        # bytes for (minus per-object header overlap, bounded by 8x).
        limits.check_objects(object_count)
        limits.check_graph_bytes(total_bytes)
        if total_bytes > len(stream.data) * 8:
            raise FormatError(
                f"Skyway header claims {total_bytes} image bytes from a "
                f"{len(stream.data)}-byte stream"
            )

        base = heap.reserve(total_bytes)
        memory = heap.memory
        header_slots = heap.header_slots
        offset = 0
        root_obj: Optional[HeapObject] = None
        pending_reference_slots = []  # (absolute slot address, relative target)
        object_addresses = []

        for _ in range(object_count):
            address = base + offset
            if offset + heap.header_bytes > total_bytes:
                raise FormatError(
                    f"Skyway header declares more objects than fit in its "
                    f"{total_bytes}-byte image"
                )
            mark_raw = reader.read_u64()
            type_id = reader.read_u64()
            klass = self.registration.klass_of(type_id, offset=reader.position)
            memory.write_u64(address, mark_raw)
            assert klass.metaspace_address is not None or True
            if klass.metaspace_address is None:
                heap.registry.register(klass)
            memory.write_u64(address + 8, klass.metaspace_address)
            if heap.cereal_extension:
                reader.read_u64()
                memory.write_u64(address + 16, 0)
            profile.objects += 1
            profile.allocations += 1
            profile.add_instructions(_INSTR_PER_OBJECT + _INSTR_PER_REGISTERED_OBJECT)

            # First slot of an array is its length; we must read it before we
            # can size the object.
            fields_base = address + header_slots * SLOT_BYTES
            if isinstance(klass, ArrayKlass):
                length_word = reader.read_u64()
                length = length_word
                limits.check_array_length(length)
                first_slot = 1
            else:
                length = 0
                first_slot = 0
            field_slots = klass.instance_slots(length)
            size_bytes = (header_slots + field_slots) * SLOT_BYTES
            if offset + size_bytes > total_bytes:
                # A lying length or type ID would otherwise let slot writes
                # run past the reserved region into unrelated heap memory.
                raise FormatError(
                    f"Skyway object at image offset {offset} extends "
                    f"{size_bytes} bytes past the {total_bytes}-byte image"
                )
            if first_slot:
                memory.write_u64(fields_base, length_word)
            reference_slots = set(klass.reference_slot_indices(length))
            for slot in range(first_slot, field_slots):
                raw = reader.read_u64()
                slot_address = fields_base + slot * SLOT_BYTES
                profile.add_instructions(_INSTR_PER_SLOT)
                if slot in reference_slots:
                    # Sequential reference adjustment (Skyway's bottleneck):
                    # each rewrite depends on stream order.
                    profile.reference_fields += 1
                    profile.dependent_loads += 1
                    profile.add_instructions(_INSTR_PER_REFERENCE)
                    if raw == _NULL_RELATIVE:
                        memory.write_u64(slot_address, NULL_ADDRESS)
                    else:
                        pending_reference_slots.append((slot_address, raw))
                        memory.write_u64(slot_address, NULL_ADDRESS)
                else:
                    profile.value_fields += 1
                    memory.write_u64(slot_address, raw)

            obj = heap.register_object(address, klass, length)
            object_addresses.append(obj.address)
            if root_obj is None:
                root_obj = obj
            offset += obj.size_bytes

        if offset != total_bytes:
            raise FormatError(
                f"Skyway stream size mismatch: walked {offset}, header said "
                f"{total_bytes}"
            )
        # Reference adjustment pass: relative -> absolute, validated
        # against the set of object starts actually materialized so a
        # corrupted stream cannot produce dangling references.
        valid_targets = {obj_address - base for obj_address in object_addresses}
        for slot_address, relative in pending_reference_slots:
            if relative not in valid_targets:
                raise FormatError(
                    f"relative address {relative} does not target an object"
                )
            memory.write_u64(slot_address, base + relative)

        assert root_obj is not None
        profile.bytes_read = len(stream.data)
        profile.bytes_written = total_bytes
        profile.add_instructions(total_bytes // 8)
        return DeserializationResult(root_obj, profile)


def strip_mark_word(obj: HeapObject) -> int:
    """Reconstruct a fresh mark word for a header-stripped object.

    Used by the header-strip size optimization (paper Figure 16): when the
    mark word is dropped from the stream, the receiver must rebuild it, and
    the identity hash changes.
    """
    return MarkWord(identity_hash=identity_hash_for(obj.address)).encode()
